"""The durable sweep orchestrator: the service's supervising process.

One :class:`Orchestrator` owns one *service directory* — journal,
inbox, leases, outcomes, quarantine, checkpoints, result cache,
telemetry — and runs the scheduling loop: admit submissions from the
inbox, dedupe against the content-addressed result cache, lease pending
tasks to crash-isolated worker processes, watch their heartbeats,
collect their outcome envelopes, retry deterministically, quarantine
poison, and drain cleanly on request.

Crash-safety discipline (the tentpole invariant):

1. **Journal first.**  Every state transition is a durable journal
   record *before* it takes effect.  ``kill -9`` between the record and
   the effect is recovered by replaying the journal: the restarted
   orchestrator re-derives the effect from the record.
2. **Effects are idempotent.**  Re-granting a lease whose worker never
   spawned re-runs the task bit-identically (same
   :class:`~repro.runner.seeding.SeedSpec`); re-committing a result the
   cache already holds dedupes on the cache key; re-writing an outcome
   is an atomic replace of identical bytes.
3. **One commit point.**  A task is *done* when ``task_completed`` is
   journaled.  The result is written to the cache immediately before
   (the ``result_commit`` kill window): dying between the two leaves a
   cached result and a pending task, and the next dispatch completes it
   from the cache without recomputation — converging on the same bits.

Recovery of leases is adopt-or-reclaim: a lease whose worker is alive
with a fresh heartbeat is *adopted* (the new orchestrator watches its
outcome file — workers can outlive the orchestrator that spawned
them); anything else is reclaimed without consuming an attempt (a dead
orchestrator is not evidence against the task).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import shutil
import signal as _signal
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..runner.cache import ResultCache, cache_key, result_checksum
from ..runner.telemetry import TraceRecorder
from ..telemetry.openmetrics import write_openmetrics
from ..telemetry.spans import SpanRecorder
from .faults import maybe_kill
from .journal import JOURNAL_FILENAME, JournalWriter
from .leases import (
    LEASES_DIRNAME,
    classify_lease,
    heartbeat_path,
    pid_alive,
    read_heartbeat_pid,
)
from .quarantine import QUARANTINE_DIRNAME, write_quarantine_record
from .signals import handle_signals
from .state import ServiceState, SubmitRecord, TaskState, fold_journal
from .submit import (
    INBOX_DIRNAME,
    REJECTED_DIRNAME,
    read_submission,
)
from .worker import (
    OUTCOMES_DIRNAME,
    outcome_path,
    read_outcome,
    task_from_description,
    worker_main,
)

__all__ = [
    "DRAIN_MARKER",
    "Orchestrator",
    "ServiceConfig",
    "ServicePaths",
    "request_drain",
]

#: Cross-process drain request: ``repro-plc drain`` touches this file,
#: the serve loop sees it and shuts down cleanly.
DRAIN_MARKER = "DRAIN"

#: Pid file of the running orchestrator (presence + live pid = serving).
PID_FILENAME = "serve.pid"


@dataclasses.dataclass(frozen=True)
class ServicePaths:
    """The on-disk layout of one service directory."""

    root: Path

    def __post_init__(self) -> None:
        # Accept plain strings everywhere a service dir is named.
        object.__setattr__(self, "root", Path(self.root))

    @property
    def journal(self) -> Path:
        return self.root / JOURNAL_FILENAME

    @property
    def inbox(self) -> Path:
        return self.root / INBOX_DIRNAME

    @property
    def rejected(self) -> Path:
        return self.root / REJECTED_DIRNAME

    @property
    def leases(self) -> Path:
        return self.root / LEASES_DIRNAME

    @property
    def outcomes(self) -> Path:
        return self.root / OUTCOMES_DIRNAME

    @property
    def quarantine(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    @property
    def checkpoints(self) -> Path:
        return self.root / "checkpoints"

    @property
    def cache(self) -> Path:
        return self.root / "cache"

    @property
    def telemetry(self) -> Path:
        return self.root / "telemetry"

    @property
    def drain_marker(self) -> Path:
        return self.root / DRAIN_MARKER

    @property
    def pid_file(self) -> Path:
        return self.root / PID_FILENAME


def request_drain(service_dir: Union[str, Path]) -> Path:
    """Ask the orchestrator owning ``service_dir`` to drain and stop."""
    marker = ServicePaths(Path(service_dir)).drain_marker
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.write_text(str(time.time()), encoding="utf-8")
    return marker


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one orchestrator incarnation.

    Nothing here may change task *results* — only scheduling, safety
    margins, and disk layout.  The determinism contract (task identity
    = cache key of the description, retries replay the same seed) is
    what makes every knob safe to tune between incarnations.
    """

    service_dir: Union[str, Path]
    #: Concurrently leased worker processes.
    max_workers: int = 2
    #: Deterministic retries before quarantine: a task failing
    #: ``max_retries + 1`` attempts is poison, not unlucky.
    max_retries: int = 2
    #: Heartbeat silence tolerated before a lease is stale.
    lease_ttl_s: float = 10.0
    #: How often workers touch their heartbeat file.
    heartbeat_interval_s: float = 1.0
    #: Hard per-attempt wall-clock limit (``None`` = unlimited).
    task_timeout_s: Optional[float] = None
    #: Admission control: a submission that would push pending+leased
    #: past this depth is rejected (backpressure, not silent loss).
    max_queue_depth: int = 10000
    #: Scheduling-loop poll period.
    poll_interval_s: float = 0.05
    #: Checkpoint cadence for long simulate/collision points
    #: (``None`` = only the runner defaults).
    checkpoint_every_us: Optional[float] = None
    #: fsync every journal append (only tests may turn this off).
    sync_journal: bool = True
    #: Seconds a drain waits for in-flight workers before terminating
    #: them (their leases are released; no attempt is consumed).
    drain_timeout_s: float = 10.0
    #: With ``exit_when_idle``: seconds the service must stay idle
    #: before exiting.  ``0`` exits on the first idle poll (the PR 9
    #: behaviour); the HTTP front end uses a grace so a freshly started
    #: server doesn't exit before its first remote submission arrives.
    idle_grace_s: float = 0.0


@dataclasses.dataclass
class _RemoteLease:
    """One task leased to a remote worker host over HTTP.

    Liveness is heartbeat recency only — a remote pid means nothing on
    this host, so the watchdog's verdict for remote leases is purely
    "how long since the last heartbeat PUT".  A silent host is
    classified dead and its lease reclaimed *without* consuming a retry
    attempt (losing contact is not evidence against the task).
    """

    task_id: str
    worker_id: str
    attempt: int
    granted_monotonic: float
    last_beat_monotonic: float
    span_id: Optional[str] = None
    task_index: Optional[int] = None


@dataclasses.dataclass
class _Inflight:
    """One leased task this incarnation is watching."""

    task_id: str
    task: Any  # the rebuilt Task
    attempt: int
    granted_monotonic: float
    span_id: Optional[str] = None
    task_index: Optional[int] = None
    #: The worker process we spawned, or ``None`` for a lease adopted
    #: from a previous incarnation (pid known only via heartbeat).
    proc: Optional[multiprocessing.Process] = None


class Orchestrator:
    """Supervise one service directory.  See the module docstring."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.paths = ServicePaths(Path(config.service_dir))
        self.paths.root.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.paths.cache)
        self.journal = JournalWriter(
            self.paths.journal, sync=config.sync_journal
        )
        #: Folded journal state — kept current by this incarnation.
        self.state: ServiceState = fold_journal(self.paths.journal)
        self.trace = TraceRecorder()
        self.spans = SpanRecorder(run_id=self.trace.run_id)
        self._inflight: Dict[str, _Inflight] = {}
        #: Tasks leased to remote worker hosts over HTTP.
        self._remote: Dict[str, _RemoteLease] = {}
        #: Serializes every state mutation between the scheduling loop
        #: and the HTTP handler threads.  The journal keeps exactly one
        #: *process* writer; within that process, this lock keeps one
        #: *writer at a time* — an RLock so handler paths can call the
        #: same helpers the loop uses.
        self.lock = threading.RLock()
        #: Set while a drain is in progress — the HTTP layer answers
        #: 503 + Retry-After to new submissions and claims.
        self.draining = False
        #: Set once the journal is closed; every mutating HTTP route
        #: refuses after this point.
        self.closed = False
        #: The signal that triggered the drain, if any (``repro-plc
        #: serve`` exits ``128 + signum`` so supervisors see SIGTERM
        #: drains as 143, per convention).
        self.shutdown_signum: Optional[int] = None
        #: Per-task failure history for quarantine forensics, rebuilt
        #: from the journal so a restart doesn't forget attempts.
        self._failures: Dict[str, List[Dict[str, Any]]] = {}
        self._next_task_index = 0
        self._task_indices: Dict[str, int] = {}
        self._sweep_span: Optional[str] = None
        self._seed_failure_history()

    # -- recovery ----------------------------------------------------------

    def _seed_failure_history(self) -> None:
        from .journal import read_journal

        records, _ = read_journal(self.paths.journal)
        for record in records:
            if record.get("event") == "task_failed":
                self._failures.setdefault(record["task_id"], []).append(
                    {
                        "attempt": record.get("attempt"),
                        "error": record.get("error"),
                        "error_type": record.get("error_type"),
                        "epoch_s": record.get("epoch_s"),
                        "worker_pid": record.get("worker_pid"),
                    }
                )
        self._next_task_index = len(self.state.tasks)

    def _recover_leases(self) -> None:
        """Adopt-or-reclaim every lease the previous incarnation held."""
        for record in self.state.by_state(TaskState.LEASED):
            hb = heartbeat_path(self.paths.leases, record.task_id)
            pid = read_heartbeat_pid(hb)
            attempt = record.attempts
            if (
                pid_alive(pid)
                and classify_lease(
                    hb,
                    self.config.lease_ttl_s,
                    elapsed_s=0.0,
                    task_timeout_s=None,
                )
                == "live"
            ):
                # The worker survived its orchestrator.  Adopt: watch
                # its outcome file like any other in-flight task.
                self._inflight[record.task_id] = _Inflight(
                    task_id=record.task_id,
                    task=self._build_task(record.task_id, record.description),
                    attempt=attempt,
                    granted_monotonic=time.monotonic(),
                )
                continue
            self.journal.append(
                "lease_reclaimed",
                task_id=record.task_id,
                reason="orchestrator restart",
                worker_pid=pid,
            )
            self._remove_lease_files(record.task_id)
            record.state = TaskState.PENDING
            record.lease = None

    # -- serve loop --------------------------------------------------------

    def serve(self, exit_when_idle: bool = False) -> ServiceState:
        """Run the scheduling loop until drained (or idle, if asked).

        ``exit_when_idle=True`` returns once the inbox is empty and no
        task is pending or leased — the mode tests, CI smoke, and
        one-shot batch deployments use.  Without it the loop runs until
        a drain request (SIGTERM/SIGINT or the ``DRAIN`` marker).
        """
        cfg = self.config
        self.paths.pid_file.parent.mkdir(parents=True, exist_ok=True)
        self.paths.pid_file.write_text(str(os.getpid()), encoding="utf-8")
        resumed = self.state.records > 0
        self.state.incarnations.append(
            self.journal.append(
                "service_resume" if resumed else "service_start",
                pid=os.getpid(),
                run_id=self.trace.run_id,
                tasks=len(self.state.tasks),
                corrupt_records=self.state.corrupt_records,
            )
        )
        self._sweep_span = self.spans.start(
            "service", workers=cfg.max_workers, resumed=resumed
        )
        self.trace.record_run_start(
            detail=f"service tasks={len(self.state.tasks)}",
            span_id=self._sweep_span,
        )
        with self.lock:
            self._recover_leases()
        drained = False
        idle_since: Optional[float] = None
        try:
            with handle_signals(mode="flag") as shutdown:
                while True:
                    if shutdown.is_set() or self.paths.drain_marker.exists():
                        drained = True
                        self.shutdown_signum = shutdown.signum
                        self._drain()
                        break
                    with self.lock:
                        self._scan_inbox()
                        self._watchdog()
                        self._collect_finished()
                        self._dispatch_pending()
                        idle = (
                            not self._inflight
                            and not self._remote
                            and not self.state.by_state(TaskState.PENDING)
                            and not self.state.by_state(TaskState.LEASED)
                            and not list(self.paths.inbox.glob("*.json"))
                        )
                    if exit_when_idle and idle:
                        now = time.monotonic()
                        if idle_since is None:
                            idle_since = now
                        if now - idle_since >= cfg.idle_grace_s:
                            break
                    elif not idle:
                        idle_since = None
                    time.sleep(cfg.poll_interval_s)
        finally:
            # Truthful shutdown telemetry even on an unexpected error:
            # spans close, the trace flushes, the journal records the
            # stop — the restart path depends on none of this, but the
            # operator's status view does.
            with self.lock:
                self.draining = True
                if not drained:
                    self._release_inflight(terminate=False)
                    self._release_remote()
                self.state.incarnations.append(
                    self.journal.append(
                        "service_stop",
                        pid=os.getpid(),
                        drained=drained,
                        counts=self.state.counts(),
                    )
                )
            self.trace.record(
                "run_end",
                span_id=self._sweep_span,
                detail=f"counts={self.state.counts()}",
            )
            for open_id in self.spans.open_spans():
                if open_id != self._sweep_span:
                    self.spans.end(open_id, status="aborted")
            self.spans.end(self._sweep_span)
            self._flush_telemetry()
            with self.lock:
                self.closed = True
                self.journal.close()
            try:
                self.paths.pid_file.unlink()
            except OSError:
                pass
            try:
                self.paths.drain_marker.unlink()
            except OSError:
                pass
        return self.state

    # -- inbox / admission -------------------------------------------------

    def _scan_inbox(self) -> None:
        inbox = self.paths.inbox
        if not inbox.is_dir():
            return
        for path in sorted(inbox.glob("*.json")):
            submission = read_submission(path)
            if submission is None:
                self._reject(path, None, "malformed submission")
                continue
            submit_id = submission.get("submit_id") or path.stem
            verdict = self.admit_submission(submission, submit_id=submit_id)
            if not verdict["accepted"]:
                self._reject(path, submit_id, verdict["reason"])
                continue
            try:
                path.unlink()
            except OSError:
                pass

    def admit_submission(
        self, submission: Dict[str, Any], submit_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Admission control + enqueue for one validated submission.

        The single accept/reject decision both input channels share:
        the inbox scan calls it for dropped files, the HTTP front end
        (``POST /v1/sweeps``) calls it directly — so a sweep is
        admitted by exactly the same rules, journal records, and dedupe
        regardless of how it arrived.  Idempotent by construction: task
        identity is :func:`~repro.runner.cache.cache_key` of each
        description, so a duplicated or retried submission dedupes
        instead of double-enqueueing.  Returns a verdict dict
        (``accepted``, ``submit_id``, and either ``task_count`` /
        ``deduped`` / ``new`` or ``reason``).
        """
        with self.lock:
            descriptions = submission["tasks"]
            if submit_id is None:
                from .submit import submission_id

                submit_id = submission.get("submit_id") or submission_id(
                    descriptions
                )
            new: List[Any] = []
            deduped = 0
            for description in descriptions:
                task_id = cache_key(description)
                known = self.state.tasks.get(task_id)
                if known is not None and known.state != TaskState.QUARANTINED:
                    deduped += 1
                    continue
                new.append((task_id, description))
            depth = self.state.queue_depth
            if depth + len(new) > self.config.max_queue_depth:
                reason = (
                    f"queue depth {depth} + {len(new)} new tasks "
                    f"exceeds limit {self.config.max_queue_depth}"
                )
                self.journal.append(
                    "sweep_rejected", submit_id=submit_id, reason=reason
                )
                self.state.submits[submit_id] = SubmitRecord(
                    submit_id=submit_id,
                    accepted=False,
                    reason=reason,
                )
                return {
                    "accepted": False,
                    "submit_id": submit_id,
                    "reason": reason,
                }
            self.journal.append(
                "sweep_accepted",
                submit_id=submit_id,
                label=submission.get("label"),
                task_count=len(descriptions),
                deduped=deduped,
            )
            self.state.submits[submit_id] = SubmitRecord(
                submit_id=submit_id,
                accepted=True,
                label=submission.get("label"),
                task_count=len(descriptions),
                deduped=deduped,
            )
            for task_id, description in new:
                self.journal.append(
                    "task_enqueued",
                    task_id=task_id,
                    submit_id=submit_id,
                    task=description,
                )
                record = self.state.tasks.get(task_id)
                if record is None:
                    from .state import TaskRecord

                    record = self.state.tasks[task_id] = TaskRecord(
                        task_id=task_id
                    )
                record.state = TaskState.PENDING
                record.description = description
                record.submit_id = submit_id
                self.trace.record(
                    "queued",
                    task_index=self._task_index(task_id),
                    kind=description.get("kind"),
                    span_id=self._sweep_span,
                )
            return {
                "accepted": True,
                "submit_id": submit_id,
                "task_count": len(descriptions),
                "deduped": deduped,
                "new": len(new),
            }

    def _reject(
        self, path: Path, submit_id: Optional[str], reason: str
    ) -> None:
        if submit_id is None or submit_id not in self.state.submits:
            # admit_submission journals depth rejections itself; only
            # pre-admission failures (malformed file) land here.
            self.journal.append(
                "sweep_rejected", submit_id=submit_id, reason=reason
            )
            self.state.submits[submit_id or path.stem] = SubmitRecord(
                submit_id=submit_id or path.stem,
                accepted=False,
                reason=reason,
            )
        self.paths.rejected.mkdir(parents=True, exist_ok=True)
        target = self.paths.rejected / path.name
        try:
            shutil.move(str(path), str(target))
            # Correlation ids alongside the reason so `repro-plc
            # report` can tie the rejection to this incarnation's span
            # tree (first line stays the bare reason for humans).
            target.with_suffix(".reason.txt").write_text(
                f"{reason}\n"
                f"run_id: {self.trace.run_id}\n"
                f"span_id: {self._sweep_span}\n",
                encoding="utf-8",
            )
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _task_index(self, task_id: str) -> int:
        """Stable per-task slot number for trace events (top view)."""
        index = self._task_indices.get(task_id)
        if index is None:
            index = self._task_indices[task_id] = self._next_task_index
            self._next_task_index += 1
        return index

    def _build_task(
        self, task_id: str, description: Optional[Dict[str, Any]]
    ):
        runtime: Dict[str, Any] = {
            "checkpoint_dir": str(self.paths.checkpoints / task_id),
            "resume": True,
            "telemetry": {
                "run_id": self.trace.run_id,
                "parent_span_id": self._sweep_span,
            },
        }
        if self.config.checkpoint_every_us is not None:
            runtime["checkpoint_every_us"] = self.config.checkpoint_every_us
        return task_from_description(description, runtime=runtime)

    def _dispatch_pending(self) -> None:
        for record in self.state.by_state(TaskState.PENDING):
            if record.description is None:
                continue  # cannot rebuild; journal damage, leave visible
            task_id = record.task_id
            cached = self.cache.get(task_id)
            if cached is not None:
                # Completed by a previous incarnation (or a prior
                # sweep) — the result_commit crash window closes here.
                self.journal.append(
                    "task_completed",
                    task_id=task_id,
                    source="cache",
                    result_sha256=result_checksum(cached),
                )
                record.state = TaskState.COMPLETED
                record.completed_from = "cache"
                self.trace.record(
                    "cache_hit",
                    task_index=self._task_index(task_id),
                    kind=record.kind,
                    span_id=self._sweep_span,
                )
                continue
            # Capacity check after the cache fast-path: a full (or
            # zero-local-worker) service still completes cached points
            # immediately — and ``max_workers=0`` is the pure-remote
            # mode where only HTTP worker hosts execute.
            if len(self._inflight) >= self.config.max_workers:
                continue
            attempt = record.attempts
            span_id = self.spans.start(
                "point",
                parent_id=self._sweep_span,
                task_id=task_id,
                kind=record.kind,
                attempt=attempt,
            )
            self.journal.append(
                "lease_granted",
                task_id=task_id,
                lease_id=f"{os.getpid()}-{self.journal.seq}",
                ttl_s=self.config.lease_ttl_s,
                attempt=attempt,
            )
            record.state = TaskState.LEASED
            maybe_kill("lease_grant")
            task = self._build_task(task_id, record.description)
            hb = heartbeat_path(self.paths.leases, task_id)
            try:
                hb.unlink()
            except OSError:
                pass
            out = outcome_path(self.paths.outcomes, task_id)
            try:
                out.unlink()
            except OSError:
                pass
            proc = multiprocessing.Process(
                target=worker_main,
                args=(
                    task,
                    str(hb),
                    str(out),
                    self.config.heartbeat_interval_s,
                ),
                name=f"service-worker-{task_id[:12]}",
            )
            proc.start()
            self._inflight[task_id] = _Inflight(
                task_id=task_id,
                task=task,
                attempt=attempt,
                granted_monotonic=time.monotonic(),
                span_id=span_id,
                task_index=self._task_index(task_id),
                proc=proc,
            )
            self.trace.record(
                "started",
                task_index=self._inflight[task_id].task_index,
                kind=record.kind,
                attempt=attempt,
                span_id=span_id,
                parent_id=self._sweep_span,
            )

    # -- collection / watchdog ---------------------------------------------

    def _collect_finished(self) -> None:
        for task_id in list(self._inflight):
            entry = self._inflight[task_id]
            outcome = read_outcome(
                outcome_path(self.paths.outcomes, task_id)
            )
            if outcome is not None:
                self._settle(entry, outcome)
                continue
            if entry.proc is not None and not entry.proc.is_alive():
                # Spawned worker exited without publishing an outcome:
                # crashed, OOM-killed, or kill -9'd.
                self._fail(
                    entry,
                    error=(
                        "worker exited without outcome "
                        f"(exitcode={entry.proc.exitcode})"
                    ),
                    error_type="WorkerDied",
                    worker_pid=entry.proc.pid,
                )

    def _watchdog(self) -> None:
        cfg = self.config
        now = time.monotonic()
        for task_id in list(self._remote):
            lease = self._remote[task_id]
            silent_s = now - lease.last_beat_monotonic
            overrun = (
                cfg.task_timeout_s is not None
                and now - lease.granted_monotonic > cfg.task_timeout_s
            )
            if silent_s <= cfg.lease_ttl_s and not overrun:
                continue
            # A silent remote host is classified dead — there is no pid
            # to probe across the wire, heartbeat recency is the only
            # truth.  Reclaim WITHOUT consuming a retry attempt: losing
            # contact (partition, host crash) is not evidence against
            # the task.  If the host was merely partitioned and later
            # commits its result, remote_complete converges on the
            # cache key (duplicate commits are idempotent).
            verdict = "overrun" if overrun else "dead"
            self.journal.append(
                "lease_reclaimed",
                task_id=task_id,
                reason=f"watchdog: remote {verdict} "
                f"(silent {silent_s:.1f}s)",
                worker=lease.worker_id,
            )
            record = self.state.tasks.get(task_id)
            if record is not None and record.state == TaskState.LEASED:
                record.state = TaskState.PENDING
                record.lease = None
            del self._remote[task_id]
            if lease.span_id:
                self.spans.end(lease.span_id, status="aborted")
        for task_id in list(self._inflight):
            entry = self._inflight[task_id]
            if entry.proc is not None and entry.proc.is_alive() is False:
                continue  # _collect_finished handles exited procs
            hb = heartbeat_path(self.paths.leases, task_id)
            verdict = classify_lease(
                hb,
                cfg.lease_ttl_s,
                elapsed_s=time.monotonic() - entry.granted_monotonic,
                task_timeout_s=cfg.task_timeout_s,
            )
            if verdict == "live":
                continue
            # Don't race a worker that published its outcome and is
            # merely slow to exit.
            if read_outcome(outcome_path(self.paths.outcomes, task_id)):
                continue
            pid = (
                entry.proc.pid
                if entry.proc is not None
                else read_heartbeat_pid(hb)
            )
            if verdict in ("stale", "overrun") and pid_alive(pid):
                try:
                    os.kill(pid, _signal.SIGKILL)
                except OSError:
                    pass
                if entry.proc is not None:
                    entry.proc.join(timeout=5.0)
            if entry.proc is None:
                # Adopted orphan went dead/stale: reclaim without
                # consuming an attempt — we never saw it fail, we only
                # lost contact.
                self.journal.append(
                    "lease_reclaimed",
                    task_id=task_id,
                    reason=f"watchdog: {verdict}",
                    worker_pid=pid,
                )
                record = self.state.tasks[task_id]
                record.state = TaskState.PENDING
                record.lease = None
                self._remove_lease_files(task_id)
                del self._inflight[task_id]
                if entry.span_id:
                    self.spans.end(entry.span_id, status="aborted")
            else:
                self._fail(
                    entry,
                    error=f"watchdog reclaim: {verdict} lease",
                    error_type="Watchdog",
                    worker_pid=pid,
                )

    def _settle(
        self, entry: _Inflight, outcome: Dict[str, Any]
    ) -> None:
        task_id = entry.task_id
        record = self.state.tasks[task_id]
        if entry.proc is not None:
            entry.proc.join(timeout=5.0)
        if outcome.get("ok"):
            envelope = outcome.get("envelope") or {}
            result = envelope.get("result")
            if isinstance(result, dict):
                self.cache.put(
                    task_id, result, record.description or {}
                )
                maybe_kill("result_commit")
                self.journal.append(
                    "task_completed",
                    task_id=task_id,
                    source="worker",
                    result_sha256=result_checksum(result),
                    worker_pid=envelope.get("worker_pid"),
                    elapsed_s=envelope.get("elapsed_s"),
                )
                record.state = TaskState.COMPLETED
                record.completed_from = "worker"
                record.lease = None
                spans = envelope.get("spans")
                if spans:
                    self.spans.adopt(spans)
                self.trace.record(
                    "finished",
                    task_index=entry.task_index,
                    kind=record.kind,
                    attempt=entry.attempt,
                    duration_s=envelope.get("elapsed_s"),
                    worker_pid=envelope.get("worker_pid"),
                    span_id=entry.span_id,
                )
                if entry.span_id:
                    self.spans.end(entry.span_id, status="ok")
                self._remove_lease_files(task_id)
                del self._inflight[task_id]
                return
            outcome = {
                "ok": False,
                "error": "worker outcome carried no result dict",
                "error_type": "BadOutcome",
            }
        self._fail(
            entry,
            error=str(outcome.get("error", "unknown")),
            error_type=str(outcome.get("error_type", "Unknown")),
            traceback_text=outcome.get("traceback"),
            worker_pid=(
                entry.proc.pid if entry.proc is not None else None
            ),
        )

    def _fail(
        self,
        entry: _Inflight,
        error: str,
        error_type: str,
        traceback_text: Optional[str] = None,
        worker_pid: Optional[int] = None,
    ) -> None:
        del self._inflight[entry.task_id]
        self._record_failure(
            entry.task_id,
            error=error,
            error_type=error_type,
            traceback_text=traceback_text,
            worker_pid=worker_pid,
            span_id=entry.span_id,
            task_index=entry.task_index,
        )

    def _record_failure(
        self,
        task_id: str,
        *,
        error: str,
        error_type: str,
        traceback_text: Optional[str] = None,
        worker_pid: Optional[int] = None,
        worker_id: Optional[str] = None,
        span_id: Optional[str] = None,
        task_index: Optional[int] = None,
    ) -> None:
        """One failed attempt: journal, retry-or-quarantine.  Shared by
        the local worker paths and the remote ``/v1/tasks/<id>/fail``
        route."""
        record = self.state.tasks[task_id]
        attempt = record.attempts + 1
        self.journal.append(
            "task_failed",
            task_id=task_id,
            attempt=attempt,
            error=error,
            error_type=error_type,
            worker_pid=worker_pid,
            worker=worker_id,
        )
        record.attempts = attempt
        record.last_error = error
        record.last_error_type = error_type
        record.lease = None
        self._failures.setdefault(task_id, []).append(
            {
                "attempt": attempt,
                "error": error,
                "error_type": error_type,
                "traceback": traceback_text,
                "epoch_s": time.time(),
                "worker_pid": worker_pid,
                "worker": worker_id,
            }
        )
        self._remove_lease_files(task_id)
        if span_id:
            self.spans.end(span_id, status="error")
        if attempt > self.config.max_retries:
            record_path = write_quarantine_record(
                self.paths.quarantine,
                task_id,
                record.description or {},
                self._failures[task_id],
                run_id=self.trace.run_id,
                span_id=span_id,
            )
            self.journal.append(
                "task_quarantined",
                task_id=task_id,
                attempts=attempt,
                record_path=str(record_path),
            )
            record.state = TaskState.QUARANTINED
            record.quarantine_record = str(record_path)
            self.trace.record(
                "failed",
                task_index=task_index,
                kind=record.kind,
                attempt=attempt,
                error=f"{error_type}: {error}",
                span_id=span_id,
            )
        else:
            record.state = TaskState.PENDING
            self.trace.record(
                "retried",
                task_index=task_index,
                kind=record.kind,
                attempt=attempt,
                error=f"{error_type}: {error}",
                span_id=span_id,
            )

    # -- remote sharding (the HTTP worker protocol) ------------------------

    def remote_claim(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Lease one pending task to a remote worker host; ``None`` when
        nothing is claimable.

        The remote twin of ``_dispatch_pending``'s spawn branch: same
        journal record (``lease_granted``, plus the worker id), same
        cache fast-path (an already-cached pending task is completed
        here, never shipped), same attempt accounting.  The returned
        shard carries the full task description — the remote host
        rebuilds the :class:`~repro.runner.tasks.Task` with its exact
        :class:`~repro.runner.seeding.SeedSpec`, so where a task runs
        can never change its bits.
        """
        with self.lock:
            if self.draining or self.closed:
                return None
            for record in self.state.by_state(TaskState.PENDING):
                if record.description is None:
                    continue
                task_id = record.task_id
                cached = self.cache.get(task_id)
                if cached is not None:
                    self.journal.append(
                        "task_completed",
                        task_id=task_id,
                        source="cache",
                        result_sha256=result_checksum(cached),
                    )
                    record.state = TaskState.COMPLETED
                    record.completed_from = "cache"
                    self.trace.record(
                        "cache_hit",
                        task_index=self._task_index(task_id),
                        kind=record.kind,
                        span_id=self._sweep_span,
                    )
                    continue
                attempt = record.attempts
                span_id = self.spans.start(
                    "point",
                    parent_id=self._sweep_span,
                    task_id=task_id,
                    kind=record.kind,
                    attempt=attempt,
                    worker=worker_id,
                )
                self.journal.append(
                    "lease_granted",
                    task_id=task_id,
                    lease_id=f"{worker_id}-{self.journal.seq}",
                    ttl_s=self.config.lease_ttl_s,
                    attempt=attempt,
                    worker=worker_id,
                )
                record.state = TaskState.LEASED
                maybe_kill("lease_grant")
                now = time.monotonic()
                self._remote[task_id] = _RemoteLease(
                    task_id=task_id,
                    worker_id=worker_id,
                    attempt=attempt,
                    granted_monotonic=now,
                    last_beat_monotonic=now,
                    span_id=span_id,
                    task_index=self._task_index(task_id),
                )
                self.trace.record(
                    "started",
                    task_index=self._task_index(task_id),
                    kind=record.kind,
                    attempt=attempt,
                    span_id=span_id,
                    parent_id=self._sweep_span,
                )
                return {
                    "task_id": task_id,
                    "task": record.description,
                    "attempt": attempt,
                    "lease_ttl_s": self.config.lease_ttl_s,
                    "heartbeat_interval_s": self.config.heartbeat_interval_s,
                }
            return None

    def remote_heartbeat(self, task_id: str, worker_id: str) -> bool:
        """Refresh a remote lease; ``False`` when the lease is gone.

        ``False`` tells the worker its lease was reclaimed (it was
        silent past the TTL, or the server restarted).  The worker may
        still finish and commit — the commit converges idempotently —
        but it must not rely on exclusivity.
        """
        with self.lock:
            lease = self._remote.get(task_id)
            if lease is None or lease.worker_id != worker_id:
                return False
            lease.last_beat_monotonic = time.monotonic()
            return True

    def remote_complete(
        self,
        task_id: str,
        worker_id: str,
        result: Dict[str, Any],
        elapsed_s: Optional[float] = None,
        worker_pid: Optional[int] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> str:
        """Commit a remote result: ``committed`` / ``duplicate`` /
        ``unknown``.

        Commit order is exactly PR 9's crash window: ``cache.put`` →
        (``result_commit`` kill point) → journal ``task_completed``.  A
        partition between the commit and the worker seeing the ack
        converges on redelivery: the retried request finds the task
        COMPLETED and is answered ``duplicate`` — same bits, no
        recomputation.  Commits are accepted even when the lease was
        reclaimed meanwhile (task identity is the cache key; a correct
        result is a correct result regardless of who held the lease).
        """
        with self.lock:
            if self.closed:
                return "unknown"
            record = self.state.tasks.get(task_id)
            if record is None:
                return "unknown"
            if record.state == TaskState.COMPLETED:
                return "duplicate"
            self.cache.put(task_id, result, record.description or {})
            maybe_kill("result_commit")
            self.journal.append(
                "task_completed",
                task_id=task_id,
                source="worker",
                result_sha256=result_checksum(result),
                worker=worker_id,
                worker_pid=worker_pid,
                elapsed_s=elapsed_s,
            )
            record.state = TaskState.COMPLETED
            record.completed_from = "worker"
            record.lease = None
            lease = self._remote.pop(task_id, None)
            if spans:
                self.spans.adopt(spans)
            self.trace.record(
                "finished",
                task_index=self._task_index(task_id),
                kind=record.kind,
                attempt=lease.attempt if lease else record.attempts,
                duration_s=elapsed_s,
                worker_pid=worker_pid,
                span_id=lease.span_id if lease else None,
            )
            if lease and lease.span_id:
                self.spans.end(lease.span_id, status="ok")
            self._remove_lease_files(task_id)
            return "committed"

    def remote_fail(
        self,
        task_id: str,
        worker_id: str,
        error: str,
        error_type: str = "RemoteWorkerError",
        traceback_text: Optional[str] = None,
    ) -> str:
        """Record a remote attempt failure: ``failed`` / ``ignored``.

        Only the current lease holder's report consumes an attempt — a
        stale worker whose lease was already reclaimed (its failure may
        have *been* the partition) is ignored, preserving the
        reclaim-does-not-consume-an-attempt invariant.
        """
        with self.lock:
            if self.closed:
                return "ignored"
            lease = self._remote.get(task_id)
            if lease is None or lease.worker_id != worker_id:
                return "ignored"
            del self._remote[task_id]
            self._record_failure(
                task_id,
                error=error,
                error_type=error_type,
                traceback_text=traceback_text,
                worker_id=worker_id,
                span_id=lease.span_id,
                task_index=lease.task_index,
            )
            return "failed"

    # -- drain / shutdown --------------------------------------------------

    def _drain(self) -> None:
        """Stop dispatching; settle or release what's in flight.

        Remote leases get the same courtesy as local workers: the drain
        window lets in-flight hosts commit their results (the HTTP
        result route stays open while ``draining`` — only *new*
        submissions and claims are refused with 503); leases still held
        at the deadline are released without consuming an attempt.
        """
        with self.lock:
            self.draining = True
            self.journal.append(
                "drain_start",
                pid=os.getpid(),
                inflight=len(self._inflight),
                remote=len(self._remote),
            )
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            with self.lock:
                self._collect_finished()
                if not self._inflight and not self._remote:
                    break
            time.sleep(self.config.poll_interval_s)
        with self.lock:
            self._release_inflight(terminate=True)
            self._release_remote()

    def _release_remote(self) -> None:
        for task_id in list(self._remote):
            lease = self._remote.pop(task_id)
            self.journal.append(
                "lease_released",
                task_id=task_id,
                reason="drain",
                worker=lease.worker_id,
            )
            record = self.state.tasks.get(task_id)
            if record is not None and record.state == TaskState.LEASED:
                record.state = TaskState.PENDING
                record.lease = None
            if lease.span_id:
                self.spans.end(lease.span_id, status="aborted")

    def _release_inflight(self, terminate: bool) -> None:
        for task_id in list(self._inflight):
            entry = self._inflight.pop(task_id)
            if entry.proc is not None and entry.proc.is_alive():
                if terminate:
                    entry.proc.terminate()
                    entry.proc.join(timeout=2.0)
                    if entry.proc.is_alive():
                        entry.proc.kill()
                        entry.proc.join(timeout=2.0)
            self.journal.append(
                "lease_released",
                task_id=task_id,
                reason="drain" if terminate else "shutdown",
            )
            record = self.state.tasks.get(task_id)
            if record is not None and record.state == TaskState.LEASED:
                record.state = TaskState.PENDING
                record.lease = None
            self._remove_lease_files(task_id)
            if entry.span_id:
                self.spans.end(entry.span_id, status="aborted")

    # -- helpers -----------------------------------------------------------

    def _remove_lease_files(self, task_id: str) -> None:
        for path in (
            heartbeat_path(self.paths.leases, task_id),
            outcome_path(self.paths.outcomes, task_id),
        ):
            try:
                path.unlink()
            except OSError:
                pass

    def _flush_telemetry(self) -> None:
        telemetry = self.paths.telemetry
        try:
            telemetry.mkdir(parents=True, exist_ok=True)
            self.trace.flush_jsonl(telemetry / "trace.jsonl")
            self.spans.flush_jsonl(telemetry / "spans.jsonl")
            write_openmetrics(
                telemetry / "metrics.prom", run_id=self.trace.run_id
            )
        except OSError:
            pass
