"""Poison-task quarantine: park what keeps failing, with forensics.

A task that fails ``max_retries + 1`` *deterministic* attempts — same
payload, same :class:`~repro.runner.seeding.SeedSpec`, bit-identical
replay each time — is not going to succeed on attempt N+1.  Leaving it
in the queue wedges the sweep forever; silently dropping it corrupts
the sweep's meaning.  Quarantine is the third option: the task is
journaled ``task_quarantined``, removed from scheduling, and a
structured forensics record is written to
``quarantine/<task_id>.json`` holding everything a human (or a later
tool) needs to reproduce the failure offline::

    {
      "task_id": "...",          # == cache key of the description
      "task": {...},             # full Task.describe() — rerunnable as-is
      "attempts": 3,
      "failures": [              # one entry per attempt, in order
        {"attempt": 1, "error": "...", "error_type": "KeyError",
         "traceback": "...", "epoch_s": ..., "worker_pid": ...},
        ...
      ],
      "quarantined_epoch_s": ...,
      "orchestrator_pid": ...
    }

The sweep then *completes partial-clean*: every healthy point finishes
and is cached, the status view shows exactly which points are parked
and why, and re-submitting after a fix re-enqueues only the quarantined
points (completed ones dedupe against the cache).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..checkpoint.integrity import atomic_write_text

__all__ = [
    "QUARANTINE_DIRNAME",
    "quarantine_record_path",
    "read_quarantine_record",
    "read_quarantine_records",
    "write_quarantine_record",
]

#: Forensics directory inside a service directory.
QUARANTINE_DIRNAME = "quarantine"


def quarantine_record_path(
    quarantine_dir: Union[str, Path], task_id: str
) -> Path:
    return Path(quarantine_dir) / f"{task_id}.json"


def write_quarantine_record(
    quarantine_dir: Union[str, Path],
    task_id: str,
    description: Dict[str, Any],
    failures: List[Dict[str, Any]],
    run_id: Optional[str] = None,
    span_id: Optional[str] = None,
) -> Path:
    """Atomically write the forensics record; returns its path.

    ``run_id``/``span_id`` correlate the record with the orchestrator's
    telemetry: ``repro-plc report`` can link a parked task straight to
    the span tree of the attempt that condemned it.
    """
    record = {
        "task_id": task_id,
        "task": description,
        "attempts": len(failures),
        "failures": failures,
        "quarantined_epoch_s": time.time(),
        "orchestrator_pid": os.getpid(),
    }
    if run_id is not None:
        record["run_id"] = run_id
    if span_id is not None:
        record["span_id"] = span_id
    path = quarantine_record_path(quarantine_dir, task_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(str(path), json.dumps(record, indent=2))
    return path


def read_quarantine_record(
    path: Union[str, Path],
) -> Optional[Dict[str, Any]]:
    try:
        record = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or "task_id" not in record:
        return None
    return record


def read_quarantine_records(
    quarantine_dir: Union[str, Path],
) -> List[Dict[str, Any]]:
    """All readable forensics records, sorted by quarantine time."""
    directory = Path(quarantine_dir)
    if not directory.is_dir():
        return []
    records = []
    for path in sorted(directory.glob("*.json")):
        record = read_quarantine_record(path)
        if record is not None:
            records.append(record)
    records.sort(key=lambda r: r.get("quarantined_epoch_s", 0.0))
    return records
