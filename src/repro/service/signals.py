"""Graceful-shutdown signal handling for the service and the CLI.

Two consumers, two modes:

``mode="flag"`` (the ``serve`` loop)
    SIGTERM/SIGINT set a :class:`threading.Event` the orchestrator
    polls between scheduling steps.  The loop then *drains*: stops
    dispatching, lets (or makes) in-flight workers finish, journals
    ``lease_released``/``service_stop``, flushes telemetry, and exits
    0.  A second signal during the drain escalates to the default
    disposition (the operator can always double-^C their way out).

``mode="raise"`` (one-shot CLI commands: ``sweep``, ``batch``, ...)
    The handler raises :class:`ShutdownRequested` *at the interrupted
    frame*, so the runner's ``finally`` blocks run — open spans close
    with ``status="interrupted"``, trace JSONL flushes, checkpoints
    stay valid — instead of the process dying with truncated telemetry.
    :class:`ShutdownRequested` subclasses ``BaseException`` (like
    ``KeyboardInterrupt``) precisely so the runner's ``except
    Exception`` retry machinery cannot mistake an operator's ^C for a
    failing task and burn retry attempts on it.  The CLI converts it to
    the conventional ``128 + signum`` exit status.

Handlers are only installable from the main thread (a CPython
constraint); :func:`handle_signals` degrades to a no-op elsewhere so
library callers can use it unconditionally.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Optional, Tuple

__all__ = ["ShutdownRequested", "ShutdownFlag", "handle_signals"]

#: Signals that mean "stop cleanly".
SHUTDOWN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class ShutdownRequested(BaseException):
    """An operator asked this process to stop (SIGTERM/SIGINT).

    ``BaseException`` on purpose — see the module docstring.
    """

    def __init__(self, signum: int) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = str(signum)
        super().__init__(f"shutdown requested ({name})")
        self.signum = signum

    @property
    def exit_status(self) -> int:
        """The conventional fatal-signal exit status."""
        return 128 + self.signum


class ShutdownFlag:
    """What ``mode="flag"`` hands back: an event plus the signal seen."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signum: Optional[int] = None

    def set(self, signum: int) -> None:
        if self.signum is None:
            self.signum = signum
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


@contextlib.contextmanager
def handle_signals(
    mode: str = "raise",
    signals: Tuple[int, ...] = SHUTDOWN_SIGNALS,
) -> Iterator[ShutdownFlag]:
    """Install shutdown handlers for the ``with`` body; restore after.

    Yields a :class:`ShutdownFlag`.  In ``"flag"`` mode the *first*
    signal sets the flag and the handler uninstalls itself for that
    signal, so a repeat signal gets the default (hard) disposition.  In
    ``"raise"`` mode the flag is set and :class:`ShutdownRequested` is
    raised into the interrupted frame.
    """
    if mode not in ("raise", "flag"):
        raise ValueError(f"unknown signal mode {mode!r}")
    flag = ShutdownFlag()
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return

    def _handler(signum, frame):
        flag.set(signum)
        if mode == "flag":
            # Second signal of this kind → default disposition.
            signal.signal(signum, signal.SIG_DFL)
            return
        raise ShutdownRequested(signum)

    previous = {}
    try:
        for signum in signals:
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (OSError, ValueError):
                continue
        yield flag
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (OSError, ValueError):
                pass
