"""Fold a replayed journal into the service's current task state.

The journal (:mod:`repro.service.journal`) is the write-ahead log; this
module is the deterministic reducer that turns its record stream into
the orchestrator's working state: one :class:`TaskRecord` per task id
with its lifecycle state, attempt count, active lease, and last error.
Both the restarting orchestrator (crash recovery) and the read-only
status view (``repro-plc status``) run the *same* fold, so what the
operator sees is exactly what a restart would act on.

Task lifecycle::

    PENDING ──lease_granted──▶ LEASED ──task_completed──▶ COMPLETED
       ▲                         │
       │      lease_reclaimed /  │ task_failed (attempts ≤ retries)
       └──────lease_released─────┘
                                 │ task_quarantined
                                 ▼
                            QUARANTINED

``task_failed`` consumes an attempt and returns the task to PENDING
(the orchestrator re-leases it, bit-identically — same
:class:`~repro.runner.seeding.SeedSpec`); ``lease_reclaimed`` and
``lease_released`` do *not* consume an attempt (a dead orchestrator or
a drain is not evidence against the task).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "TaskState",
    "TaskRecord",
    "SubmitRecord",
    "ServiceState",
    "fold_journal",
    "fold_records",
]


class TaskState:
    """Lifecycle states a journaled task can be in."""

    PENDING = "pending"
    LEASED = "leased"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"

    ALL = (PENDING, LEASED, COMPLETED, QUARANTINED)


@dataclasses.dataclass
class TaskRecord:
    """Folded view of one task's journal history."""

    task_id: str
    state: str = TaskState.PENDING
    #: The task's full JSON-able description
    #: (:meth:`repro.runner.tasks.Task.describe`), carried in the
    #: ``task_enqueued`` record so a restart can rebuild the
    #: :class:`~repro.runner.tasks.Task` from the journal alone.
    description: Optional[Dict[str, Any]] = None
    submit_id: Optional[str] = None
    #: Failed attempts so far (a reclaim/release does not count).
    attempts: int = 0
    #: Active lease fields (``lease_id``/``worker_pid``/``epoch_s``/
    #: ``ttl_s``), present only in the LEASED state.
    lease: Optional[Dict[str, Any]] = None
    last_error: Optional[str] = None
    last_error_type: Optional[str] = None
    #: Where the completed result came from: ``"worker"`` or ``"cache"``.
    completed_from: Optional[str] = None
    result_sha256: Optional[str] = None
    quarantine_record: Optional[str] = None

    @property
    def kind(self) -> Optional[str]:
        if self.description is None:
            return None
        return self.description.get("kind")

    def as_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        del out["description"]
        out["kind"] = self.kind
        return {k: v for k, v in out.items() if v is not None}


@dataclasses.dataclass
class SubmitRecord:
    """Folded view of one accepted or rejected submission."""

    submit_id: str
    accepted: bool
    label: Optional[str] = None
    task_count: int = 0
    deduped: int = 0
    reason: Optional[str] = None


@dataclasses.dataclass
class ServiceState:
    """Everything a restart (or a status view) needs from the journal."""

    tasks: Dict[str, TaskRecord] = dataclasses.field(default_factory=dict)
    submits: Dict[str, SubmitRecord] = dataclasses.field(
        default_factory=dict
    )
    #: ``service_start``/``service_resume``/``service_stop`` history,
    #: newest last.
    incarnations: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list
    )
    #: Records skipped by the replay (torn/corrupt lines).
    corrupt_records: int = 0
    records: int = 0

    def by_state(self, state: str) -> List[TaskRecord]:
        return [t for t in self.tasks.values() if t.state == state]

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in TaskState.ALL}
        for task in self.tasks.values():
            out[task.state] += 1
        return out

    @property
    def queue_depth(self) -> int:
        """Tasks the service still owes work to (pending + leased)."""
        counts = self.counts()
        return counts[TaskState.PENDING] + counts[TaskState.LEASED]

    @property
    def stopped_clean(self) -> bool:
        """True when the newest incarnation ended with ``service_stop``."""
        return bool(
            self.incarnations
            and self.incarnations[-1]["event"] == "service_stop"
        )


def fold_records(records: List[Dict[str, Any]]) -> ServiceState:
    """Reduce journal records (in file order) to a :class:`ServiceState`."""
    state = ServiceState(records=len(records))
    for record in records:
        event = record.get("event")
        task_id = record.get("task_id")
        if event in ("service_start", "service_resume", "service_stop"):
            state.incarnations.append(record)
            continue
        if event in ("sweep_accepted", "sweep_rejected"):
            submit_id = record.get("submit_id", "?")
            state.submits[submit_id] = SubmitRecord(
                submit_id=submit_id,
                accepted=(event == "sweep_accepted"),
                label=record.get("label"),
                task_count=int(record.get("task_count", 0)),
                deduped=int(record.get("deduped", 0)),
                reason=record.get("reason"),
            )
            continue
        if not task_id:
            continue
        task = state.tasks.get(task_id)
        if task is None:
            task = state.tasks[task_id] = TaskRecord(task_id=task_id)
        if event == "task_enqueued":
            task.state = TaskState.PENDING
            task.description = record.get("task", task.description)
            task.submit_id = record.get("submit_id", task.submit_id)
        elif event == "lease_granted":
            task.state = TaskState.LEASED
            task.lease = {
                "lease_id": record.get("lease_id"),
                "epoch_s": record.get("epoch_s"),
                "ttl_s": record.get("ttl_s"),
                "attempt": record.get("attempt", task.attempts),
            }
        elif event in ("lease_reclaimed", "lease_released"):
            # Not evidence against the task: no attempt consumed.
            if task.state == TaskState.LEASED:
                task.state = TaskState.PENDING
            task.lease = None
        elif event == "task_failed":
            task.attempts = int(record.get("attempt", task.attempts + 1))
            task.last_error = record.get("error")
            task.last_error_type = record.get("error_type")
            if task.state == TaskState.LEASED:
                task.state = TaskState.PENDING
            task.lease = None
        elif event == "task_completed":
            task.state = TaskState.COMPLETED
            task.lease = None
            task.completed_from = record.get("source", "worker")
            task.result_sha256 = record.get("result_sha256")
        elif event == "task_quarantined":
            task.state = TaskState.QUARANTINED
            task.lease = None
            task.attempts = int(record.get("attempts", task.attempts))
            task.quarantine_record = record.get("record_path")
    return state


def fold_journal(
    path_or_dir: Union[str, "Path"],  # noqa: F821 - str/Path both fine
) -> ServiceState:
    """Replay and fold the journal at ``path`` (file or service dir)."""
    from pathlib import Path

    from .journal import JOURNAL_FILENAME, read_journal

    path = Path(path_or_dir)
    if path.is_dir():
        path = path / JOURNAL_FILENAME
    records, corrupt = read_journal(path)
    state = fold_records(records)
    state.corrupt_records = corrupt
    return state
