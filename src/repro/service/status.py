"""The read-only service status view behind ``repro-plc status``.

Folds three on-disk streams — none of which the reader may mutate —
into one operator picture:

- the **journal** (via :func:`repro.service.state.fold_journal`): queue
  counts, per-task lifecycle, submissions, incarnation history.  The
  same fold a restart runs, so status shows exactly the state a crash
  would recover to;
- the **telemetry** trace/span JSONL from PR 8, folded through the very
  :class:`~repro.telemetry.console.SweepStatus` aggregator that powers
  ``repro-plc top`` — the orchestrator emits runner-compatible
  lifecycle events precisely so this (and ``top`` pointed at the
  service's telemetry dir) works unmodified;
- the **quarantine** forensics records, so the parked tasks are listed
  with their failure signatures, not just counted.

Everything is computed from files; a live orchestrator is detected only
by its pid file + a liveness probe, never contacted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..telemetry.console import SweepStatus
from .journal import journal_tail_state
from .leases import pid_alive
from .orchestrator import ServicePaths
from .quarantine import read_quarantine_records
from .state import TaskState, fold_journal

__all__ = ["service_status", "render_service_status"]


def _read_jsonl_tolerant(path: Path) -> List[Dict[str, Any]]:
    """Per-line JSONL read that *skips* torn/corrupt lines.

    A status probe races live writers by design (``kill -9`` mid-write
    leaves a torn trailing line in trace/span files); the read-only
    view must report around that, never crash on it.
    """
    rows: List[Dict[str, Any]] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(row, dict):
                    rows.append(row)
    except OSError:
        pass
    return rows


def service_status(
    service_dir: Union[str, Path],
) -> Dict[str, Any]:
    """The full status document for one service directory."""
    paths = ServicePaths(Path(service_dir))
    state = fold_journal(paths.journal)

    serving_pid = None
    try:
        pid = int(paths.pid_file.read_text(encoding="utf-8").strip())
        if pid_alive(pid):
            serving_pid = pid
    except (OSError, ValueError):
        pass

    sweep = SweepStatus()
    for name in ("trace.jsonl", "spans.jsonl"):
        for record in _read_jsonl_tolerant(paths.telemetry / name):
            sweep.update(record)

    quarantined = [
        {
            "task_id": record["task_id"],
            "kind": record.get("task", {}).get("kind"),
            "attempts": record.get("attempts"),
            "last_error": (
                record["failures"][-1].get("error")
                if record.get("failures")
                else None
            ),
            "last_error_type": (
                record["failures"][-1].get("error_type")
                if record.get("failures")
                else None
            ),
        }
        for record in read_quarantine_records(paths.quarantine)
    ]

    return {
        "service_dir": str(paths.root),
        "serving": serving_pid is not None,
        "serving_pid": serving_pid,
        "drain_requested": paths.drain_marker.exists(),
        "journal_records": state.records,
        "corrupt_records": state.corrupt_records,
        "journal_tail": journal_tail_state(paths.journal),
        "stopped_clean": state.stopped_clean,
        "counts": state.counts(),
        "queue_depth": state.queue_depth,
        "inbox": len(list(paths.inbox.glob("*.json")))
        if paths.inbox.is_dir()
        else 0,
        "submits": [
            {
                "submit_id": s.submit_id,
                "accepted": s.accepted,
                "label": s.label,
                "task_count": s.task_count,
                "deduped": s.deduped,
                "reason": s.reason,
            }
            for s in state.submits.values()
        ],
        "quarantined": quarantined,
        "telemetry": {
            "run_id": sweep.run_id,
            "kinds": {
                kind: stats.as_dict()
                for kind, stats in sweep.kinds.items()
            },
            "open_spans": len(sweep.open_spans),
            "run_ended": sweep.run_ended,
        },
    }


def render_service_status(status: Dict[str, Any]) -> str:
    """One human-readable text frame of a status document."""
    lines: List[str] = []
    counts = status["counts"]
    serving = (
        f"serving (pid {status['serving_pid']})"
        if status["serving"]
        else ("stopped clean" if status["stopped_clean"] else "stopped")
    )
    if status["drain_requested"]:
        serving += " [drain requested]"
    lines.append(f"service   : {status['service_dir']}")
    lines.append(f"state     : {serving}")
    lines.append(
        "tasks     : "
        f"{counts[TaskState.COMPLETED]} completed, "
        f"{counts[TaskState.PENDING]} pending, "
        f"{counts[TaskState.LEASED]} leased, "
        f"{counts[TaskState.QUARANTINED]} quarantined"
    )
    lines.append(
        f"journal   : {status['journal_records']} records"
        + (
            f" ({status['corrupt_records']} corrupt skipped)"
            if status["corrupt_records"]
            else ""
        )
        + (
            f" [tail {status['journal_tail']}]"
            if status.get("journal_tail") not in (None, "clean")
            else ""
        )
    )
    if status["inbox"]:
        lines.append(f"inbox     : {status['inbox']} submission(s) waiting")
    for submit in status["submits"]:
        verdict = "accepted" if submit["accepted"] else "REJECTED"
        label = f" '{submit['label']}'" if submit["label"] else ""
        detail = (
            f"{submit['task_count']} task(s), {submit['deduped']} deduped"
            if submit["accepted"]
            else str(submit["reason"])
        )
        lines.append(
            f"submit    : {submit['submit_id'][:12]}{label} "
            f"{verdict} — {detail}"
        )
    for parked in status["quarantined"]:
        lines.append(
            f"quarantine: {parked['task_id'][:12]} ({parked['kind']}) "
            f"after {parked['attempts']} attempt(s) — "
            f"{parked['last_error_type']}: {parked['last_error']}"
        )
    telemetry = status["telemetry"]
    if telemetry["run_id"]:
        for kind, stats in sorted(telemetry["kinds"].items()):
            lines.append(
                f"trace     : {kind} {stats['done']}/{stats['total']} done"
                + (
                    f", {stats['retried']} retried"
                    if stats["retried"]
                    else ""
                )
                + (
                    f", {stats['cache_hits']} cache hits"
                    if stats["cache_hits"]
                    else ""
                )
            )
    return "\n".join(lines)
