"""Sweep submissions: the service's only cross-process input channel.

The journal has exactly one writer — the orchestrator — so clients
never touch it.  A submission is a JSON file dropped atomically into
the service's ``inbox/`` directory; the orchestrator's scheduling loop
picks it up, applies admission control, journals ``sweep_accepted``
plus one ``task_enqueued`` per *new* task (tasks whose cache key is
already completed or cached dedupe away), and deletes the inbox file.
A rejected submission (queue over depth limit, malformed file) moves to
``rejected/`` with the reason attached — client-visible backpressure
instead of silent loss.

The submission id is the sha256 of the canonical JSON of the task
descriptions, so a client retrying a drop (or two clients submitting
the identical sweep) collapses to one inbox file — idempotent by
construction, the same content-hash discipline as the result cache.

Task identity throughout the service is
:func:`repro.runner.cache.cache_key` of the task's ``describe()`` dict
— *the* key the result cache uses — which is what makes ``submit``
dedupe against prior sweeps for free.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..checkpoint.integrity import atomic_write_text, sha256_hex
from ..runner.cache import ResultCache, cache_key
from ..runner.serialize import canonical_json
from ..runner.tasks import Task

__all__ = [
    "INBOX_DIRNAME",
    "REJECTED_DIRNAME",
    "build_submission",
    "read_submission",
    "standard_sweep_tasks",
    "submission_id",
    "validate_submission",
    "write_submission",
]

#: Client drop-box inside a service directory.
INBOX_DIRNAME = "inbox"

#: Where refused submissions land, reason attached.
REJECTED_DIRNAME = "rejected"


def submission_id(descriptions: Sequence[Dict[str, Any]]) -> str:
    """Content hash identifying a submission by exactly its tasks."""
    return sha256_hex(
        canonical_json({"tasks": list(descriptions)}).encode("utf-8")
    )


def build_submission(
    tasks: Sequence[Task], label: Optional[str] = None
) -> Dict[str, Any]:
    """The JSON-able submission document for ``tasks``."""
    descriptions = [task.describe() for task in tasks]
    return {
        "submit_id": submission_id(descriptions),
        "label": label,
        "created_epoch_s": time.time(),
        "tasks": descriptions,
    }


def write_submission(
    inbox_dir: Union[str, Path], submission: Dict[str, Any]
) -> Path:
    """Atomically drop ``submission`` into the inbox; returns its path.

    Atomic write (temp + rename in the same directory) guarantees the
    orchestrator's inbox scan never reads a half-written submission.
    """
    path = Path(inbox_dir) / f"{submission['submit_id']}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(str(path), json.dumps(submission, indent=2))
    return path


def validate_submission(submission: Any) -> Optional[Dict[str, Any]]:
    """Validate a parsed submission document; ``None`` when malformed.

    Shared by the inbox scan (:func:`read_submission`) and the HTTP
    front end (``POST /v1/sweeps``) so both input channels accept
    exactly the same shape.
    """
    if not isinstance(submission, dict):
        return None
    tasks = submission.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        return None
    for description in tasks:
        if (
            not isinstance(description, dict)
            or "kind" not in description
            or "payload" not in description
        ):
            return None
    return submission


def read_submission(
    path: Union[str, Path],
) -> Optional[Dict[str, Any]]:
    """Parse and validate one inbox file; ``None`` when malformed."""
    try:
        submission = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return validate_submission(submission)


def dedupe_report(
    descriptions: Sequence[Dict[str, Any]],
    cache: Optional[ResultCache],
) -> Dict[str, Any]:
    """How much of a submission the result cache already covers."""
    cached = 0
    if cache is not None:
        for description in descriptions:
            if cache.path_for(cache_key(description)).is_file():
                cached += 1
    return {
        "tasks": len(descriptions),
        "cached": cached,
        "to_run": len(descriptions) - cached,
    }


def standard_sweep_tasks(
    station_counts: Sequence[int],
    sim_time_us: float = 2e7,
    repetitions: int = 3,
    seed: int = 1,
) -> List[Task]:
    """The standard protocol sweep as submittable tasks.

    Exactly the task set :func:`repro.experiments.sweeps
    .standard_protocol_sweep` would run — same configurations, same
    scenario construction, same :class:`~repro.runner.seeding.SeedSpec`
    derivation — so service-computed points share cache keys (and bits)
    with the in-process ``sweep`` command.
    """
    from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
    from ..core.parameters import PriorityClass
    from ..runner import TaskKind
    from ..runner.seeding import SeedSpec
    from ..runner.serialize import (
        csma_to_jsonable,
        scenario_to_jsonable,
        timing_to_jsonable,
    )

    timing = TimingConfig()
    counts = [int(n) for n in station_counts]
    configs = [
        ("1901 CA1", CsmaConfig.for_priority(PriorityClass.CA1)),
        ("1901 CA3", CsmaConfig.for_priority(PriorityClass.CA3)),
        ("802.11 DCF", CsmaConfig.ieee80211()),
    ]
    tasks: List[Task] = []
    for _label, config in configs:
        family = "80211" if config.protocol == "80211" else "1901"
        tasks.append(
            Task(
                kind=TaskKind.MODEL_CURVE,
                payload={
                    "family": family,
                    "csma": csma_to_jsonable(config),
                    "timing": timing_to_jsonable(timing),
                    "station_counts": counts,
                    "method": "recursive",
                },
            )
        )
        for i, n in enumerate(counts):
            scenario = ScenarioConfig.homogeneous(
                num_stations=n,
                csma=config,
                timing=timing,
                sim_time_us=sim_time_us,
                seed=seed,
            )
            for rep in range(repetitions):
                tasks.append(
                    Task(
                        kind=TaskKind.SIMULATE,
                        payload={
                            "scenario": scenario_to_jsonable(scenario)
                        },
                        seed=SeedSpec(
                            root_seed=seed, point_index=i, repetition=rep
                        ),
                    )
                )
    return tasks
