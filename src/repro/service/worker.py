"""Service worker processes: crash-isolated task execution.

The orchestrator runs every leased task in its own
``multiprocessing.Process`` whose target is :func:`worker_main`.  One
process per task buys crash isolation (a segfaulting or OOM-killed
point takes down one lease, not the pool) and makes the watchdog's job
honest: killing a stuck worker is ``SIGKILL`` on one pid with no shared
state to corrupt.

A worker's entire observable output is one file: the *outcome
envelope* at ``outcomes/<task_id>.json``, written atomically
(temp + fsync + rename) as the very last act before exit::

    {"ok": true,  "envelope": {... run_task envelope ...}}
    {"ok": false, "error": "...", "error_type": "KeyError",
     "traceback": "..."}

Atomic write means the orchestrator (or its restarted successor —
workers can outlive the orchestrator that spawned them) either sees a
complete, parseable outcome or no outcome at all; there is no torn
state to reason about.  Execution itself is
:func:`repro.runner.tasks.run_task` — the same entry the pool runner
uses — so checkpoint resume, telemetry spans, and the
``REPRO_FAULT_INJECT`` hook all work in service workers unchanged.
"""

from __future__ import annotations

import json
import traceback
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..checkpoint.integrity import atomic_write_text
from ..runner.seeding import SeedSpec
from ..runner.tasks import Task
from .leases import HeartbeatWriter

__all__ = [
    "OUTCOMES_DIRNAME",
    "outcome_path",
    "read_outcome",
    "task_from_description",
    "worker_main",
    "write_outcome",
]

#: Outcome-envelope directory inside a service directory.
OUTCOMES_DIRNAME = "outcomes"


def outcome_path(
    outcomes_dir: Union[str, Path], task_id: str
) -> Path:
    return Path(outcomes_dir) / f"{task_id}.json"


def task_from_description(
    description: Dict[str, Any],
    runtime: Optional[Dict[str, Any]] = None,
) -> Task:
    """Rebuild a :class:`Task` from its journaled ``describe()`` dict.

    The inverse of :meth:`Task.describe` — the property that lets a
    restarted orchestrator reconstruct its whole queue from the journal
    alone, with cache keys (and therefore result identity) unchanged.
    """
    seed = description.get("seed")
    return Task(
        kind=description["kind"],
        payload=description["payload"],
        seed=SeedSpec.from_jsonable(seed) if seed else None,
        runtime=runtime,
    )


def write_outcome(path: Union[str, Path], outcome: Dict[str, Any]) -> None:
    """Atomically publish a worker's outcome envelope."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(str(path), json.dumps(outcome))


def read_outcome(
    path: Union[str, Path],
) -> Optional[Dict[str, Any]]:
    """The outcome at ``path``, or ``None`` if absent/unparseable."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        outcome = json.loads(raw)
    except json.JSONDecodeError:
        return None
    if not isinstance(outcome, dict) or "ok" not in outcome:
        return None
    return outcome


def worker_main(
    task: Task,
    hb_path: str,
    out_path: str,
    heartbeat_interval_s: float = 1.0,
) -> None:
    """Process target: heartbeat, execute, publish outcome, exit.

    Never raises — every failure mode (including task kinds that throw
    on malformed payloads) becomes an ``ok: false`` outcome the
    orchestrator turns into a ``task_failed`` journal record.  Failure
    modes that *can't* run this code (segfault, OOM, ``SIGKILL``)
    leave no outcome file, which is exactly the signal the watchdog's
    dead/stale verdicts translate into a reclaim.
    """
    from ..runner.tasks import run_task

    beat = HeartbeatWriter(hb_path, interval_s=heartbeat_interval_s)
    beat.start()
    try:
        try:
            envelope = run_task(task)
            outcome: Dict[str, Any] = {"ok": True, "envelope": envelope}
        except BaseException as exc:
            outcome = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
            }
        write_outcome(out_path, outcome)
    finally:
        beat.stop()
