"""Unified run telemetry: spans, metric export, live console.

The correlation layer over every JSONL stream the repo writes:

- :mod:`repro.telemetry.context` — the ambient ``run_id``/``span_id``
  context that JSONL writers stamp on their lines (zero-cost when no
  run is active; propagated to worker processes by the runner);
- :mod:`repro.telemetry.spans` — :class:`SpanRecorder`, persisting the
  sweep → point → attempt → episode hierarchy as paired
  ``span_start``/``span_end`` JSONL records;
- :mod:`repro.telemetry.openmetrics` — the Prometheus/OpenMetrics text
  renderer for :class:`~repro.obs.registry.MetricsRegistry` and
  :class:`~repro.core.metrics.RunnerCounters` (``repro-plc metrics``);
- :mod:`repro.telemetry.tail` — rotation/truncation-safe follow-mode
  JSONL reading;
- :mod:`repro.telemetry.console` — the live sweep view
  (``repro-plc top``);
- :mod:`repro.telemetry.report` — post-hoc span tree / critical path /
  failure summaries (``repro-plc report``).
"""

from .context import (
    TelemetryContext,
    activate,
    active_context,
    current,
    current_ids,
    new_run_id,
    new_span_id,
    span,
)
from .spans import SpanRecorder, load_spans
from .openmetrics import (
    render_openmetrics,
    render_runner_counters,
    validate_openmetrics,
    write_openmetrics,
)
from .tail import JsonlTailer
from .console import KindStats, SweepStatus, follow, render_status
from .report import build_report, format_report

__all__ = [
    "TelemetryContext",
    "activate",
    "active_context",
    "current",
    "current_ids",
    "new_run_id",
    "new_span_id",
    "span",
    "SpanRecorder",
    "load_spans",
    "render_openmetrics",
    "render_runner_counters",
    "validate_openmetrics",
    "write_openmetrics",
    "JsonlTailer",
    "KindStats",
    "SweepStatus",
    "follow",
    "render_status",
    "build_report",
    "format_report",
]
