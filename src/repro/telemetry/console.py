"""The live sweep console behind ``repro-plc top``.

:class:`SweepStatus` folds the runner's task-lifecycle trace records
(and, when available, the span stream) into the live counters an
operator wants while a sweep runs: per-kind progress, retry / timeout /
cache-hit rates, an ETA extrapolated from completed-task throughput,
and the chaos episodes currently open.  :func:`render_status` turns one
status into a text frame; :func:`follow` drives the poll → fold →
render loop over :class:`~repro.telemetry.tail.JsonlTailer` instances,
so the console inherits their rotation/truncation safety.

The aggregator is pure with respect to its inputs — it never touches
the filesystem — which is what the truncation/rotation tests and the
``--once`` CI mode rely on.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .tail import JsonlTailer

__all__ = ["KindStats", "SweepStatus", "render_status", "follow"]


@dataclasses.dataclass
class KindStats:
    """Progress counters for one task kind."""

    queued: int = 0
    started: int = 0
    finished: int = 0
    failed: int = 0
    cache_hits: int = 0
    retried: int = 0
    timeouts: int = 0
    duration_sum_s: float = 0.0

    @property
    def done(self) -> int:
        return self.finished + self.failed + self.cache_hits

    @property
    def total(self) -> int:
        return max(self.queued + self.cache_hits, self.done)

    def as_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["done"] = self.done
        out["total"] = self.total
        return out


class SweepStatus:
    """Fold trace/span records into a live view of the sweep."""

    def __init__(self) -> None:
        self.run_id: Optional[str] = None
        self.epoch_s: Optional[float] = None
        self.run_start_t_s: Optional[float] = None
        self.last_t_s: float = 0.0
        self.run_ended = False
        self.kinds: Dict[str, KindStats] = {}
        self.pool_rebuilds = 0
        self.degraded_serial = 0
        #: span_id -> span_start record, for spans not yet ended.
        self.open_spans: Dict[str, Dict[str, Any]] = {}
        self.spans_seen = 0

    # -- folding ---------------------------------------------------------

    def _kind(self, name: Optional[str]) -> KindStats:
        key = name if name is not None else "?"
        stats = self.kinds.get(key)
        if stats is None:
            stats = self.kinds[key] = KindStats()
        return stats

    def update(self, record: Dict[str, Any]) -> None:
        """Fold one trace or span record."""
        event = record.get("event")
        if event in ("span_start", "span_end"):
            self._update_span(event, record)
            return
        t_s = record.get("t_s")
        if isinstance(t_s, (int, float)):
            self.last_t_s = max(self.last_t_s, t_s)
        if self.run_id is None and record.get("run_id"):
            self.run_id = record["run_id"]
        if event == "run_start":
            self.run_start_t_s = record.get("t_s", 0.0)
            if record.get("epoch_s") is not None:
                self.epoch_s = record["epoch_s"]
            return
        if event == "run_end":
            self.run_ended = True
            return
        if event == "pool_rebuild":
            self.pool_rebuilds += 1
            return
        if event == "degrade_serial":
            self.degraded_serial += 1
            return
        kind = self._kind(record.get("kind"))
        if event == "queued":
            kind.queued += 1
        elif event == "cache_hit":
            kind.cache_hits += 1
        elif event == "started":
            kind.started += 1
        elif event == "retried":
            kind.retried += 1
        elif event == "requeued":
            kind.retried += 1
        elif event == "timeout":
            kind.timeouts += 1
        elif event == "failed":
            kind.failed += 1
        elif event == "finished":
            kind.finished += 1
            duration = record.get("duration_s")
            if isinstance(duration, (int, float)):
                kind.duration_sum_s += duration

    def _update_span(self, event: str, record: Dict[str, Any]) -> None:
        self.spans_seen += 1
        span_id = record.get("span_id")
        if event == "span_start" and span_id:
            self.open_spans[span_id] = record
        elif event == "span_end" and span_id:
            self.open_spans.pop(span_id, None)

    def update_all(self, records: List[Dict[str, Any]]) -> None:
        for record in records:
            self.update(record)

    # -- derived views ---------------------------------------------------

    @property
    def total(self) -> int:
        return sum(k.total for k in self.kinds.values())

    @property
    def done(self) -> int:
        return sum(k.done for k in self.kinds.values())

    def elapsed_s(self) -> float:
        start = self.run_start_t_s if self.run_start_t_s is not None else 0.0
        return max(0.0, self.last_t_s - start)

    def eta_s(self) -> Optional[float]:
        """Remaining wall-clock estimate from completed throughput."""
        if self.run_ended:
            return 0.0
        completed = sum(
            k.finished + k.failed for k in self.kinds.values()
        )
        remaining = self.total - self.done
        if completed <= 0 or remaining <= 0:
            return None
        elapsed = self.elapsed_s()
        if elapsed <= 0:
            return None
        return remaining * elapsed / completed

    def rates(self) -> Dict[str, float]:
        """Retry / timeout / cache-hit rates over all kinds."""
        queued = sum(k.queued for k in self.kinds.values())
        lookups = queued + sum(k.cache_hits for k in self.kinds.values())
        attempts = sum(k.started for k in self.kinds.values())
        return {
            "cache_hit_rate": (
                sum(k.cache_hits for k in self.kinds.values()) / lookups
                if lookups
                else 0.0
            ),
            "retry_rate": (
                sum(k.retried for k in self.kinds.values()) / attempts
                if attempts
                else 0.0
            ),
            "timeout_rate": (
                sum(k.timeouts for k in self.kinds.values()) / attempts
                if attempts
                else 0.0
            ),
        }

    def chaos_episodes(self) -> List[Dict[str, Any]]:
        """Open spans that look like chaos episodes, oldest first."""
        episodes = [
            span
            for span in self.open_spans.values()
            if "chaos" in str(span.get("name", ""))
        ]
        episodes.sort(key=lambda span: span.get("t_s", 0.0))
        return episodes

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (what ``repro-plc top --json`` prints)."""
        return {
            "run_id": self.run_id,
            "run_ended": self.run_ended,
            "elapsed_s": self.elapsed_s(),
            "eta_s": self.eta_s(),
            "total": self.total,
            "done": self.done,
            "kinds": {
                name: stats.as_dict()
                for name, stats in sorted(self.kinds.items())
            },
            "rates": self.rates(),
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_serial": self.degraded_serial,
            "open_spans": len(self.open_spans),
            "chaos_episodes": [
                {
                    "name": span.get("name"),
                    "span_id": span.get("span_id"),
                    "since_t_s": span.get("t_s"),
                }
                for span in self.chaos_episodes()
            ],
        }


def _format_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "--"
    if eta >= 3600:
        return f"{eta / 3600:.1f}h"
    if eta >= 60:
        return f"{eta / 60:.1f}m"
    return f"{eta:.1f}s"


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def render_status(status: SweepStatus) -> str:
    """One text frame of the live console."""
    lines: List[str] = []
    run = status.run_id or "?"
    state = "ended" if status.run_ended else "running"
    lines.append(
        f"sweep {run} [{state}]  elapsed {status.elapsed_s():.1f}s"
        f"  eta {_format_eta(status.eta_s())}"
    )
    total, done = status.total, status.done
    fraction = done / total if total else 0.0
    lines.append(f"  [{_bar(fraction)}] {done}/{total} ({fraction:.0%})")
    rates = status.rates()
    lines.append(
        "  cache-hit {cache_hit_rate:.0%}  retry {retry_rate:.0%}"
        "  timeout {timeout_rate:.0%}".format(**rates)
    )
    if status.pool_rebuilds or status.degraded_serial:
        lines.append(
            f"  pool rebuilds {status.pool_rebuilds}"
            f"  degraded-serial {status.degraded_serial}"
        )
    for name, kind in sorted(status.kinds.items()):
        mean = (
            kind.duration_sum_s / kind.finished if kind.finished else 0.0
        )
        lines.append(
            f"  {name:<18} {kind.done:>5}/{kind.total:<5}"
            f"  ok {kind.finished}  cached {kind.cache_hits}"
            f"  failed {kind.failed}  retries {kind.retried}"
            f"  timeouts {kind.timeouts}  mean {mean:.3f}s"
        )
    episodes = status.chaos_episodes()
    if episodes:
        lines.append(f"  chaos episodes active: {len(episodes)}")
        for span in episodes[:5]:
            lines.append(
                f"    {span.get('name')} (span {span.get('span_id')},"
                f" since t={span.get('t_s', 0.0):.1f}s)"
            )
    return "\n".join(lines)


def follow(
    trace_path: Union[str, Path],
    spans_path: Optional[Union[str, Path]] = None,
    interval_s: float = 1.0,
    once: bool = False,
    emit: Callable[[str], None] = print,
    max_frames: Optional[int] = None,
    clear: bool = True,
) -> SweepStatus:
    """Tail the trace (and optionally spans), rendering frames via
    ``emit`` until the run ends (or forever without a ``run_end``).

    ``once=True`` reads whatever exists right now, renders a single
    frame, and returns — the CI mode, also correct for finished runs.
    """
    status = SweepStatus()
    tailers = [JsonlTailer(trace_path)]
    if spans_path is not None:
        tailers.append(JsonlTailer(spans_path))
    frames = 0
    try:
        while True:
            for tailer in tailers:
                status.update_all(tailer.poll())
            frame = render_status(status)
            if clear and not once and frames > 0:
                emit("\x1b[2J\x1b[H" + frame)
            else:
                emit(frame)
            frames += 1
            if once or status.run_ended:
                break
            if max_frames is not None and frames >= max_frames:
                break
            time.sleep(interval_s)
    finally:
        for tailer in tailers:
            tailer.close()
    return status
