"""The ambient telemetry context: run/span ids, cheaply discoverable.

Correlation across every JSONL family the repo writes (runner task
lifecycle, obs MAC/SoF traces, chaos injection ledgers, checkpoint
journals) hinges on one mechanism: while a telemetry-enabled run is
executing, a :class:`TelemetryContext` is *active*, and every JSONL
writer asks :func:`current_ids` for the ``run_id``/``span_id`` pair to
stamp on its lines.

Design constraints, in order:

1. **Zero cost when disabled.**  This module imports nothing from
   :mod:`repro`, and writers do not even import it — they look it up
   through ``sys.modules`` (see
   :func:`repro.obs.recording.append_jsonl`), so a run without
   telemetry never pays an import, an attribute walk, or a function
   call.
2. **Cross-process by value.**  A context is a plain picklable payload
   of ids; the runner ships it to worker processes inside the task's
   execution-time ``runtime`` dict (excluded from cache keys) and the
   worker re-activates it around :func:`repro.runner.tasks.execute_task`.
3. **Nesting without globals leakage.**  Activation is a stack;
   :func:`span` swaps the current span id for its body and always
   restores it, so concurrent layers (chaos inside a checkpointed test
   inside a sweep) nest correctly.
"""

from __future__ import annotations

import contextlib
import uuid
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "TelemetryContext",
    "activate",
    "active_context",
    "current",
    "current_ids",
    "new_run_id",
    "new_span_id",
    "span",
]


def new_run_id() -> str:
    """A fresh globally-unique run id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh span id (16 hex chars), unique within and across runs."""
    return uuid.uuid4().hex[:16]


class TelemetryContext:
    """One run's correlation state: ids plus an optional span recorder.

    ``recorder`` is any object with the
    :class:`repro.telemetry.spans.SpanRecorder` start/end protocol;
    when absent, :func:`span` still maintains the ``span_id`` ids (so
    JSONL annotation keeps working) without recording span events.
    """

    __slots__ = ("run_id", "span_id", "recorder")

    def __init__(
        self,
        run_id: str,
        span_id: Optional[str] = None,
        recorder: Any = None,
    ) -> None:
        self.run_id = run_id
        self.span_id = span_id
        self.recorder = recorder

    def ids(self) -> Dict[str, str]:
        """The JSON-able id stamp for one event line."""
        out = {"run_id": self.run_id}
        if self.span_id is not None:
            out["span_id"] = self.span_id
        return out


#: Activation stack; the *top* is the active context.  A plain module
#: list (not a ContextVar): the simulators are single-threaded and the
#: cross-process hand-off is explicit, so the simplest structure with
#: the cheapest ``is-empty`` check wins.
_STACK: List[TelemetryContext] = []


def current() -> Optional[TelemetryContext]:
    """The active context, or ``None`` when telemetry is disabled."""
    return _STACK[-1] if _STACK else None


def current_ids() -> Optional[Dict[str, str]]:
    """The active context's id stamp, or ``None``."""
    return _STACK[-1].ids() if _STACK else None


@contextlib.contextmanager
def activate(context: TelemetryContext) -> Iterator[TelemetryContext]:
    """Make ``context`` the active one for the duration of the body."""
    _STACK.append(context)
    try:
        yield context
    finally:
        # Remove *this* activation even if the body pushed and leaked
        # (a crashed nested activation must not orphan ours).
        for index in range(len(_STACK) - 1, -1, -1):
            if _STACK[index] is context:
                del _STACK[index]
                break


#: Back-compat alias: ``active_context`` reads better at call sites
#: that treat the activation as a scope rather than an action.
active_context = activate


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[str]]:
    """Record a child span of the current one; no-op when disabled.

    Yields the new span id (``None`` when no context is active).  The
    context's ``span_id`` is swapped for the body, so nested spans and
    annotated JSONL lines written inside the body parent correctly.
    Exceptions propagate; the span is closed with ``status="error"``.
    """
    context = current()
    if context is None:
        yield None
        return
    parent_id = context.span_id
    recorder = context.recorder
    if recorder is not None:
        span_id = recorder.start(name, parent_id=parent_id, **attrs)
    else:
        span_id = new_span_id()
    context.span_id = span_id
    try:
        yield span_id
    except BaseException:
        if recorder is not None:
            recorder.end(span_id, status="error")
        raise
    finally:
        context.span_id = parent_id
    if recorder is not None:
        recorder.end(span_id)
