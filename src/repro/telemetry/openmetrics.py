"""Render repo metrics to the OpenMetrics / Prometheus text format.

Two metric sources exist today: the labelled
:class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
histograms fed by the MAC probe) and the runner's flat
:class:`~repro.core.metrics.RunnerCounters`.  This module renders both
to the OpenMetrics text exposition format — the `# TYPE`/`# HELP`
comment lines, `_total` counter naming, cumulative `_bucket{le=...}`
histogram samples, and a trailing `# EOF` — so a run can drop a
textfile for the Prometheus node-exporter textfile collector, and
`repro-plc metrics` can print the same view of a finished run.

Histograms additionally emit a companion ``<name>_summary`` metric with
``quantile`` samples (p50/p95/p99 from
:meth:`~repro.obs.registry.Histogram.quantile`), because dashboards
usually want the quantile directly rather than a `histogram_quantile`
recomputation over coarse buckets.

:func:`validate_openmetrics` is a dependency-free format self-check
(used by the CI smoke job): it verifies the EOF terminator, sample
syntax, and that every sample belongs to a declared metric family.
"""

from __future__ import annotations

import math
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "render_openmetrics",
    "render_runner_counters",
    "write_openmetrics",
    "validate_openmetrics",
]

#: RunnerCounters fields that are monotonic event counts (rendered as
#: OpenMetrics counters); the rest (wall clock, worker count) render as
#: gauges.
_RUNNER_COUNTER_FIELDS = (
    "points_total",
    "executed",
    "cache_hits",
    "cache_misses",
    "cache_corrupt",
    "retried",
    "failed",
    "timeouts",
    "pool_rebuilds",
    "degraded_serial",
    "degraded_local",
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)(?: \S+)?$"
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in pairs
    )
    return "{" + rendered + "}" if rendered else ""


def _series_labels(
    labelnames: List[str], key: str
) -> List[Tuple[str, str]]:
    if not labelnames:
        return []
    return list(zip(labelnames, key.split(",")))


def _counter_names(name: str) -> Tuple[str, str]:
    """(family name for # TYPE, sample name) per OpenMetrics counters.

    OpenMetrics declares the family without ``_total`` and samples with
    it; registry counters are conventionally already named ``*_total``.
    """
    if name.endswith("_total"):
        return name[: -len("_total")], name
    return name, name + "_total"


def _render_counter(name: str, data: Dict[str, Any], out: List[str]) -> None:
    family, sample = _counter_names(name)
    out.append(f"# TYPE {family} counter")
    labelnames = list(data.get("labelnames", ()))
    for key, value in data.get("series", {}).items():
        labels = _labels_text(_series_labels(labelnames, key))
        out.append(f"{sample}{labels} {_format_value(value)}")


def _render_gauge(name: str, data: Dict[str, Any], out: List[str]) -> None:
    out.append(f"# TYPE {name} gauge")
    labelnames = list(data.get("labelnames", ()))
    for key, value in data.get("series", {}).items():
        labels = _labels_text(_series_labels(labelnames, key))
        out.append(f"{name}{labels} {_format_value(value)}")


def _render_histogram(
    name: str, data: Dict[str, Any], out: List[str]
) -> None:
    out.append(f"# TYPE {name} histogram")
    labelnames = list(data.get("labelnames", ()))
    buckets = list(data.get("buckets", ()))
    series = data.get("series", {})
    quantile_lines: List[str] = []
    for key, snap in series.items():
        base_labels = _series_labels(labelnames, key)
        cumulative = 0
        for bound, count in zip(buckets, snap.get("counts", ())):
            cumulative += count
            labels = _labels_text(
                base_labels + [("le", _format_value(bound))]
            )
            out.append(f"{name}_bucket{labels} {cumulative}")
        total_count = snap.get("count", 0)
        labels = _labels_text(base_labels + [("le", "+Inf")])
        out.append(f"{name}_bucket{labels} {total_count}")
        out.append(
            f"{name}_count{_labels_text(base_labels)} {total_count}"
        )
        out.append(
            f"{name}_sum{_labels_text(base_labels)} "
            f"{_format_value(snap.get('sum', 0.0))}"
        )
        for q, field in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            if field not in snap:
                continue
            labels = _labels_text(base_labels + [("quantile", str(q))])
            quantile_lines.append(
                f"{name}_summary{labels} {_format_value(snap[field])}"
            )
    if quantile_lines:
        out.append(f"# TYPE {name}_summary summary")
        out.extend(quantile_lines)
        for key, snap in series.items():
            base = _labels_text(_series_labels(labelnames, key))
            out.append(
                f"{name}_summary_count{base} {snap.get('count', 0)}"
            )
            out.append(
                f"{name}_summary_sum{base} "
                f"{_format_value(snap.get('sum', 0.0))}"
            )


def render_runner_counters(
    counters: Any, prefix: str = "runner_"
) -> List[str]:
    """RunnerCounters (or its ``as_dict()``) as OpenMetrics lines."""
    as_dict = getattr(counters, "as_dict", None)
    data = as_dict() if as_dict is not None else dict(counters)
    out: List[str] = []
    for field, value in sorted(data.items()):
        if field in _RUNNER_COUNTER_FIELDS:
            family, sample = _counter_names(prefix + field)
            out.append(f"# TYPE {family} counter")
            out.append(f"{sample} {_format_value(value)}")
        else:
            name = prefix + field
            out.append(f"# TYPE {name} gauge")
            out.append(f"{name} {_format_value(value)}")
    return out


def render_openmetrics(
    metrics: Any = None,
    runner_counters: Any = None,
    run_id: Optional[str] = None,
) -> str:
    """The full OpenMetrics exposition text, ``# EOF``-terminated.

    ``metrics`` may be a :class:`~repro.obs.registry.MetricsRegistry`
    or the plain dict its ``as_dict()`` returns (which is what a
    snapshot file holds) — so live and post-hoc exports share one
    renderer.
    """
    snapshot: Dict[str, Any] = {}
    if metrics is not None:
        as_dict = getattr(metrics, "as_dict", None)
        snapshot = as_dict() if as_dict is not None else dict(metrics)
    out: List[str] = []
    if run_id is not None:
        out.append("# TYPE run_info gauge")
        out.append("# HELP run_info Telemetry correlation id of this run.")
        out.append(f'run_info{{run_id="{_escape_label(run_id)}"}} 1')
    if runner_counters is not None:
        out.extend(render_runner_counters(runner_counters))
    for name, data in sorted(snapshot.items()):
        kind = data.get("kind")
        if kind == "counter":
            _render_counter(name, data, out)
        elif kind == "gauge":
            _render_gauge(name, data, out)
        elif kind == "histogram":
            _render_histogram(name, data, out)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def write_openmetrics(
    path: Union[str, Path],
    metrics: Any = None,
    runner_counters: Any = None,
    run_id: Optional[str] = None,
) -> Path:
    """Atomically write the exposition text to ``path`` (textfile
    collector pattern: write sibling + rename, so scrapers never see a
    torn file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = render_openmetrics(
        metrics, runner_counters=runner_counters, run_id=run_id
    )
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)
    return path


def validate_openmetrics(text: str) -> List[str]:
    """Check exposition-format well-formedness; return problem strings.

    An empty return value means the text passed.  Checked: terminal
    ``# EOF`` with nothing after it, metadata syntax, every sample line
    parses, every sample belongs to a previously declared family, no
    family is declared twice.
    """
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing terminal '# EOF' line")
    declared: Dict[str, str] = {}
    for lineno, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: content after # EOF")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            family, kind = parts[2], parts[3]
            if family in declared:
                problems.append(
                    f"line {lineno}: family {family!r} declared twice"
                )
            declared[family] = kind
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            problems.append(f"line {lineno}: unknown comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        sample = match.group("name")
        for suffix in ("_bucket", "_count", "_sum", "_total", ""):
            family = sample[: -len(suffix)] if suffix else sample
            if suffix and not sample.endswith(suffix):
                continue
            if family in declared:
                break
        else:
            problems.append(
                f"line {lineno}: sample {sample!r} has no # TYPE family"
            )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric value {value!r}"
                )
    return problems
