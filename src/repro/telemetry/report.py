"""Post-hoc run summaries behind ``repro-plc report RUN_DIR``.

Given a telemetry directory (the ``--telemetry-dir`` of a finished —
or crashed — run, holding ``trace.jsonl`` and ``spans.jsonl``), build
one report object with:

- the **span tree** (run → point → attempt → chaos/checkpoint scopes),
  with durations, statuses, and still-open spans marked (a crashed run
  shows exactly which scopes never closed);
- the **critical path**: from each root span, repeatedly descend into
  the longest child — the chain that bounded the run's wall clock;
- the **slowest points** from ``finished`` trace events;
- the **failure table**: permanently failed tasks with error text and
  attempt counts, plus timeout counts.

:func:`build_report` returns a JSON-able dict (the ``--json`` output);
:func:`format_report` renders the human text view.  Both work on live
run directories too — they simply describe whatever has been flushed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.recording import read_jsonl
from .console import SweepStatus

__all__ = ["build_report", "format_report", "TRACE_FILENAME", "SPANS_FILENAME"]

#: Canonical file names inside a ``--telemetry-dir``.
TRACE_FILENAME = "trace.jsonl"
SPANS_FILENAME = "spans.jsonl"


def _load_optional(path: Path) -> List[Dict[str, Any]]:
    if not path.exists():
        return []
    return read_jsonl(path)


def _build_span_nodes(
    spans: List[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    nodes: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        span_id = record.get("span_id")
        if not span_id:
            continue
        if record.get("event") == "span_start":
            nodes[span_id] = {
                "span_id": span_id,
                "name": record.get("name"),
                "parent_id": record.get("parent_id"),
                "t_s": record.get("t_s"),
                "attrs": record.get("attrs", {}),
                "duration_s": None,
                "status": "open",
                "children": [],
            }
        elif record.get("event") == "span_end":
            node = nodes.get(span_id)
            if node is None:
                # end without a start (rotated-away head): synthesize.
                node = nodes[span_id] = {
                    "span_id": span_id,
                    "name": record.get("name"),
                    "parent_id": None,
                    "t_s": None,
                    "attrs": {},
                    "children": [],
                }
            node["duration_s"] = record.get("duration_s")
            node["status"] = record.get("status", "ok")
    return nodes


def _link_children(
    nodes: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id") or "")
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    def start_key(node: Dict[str, Any]) -> float:
        t_s = node.get("t_s")
        return t_s if isinstance(t_s, (int, float)) else 0.0
    for node in nodes.values():
        node["children"].sort(key=start_key)
    roots.sort(key=start_key)
    return roots


def _strip_tree(node: Dict[str, Any]) -> Dict[str, Any]:
    out = {
        key: value
        for key, value in node.items()
        if key != "children" and value not in (None, {})
    }
    out["children"] = [_strip_tree(child) for child in node["children"]]
    return out


def _critical_path(root: Dict[str, Any]) -> List[Dict[str, Any]]:
    path = []
    node: Optional[Dict[str, Any]] = root
    while node is not None:
        path.append(
            {
                "name": node.get("name"),
                "span_id": node.get("span_id"),
                "duration_s": node.get("duration_s"),
                "status": node.get("status"),
            }
        )
        children = node["children"]
        node = (
            max(
                children,
                key=lambda child: child.get("duration_s") or 0.0,
            )
            if children
            else None
        )
    return path


def build_report(
    run_dir: Union[str, Path],
    trace_filename: str = TRACE_FILENAME,
    spans_filename: str = SPANS_FILENAME,
    slowest: int = 10,
) -> Dict[str, Any]:
    """One JSON-able report for a run directory."""
    run_dir = Path(run_dir)
    trace = _load_optional(run_dir / trace_filename)
    spans = _load_optional(run_dir / spans_filename)

    status = SweepStatus()
    status.update_all(trace)
    status.update_all(spans)

    nodes = _build_span_nodes(spans)
    roots = _link_children(nodes)

    finished = [
        record
        for record in trace
        if record.get("event") == "finished"
        and isinstance(record.get("duration_s"), (int, float))
    ]
    finished.sort(key=lambda record: -record["duration_s"])
    slowest_points = [
        {
            "task_index": record.get("task_index"),
            "kind": record.get("kind"),
            "attempt": record.get("attempt", 0),
            "duration_s": record.get("duration_s"),
            "worker_pid": record.get("worker_pid"),
            "span_id": record.get("span_id"),
        }
        for record in finished[:slowest]
    ]

    failures = [
        {
            "task_index": record.get("task_index"),
            "kind": record.get("kind"),
            "attempt": record.get("attempt", 0),
            "error": record.get("error"),
            "span_id": record.get("span_id"),
        }
        for record in trace
        if record.get("event") == "failed"
    ]

    return {
        "run_dir": str(run_dir),
        "summary": status.as_dict(),
        "span_tree": [_strip_tree(root) for root in roots],
        "critical_path": _critical_path(roots[0]) if roots else [],
        "slowest_points": slowest_points,
        "failures": failures,
        "open_span_count": sum(
            1 for node in nodes.values() if node.get("status") == "open"
        ),
    }


def _format_tree(
    node: Dict[str, Any], lines: List[str], depth: int = 0
) -> None:
    duration = node.get("duration_s")
    duration_text = (
        f"{duration:.3f}s" if isinstance(duration, (int, float)) else "open"
    )
    status = node.get("status", "ok")
    marker = "" if status == "ok" else f" [{status}]"
    lines.append(
        f"{'  ' * depth}- {node.get('name')} ({duration_text}){marker}"
    )
    for child in node.get("children", []):
        _format_tree(child, lines, depth + 1)


def format_report(report: Dict[str, Any], max_tree_lines: int = 60) -> str:
    """Human text view of a :func:`build_report` dict."""
    lines: List[str] = []
    summary = report.get("summary", {})
    lines.append(f"run {summary.get('run_id') or '?'} — {report['run_dir']}")
    lines.append(
        f"  tasks {summary.get('done', 0)}/{summary.get('total', 0)}"
        f"  elapsed {summary.get('elapsed_s', 0.0):.1f}s"
        f"  open spans {report.get('open_span_count', 0)}"
    )
    rates = summary.get("rates", {})
    if rates:
        lines.append(
            "  cache-hit {cache_hit_rate:.0%}  retry {retry_rate:.0%}"
            "  timeout {timeout_rate:.0%}".format(**rates)
        )

    lines.append("span tree:")
    tree_lines: List[str] = []
    for root in report.get("span_tree", []):
        _format_tree(root, tree_lines)
    if not tree_lines:
        tree_lines.append("  (no spans recorded)")
    if len(tree_lines) > max_tree_lines:
        hidden = len(tree_lines) - max_tree_lines
        tree_lines = tree_lines[:max_tree_lines] + [
            f"  ... {hidden} more span(s)"
        ]
    lines.extend(tree_lines)

    path = report.get("critical_path", [])
    if path:
        lines.append("critical path:")
        for step in path:
            duration = step.get("duration_s")
            duration_text = (
                f"{duration:.3f}s"
                if isinstance(duration, (int, float))
                else "open"
            )
            lines.append(f"  {step.get('name')}  {duration_text}")

    slowest = report.get("slowest_points", [])
    if slowest:
        lines.append("slowest points:")
        for point in slowest:
            lines.append(
                f"  #{point.get('task_index')} {point.get('kind')}"
                f"  {point.get('duration_s', 0.0):.3f}s"
                f"  attempt {point.get('attempt', 0)}"
            )

    failures = report.get("failures", [])
    if failures:
        lines.append(f"failures ({len(failures)}):")
        for failure in failures:
            lines.append(
                f"  #{failure.get('task_index')} {failure.get('kind')}"
                f"  attempt {failure.get('attempt', 0)}:"
                f" {failure.get('error')}"
            )
    else:
        lines.append("failures: none")
    return "\n".join(lines)
