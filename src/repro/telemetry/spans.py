"""Hierarchical run spans, persisted with the repo's JSONL conventions.

A *span* is one timed scope of a run — the sweep, one point, one
execution attempt, a chaos episode, a checkpoint save/resume — with a
``run_id``/``span_id``/``parent_id`` triple that every other JSONL
family stamps on its lines (via :mod:`repro.telemetry.context`), so a
sniffer trace row can be joined back to the exact (point, rep, attempt)
that produced it.

:class:`SpanRecorder` extends
:class:`~repro.obs.recording.JsonlEventLog` — same ordered ``events``
list, same incremental ``flush_jsonl`` — and writes **two** records per
span, ``span_start`` and ``span_end``.  Paired records (rather than one
record at close) are what make the file *tail-able*: a live console can
show in-flight spans, and a crashed run leaves its open spans visible
in the artifact instead of losing them.

Timestamps follow the :class:`~repro.runner.telemetry.TaskEvent`
convention: ``t_s`` is seconds on a per-recorder monotonic origin
(durations are exact), and ``epoch_s`` on ``span_start`` anchors that
origin to the wall clock so traces from different processes can be
merged on a common axis.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.recording import JsonlEventLog, read_jsonl
from .context import new_run_id, new_span_id

__all__ = ["SpanRecorder", "load_spans"]


class SpanRecorder(JsonlEventLog):
    """Collect ``span_start``/``span_end`` records; flush them to JSONL.

    >>> recorder = SpanRecorder(run_id="r" * 16)
    >>> with recorder.span("sweep", points=3) as sweep_id:
    ...     with recorder.span("point", parent_id=sweep_id):
    ...         pass
    >>> [e["event"] for e in recorder.events]
    ['span_start', 'span_start', 'span_end', 'span_end']
    """

    def __init__(self, run_id: Optional[str] = None) -> None:
        super().__init__()
        self.run_id = run_id if run_id is not None else new_run_id()
        self._t0 = time.perf_counter()
        #: Wall-clock anchor of the ``t_s = 0`` origin.
        self.epoch_s = time.time() - (time.perf_counter() - self._t0)
        #: Open spans: span_id -> (name, start t_s).
        self._open: Dict[str, Any] = {}

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def start(
        self, name: str, parent_id: Optional[str] = None, **attrs: Any
    ) -> str:
        """Open a span; returns its id."""
        span_id = new_span_id()
        t_s = self._now()
        record: Dict[str, Any] = {
            "event": "span_start",
            "run_id": self.run_id,
            "span_id": span_id,
            "name": name,
            "t_s": t_s,
            "epoch_s": self.epoch_s + t_s,
        }
        if parent_id is not None:
            record["parent_id"] = parent_id
        if attrs:
            record["attrs"] = dict(attrs)
        self.append(record)
        self._open[span_id] = (name, t_s)
        return span_id

    def end(self, span_id: str, status: str = "ok", **attrs: Any) -> None:
        """Close a span; unknown/already-closed ids are ignored."""
        opened = self._open.pop(span_id, None)
        if opened is None:
            return
        name, started = opened
        t_s = self._now()
        record: Dict[str, Any] = {
            "event": "span_end",
            "run_id": self.run_id,
            "span_id": span_id,
            "name": name,
            "t_s": t_s,
            "duration_s": t_s - started,
            "status": status,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self.append(record)

    def span(self, name: str, parent_id: Optional[str] = None, **attrs: Any):
        """Context manager recording one span around its body."""
        return _SpanScope(self, name, parent_id, attrs)

    def open_spans(self) -> List[str]:
        """Ids of spans started but not yet ended, in start order."""
        return list(self._open)

    def adopt(self, records: List[Dict[str, Any]]) -> int:
        """Append span records produced elsewhere (a worker process).

        The records already carry their own ids and timestamps —
        adoption is a plain append so ``flush_jsonl`` persists them
        with everything else.  Returns how many were adopted.
        """
        for record in records:
            self.append(dict(record))
        return len(records)


class _SpanScope:
    """The reusable with-block behind :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "_name", "_parent_id", "_attrs", "span_id")

    def __init__(self, recorder, name, parent_id, attrs) -> None:
        self._recorder = recorder
        self._name = name
        self._parent_id = parent_id
        self._attrs = attrs
        self.span_id: Optional[str] = None

    def __enter__(self) -> str:
        self.span_id = self._recorder.start(
            self._name, parent_id=self._parent_id, **self._attrs
        )
        return self.span_id

    def __exit__(self, exc_type, exc, tb) -> None:
        status = "ok" if exc_type is None else "error"
        self._recorder.end(self.span_id, status=status)


def load_spans(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a span JSONL file back into record dicts."""
    return read_jsonl(path)
