"""Follow-mode JSONL reading that survives rotation and truncation.

The live console (`repro-plc top`) tails a trace file that a runner is
appending to *right now*, possibly from another process, possibly being
rotated by the operator.  :class:`JsonlTailer` handles the failure
modes a naive ``readline`` loop gets wrong:

- **partial last line** — an append caught mid-write is buffered until
  its newline arrives, never parsed early and never lost;
- **truncation** — if the file shrinks below our read position the
  tailer rewinds to the start (the writer restarted the file);
- **rotation** — if the path now names a different inode (the old file
  was renamed away and a new one created) the tailer reopens and
  continues from the start of the new file;
- **not-yet-created** — polling a path that does not exist yet simply
  yields nothing until the writer's first flush creates it.

Each :meth:`JsonlTailer.poll` returns the *new complete records* since
the previous poll; lines that fail to parse are counted on
``bad_lines`` rather than raising, because a torn write mid-rotation
must not kill the console.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["JsonlTailer"]


class JsonlTailer:
    """Incremental reader of an append-mostly JSONL file.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "trace.jsonl")
    >>> tailer = JsonlTailer(path)
    >>> tailer.poll()
    []
    >>> with open(path, "w") as fh: _ = fh.write('{"event": "a"}\\n{"ev')
    >>> [r["event"] for r in tailer.poll()]
    ['a']
    >>> with open(path, "a") as fh: _ = fh.write('ent": "b"}\\n')
    >>> [r["event"] for r in tailer.poll()]
    ['b']
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[Any] = None
        self._inode: Optional[int] = None
        self._position = 0
        self._buffer = ""
        #: Lines that were complete but not valid JSON (torn writes).
        self.bad_lines = 0
        #: Total records returned across every poll.
        self.records_read = 0

    def _reopen(self) -> bool:
        self.close()
        try:
            handle = self.path.open("r", encoding="utf-8", errors="replace")
        except OSError:
            return False
        self._handle = handle
        self._inode = os.fstat(handle.fileno()).st_ino
        self._position = 0
        self._buffer = ""
        return True

    def _ensure_open(self) -> bool:
        try:
            stat = self.path.stat()
        except OSError:
            # Path gone: keep draining the already-open (rotated-away)
            # handle if we have one; otherwise nothing to read yet.
            return self._handle is not None
        if self._handle is None:
            return self._reopen()
        if stat.st_ino != self._inode:
            # Rotated: drain what remains of the old file first, then
            # switch to the new inode on the next poll.
            remainder = self._handle.read()
            if remainder:
                self._buffer += remainder
                self._position += len(remainder)
                return True
            return self._reopen()
        if stat.st_size < self._position:
            # Truncated in place: start over.
            self._handle.seek(0)
            self._position = 0
            self._buffer = ""
        return True

    def poll(self) -> List[Dict[str, Any]]:
        """New complete records appended since the last poll."""
        if not self._ensure_open():
            return []
        chunk = self._handle.read()
        if chunk:
            self._position += len(chunk)
            self._buffer += chunk
        if "\n" not in self._buffer:
            return []
        complete, self._buffer = self._buffer.rsplit("\n", 1)
        records: List[Dict[str, Any]] = []
        for line in complete.split("\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.bad_lines += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.bad_lines += 1
        self.records_read += len(records)
        return records

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._inode = None
