"""Reimplementations of the paper's measurement tools (§3).

- :class:`Ampstat` — the Atheros Open Powerline Toolkit's ``ampstat``:
  per-link acked/collided counters over VS_STATS (0xA030);
- :class:`Faifa` — ``faifa``: sniffer-mode SoF capture (0xA034), burst
  reconstruction, frame classification, MME-overhead and fairness
  traces;
- :mod:`repro.tools.cli` — the ``repro-plc`` command-line interface.
"""

from .ampstat import HOST_MAC, Ampstat
from .amptool import Amptool
from .faifa import BurstRecord, Faifa, export_captures_json

__all__ = [
    "Ampstat",
    "Amptool",
    "BurstRecord",
    "Faifa",
    "HOST_MAC",
    "export_captures_json",
]
