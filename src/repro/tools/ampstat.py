"""Reimplementation of ``ampstat`` (Atheros Open Powerline Toolkit).

§3.2: *"With the command ampstat we can reset to 0 or retrieve the
number of acknowledged and collided PLC frames (MPDUs) given the
destination MAC address, the priority, and the direction of a specific
link. [...] ampstat sends an MME with MMType 0xA030. [...] bytes 25-32
of this reply represent the number of acknowledged frames and the
bytes 33-40 represent the number of collided frames."*

This class speaks the same MME wire format to an emulated device's
host endpoint and — deliberately — parses the confirm by raw byte
offsets 25–32 / 33–40 (1-indexed), exactly as the paper describes,
rather than through the typed decoder.  A test asserts the two paths
agree.
"""

from __future__ import annotations

from typing import Tuple

from ..hpav.device import HomePlugAVDevice
from ..hpav.mme import MmeFrame
from ..hpav.mme_types import (
    LinkDirection,
    MmeType,
    StatsControl,
    StatsRequest,
)

__all__ = ["Ampstat", "HOST_MAC"]

#: MAC address of the measuring host's Ethernet port.
HOST_MAC = "02:ff:00:00:00:01"

#: 0-indexed slices for the paper's 1-indexed byte ranges 25–32, 33–40.
_ACKED_SLICE = slice(24, 32)
_COLLIDED_SLICE = slice(32, 40)


class Ampstat:
    """Host-side statistics tool bound to one device."""

    def __init__(self, device: HomePlugAVDevice, host_mac: str = HOST_MAC) -> None:
        self.device = device
        self.host_mac = host_mac

    def _transact(self, request: StatsRequest) -> bytes:
        frame = MmeFrame(
            dst_mac=self.device.mac_addr,
            src_mac=self.host_mac,
            mmtype=MmeType.VS_STATS,  # REQ variant == base
            payload=request.encode(),
        )
        return self.device.host_request(frame.encode())

    def reset(
        self,
        peer_mac: str,
        priority: int = 1,
        direction: int = LinkDirection.TX,
    ) -> None:
        """Reset the acked/collided counters of a link to zero."""
        self._transact(
            StatsRequest(
                control=StatsControl.RESET,
                direction=direction,
                priority=priority,
                peer_mac=peer_mac,
            )
        )

    def get(
        self,
        peer_mac: str,
        priority: int = 1,
        direction: int = LinkDirection.TX,
    ) -> Tuple[int, int]:
        """Return ``(acked, collided)`` for a link.

        Parsed from the confirm frame at the byte offsets documented in
        §3.2 (1-indexed bytes 25–32 and 33–40, little-endian u64).
        """
        reply = self._transact(
            StatsRequest(
                control=StatsControl.GET,
                direction=direction,
                priority=priority,
                peer_mac=peer_mac,
            )
        )
        acked = int.from_bytes(reply[_ACKED_SLICE], "little")
        collided = int.from_bytes(reply[_COLLIDED_SLICE], "little")
        return acked, collided
