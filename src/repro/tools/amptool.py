"""``amptool``: host-side device administration (keys, network info).

The Open Powerline Toolkit ships administration tools alongside
``ampstat``; this class covers the subset our emulated devices expose:

- set the network password / NMK (CM_SET_KEY over the host port — the
  key never travels the powerline in the clear);
- read the network information table (VS_NW_INFO): peers, TEIs, PHY
  rates.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hpav.device import HomePlugAVDevice
from ..hpav.mme import MmeFrame
from ..hpav.mme_types import (
    KEY_TYPE_NMK,
    MmeType,
    NetworkInfoConfirm,
    NetworkInfoRequest,
    SetKeyConfirm,
    SetKeyRequest,
)
from ..hpav.security import nmk_from_password
from .ampstat import HOST_MAC

__all__ = ["Amptool"]


class Amptool:
    """Host-side administration tool bound to one device."""

    def __init__(self, device: HomePlugAVDevice, host_mac: str = HOST_MAC) -> None:
        self.device = device
        self.host_mac = host_mac

    def _transact(self, mmtype: int, payload: bytes) -> MmeFrame:
        frame = MmeFrame(
            dst_mac=self.device.mac_addr,
            src_mac=self.host_mac,
            mmtype=mmtype,
            payload=payload,
        )
        return MmeFrame.decode(self.device.host_request(frame.encode()))

    # -- key management ----------------------------------------------------
    def set_network_password(self, password: str) -> bool:
        """Derive the NMK from ``password`` and install it."""
        return self.set_nmk(nmk_from_password(password))

    def set_nmk(self, nmk: bytes) -> bool:
        """Install a raw 16-byte NMK; returns success."""
        reply = self._transact(
            MmeType.CM_SET_KEY,
            SetKeyRequest(key_type=KEY_TYPE_NMK, key=nmk).encode(),
        )
        return SetKeyConfirm.decode(reply.payload).result == 0

    # -- network info ---------------------------------------------------------
    def network_info(self) -> List[Tuple[str, int, int, int]]:
        """Peers as ``(mac, tei, tx_rate, rx_rate)`` tuples."""
        reply = self._transact(
            MmeType.VS_NW_INFO, NetworkInfoRequest().encode()
        )
        return list(NetworkInfoConfirm.decode(reply.payload).entries)
