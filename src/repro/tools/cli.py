"""Command-line interface: ``repro-plc``.

Subcommands map to the paper's artifacts:

- ``sim`` — the reference simulator with Table 3's inputs;
- ``table2`` — regenerate Table 2 (ΣC, ΣA per N);
- ``figure2`` — regenerate Figure 2 (three collision-probability
  curves) as a table and an ASCII plot;
- ``testbed`` — one §3.2 test on the emulated testbed;
- ``overhead`` — the §3.3 MME-overhead measurement;
- ``sweep`` — throughput/collision vs. N for the standard protocols;
- ``boost`` — search for and report a boosted configuration;
- ``batch`` — the same saturated sweep through the vectorized batch
  kernel (``repro.batch``): bit-identical numbers, one lockstep numpy
  pass over all (N, repetition) points, sharing the scalar runner's
  result cache;
- ``load`` / ``errors`` / ``delay`` / ``coexist`` — the extension
  experiments (unsaturated load, channel errors + ARQ, access-delay
  model, boosted/legacy coexistence);
- ``cache`` — inspect, clear, or prune the experiment result cache
  (``prune --max-bytes/--max-age`` bounds disk growth; with
  ``--service-dir`` it is journal-aware and never evicts a key held
  by an active lease);
- ``serve`` / ``submit`` / ``status`` / ``drain`` — the durable sweep
  service (:mod:`repro.service`): ``serve`` runs the journaled,
  lease-based orchestrator on a service directory (``kill -9`` safe;
  restart resumes bit-identically), ``submit`` drops a sweep into its
  inbox deduped against the sha256 result cache, ``status`` folds the
  journal + telemetry streams into one frame, ``drain`` requests a
  graceful stop;
- ``checkpoint`` — inspect/verify a checkpoint store, or resume an
  interrupted simulation from its newest valid snapshot (bit-identical
  to the uninterrupted run);
- ``validity`` — the large-N model-vs-simulation validity map
  (``repro.validity``): sweep every (regime, N) cell on the batch
  kernel, flag model errors against committed pins, export the JSON
  artifact (``run``) or re-check a saved artifact's flags against a
  pins file (``check``, non-zero exit on violation);
- ``trace`` — capture JSONL MAC + sniffer-style SoF traces of an
  experiment and cross-check the trace-derived metrics against the
  direct computation (exits non-zero on disagreement > 1e-9);
- ``profile`` — run an experiment under the engine profiler and report
  events/sec, wall time per process type, simulated-µs per wall-second;
- ``chaos`` — run a §3.2 test under an in-simulation fault-injection
  plan (bursty channel errors, station churn, SACK loss, firmware
  glitches) with the runtime MAC invariant checker; exits non-zero if
  any invariant is violated.  ``--recovery`` instead measures
  baseline → fault → recovery collision probabilities and exits
  non-zero unless the MAC re-converges;
- ``top`` — the live sweep console: tail a run's trace/span JSONL
  (``--telemetry-dir`` of a running sweep) and render per-kind
  progress, retry/timeout/cache-hit rates, ETA and active chaos
  episodes; ``--once`` renders a single frame (also correct for
  finished runs);
- ``report`` — post-hoc run summary from a telemetry directory: span
  tree, critical path, slowest points, failure table (text or
  ``--json``);
- ``metrics`` — render a metrics snapshot as OpenMetrics text, or
  validate an existing ``metrics.prom`` (``--check`` exits non-zero
  on any format problem).

Experiment subcommands backed by :mod:`repro.runner` (``sweep``,
``figure2``, ``boost``) accept ``--workers N`` to simulate points on
``N`` worker processes and ``--cache-dir DIR`` to memoize completed
points on disk; results are bit-identical for any ``--workers`` value.
Long sweeps survive faults with ``--retries K`` (re-run a crashed
point up to ``K`` times, same seed — retry cannot change the numbers)
and ``--task-timeout S`` (kill points hung longer than ``S`` seconds);
``--trace FILE`` appends the per-task lifecycle trace as JSONL.
``--checkpoint-dir DIR`` snapshots every long point's full simulation
state under ``DIR/<cache_key>/`` as it runs (cadence via
``--checkpoint-every-us``), so a crashed or killed point resumes from
its newest valid snapshot instead of recomputing — with bit-identical
results; ``--no-resume`` ignores existing snapshots.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            "--workers must be >= 0 (0 = one per CPU)"
        )
    return count


def _retry_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError("--retries must be >= 0")
    return count


def _timeout_seconds(value: str) -> float:
    seconds = float(value)
    if seconds <= 0:
        raise argparse.ArgumentTypeError("--task-timeout must be > 0")
    return seconds


def _interval_us(value: str) -> float:
    interval = float(value)
    if interval <= 0:
        raise argparse.ArgumentTypeError(
            "--checkpoint-every-us must be > 0"
        )
    return interval


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Runner knobs for runner-backed subcommands."""
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="worker processes for simulation points (0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="directory for the on-disk result cache (default: off)",
    )
    parser.add_argument(
        "--retries",
        type=_retry_count,
        default=0,
        help="retry attempts per failed/crashed point (same seed, "
        "so results are unchanged; default: 0)",
    )
    parser.add_argument(
        "--task-timeout",
        type=_timeout_seconds,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock limit; hung workers are killed and "
        "the point is retried (default: no limit)",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help="append the per-task lifecycle trace to FILE as JSONL",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="snapshot each point's simulation state under "
        "DIR/<cache_key>/ so crashed points resume instead of "
        "recomputing (default: off)",
    )
    parser.add_argument(
        "--checkpoint-every-us",
        type=_interval_us,
        default=None,
        metavar="US",
        help="snapshot cadence in simulated microseconds "
        "(default: per-kind defaults)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing snapshots and recompute from scratch "
        "(fresh snapshots are still written)",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="write full run telemetry (trace.jsonl, spans.jsonl, "
        "metrics.prom) under DIR — the input of 'repro-plc top' and "
        "'repro-plc report' (default: off)",
    )


def _runner_from_args(args: argparse.Namespace):
    from ..runner import ExperimentRunner

    return ExperimentRunner(
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        retries=args.retries,
        task_timeout_s=args.task_timeout,
        trace_path=args.trace,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_us=args.checkpoint_every_us,
        resume=not args.no_resume,
        telemetry_dir=args.telemetry_dir,
    )


def _print_runner_counters(runner) -> None:
    c = runner.counters
    line = (
        f"[runner] points={c.points_total} executed={c.executed} "
        f"cache_hits={c.cache_hits} corrupt={c.cache_corrupt} "
        f"workers={c.workers} wall={c.wall_time_s:.2f}s"
    )
    if c.retried or c.failed or c.timeouts or c.pool_rebuilds:
        line += (
            f" retried={c.retried} failed={c.failed} "
            f"timeouts={c.timeouts} pool_rebuilds={c.pool_rebuilds}"
        )
    if c.degraded_serial:
        line += f" degraded_serial={c.degraded_serial}"
    print(line)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plc",
        description=(
            "Reproduction toolkit for 'Analyzing and Boosting the "
            "Performance of Power-Line Communication Networks'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("sim", help="run the §4.2 reference simulator")
    sim.add_argument("-n", "--stations", type=int, default=2)
    sim.add_argument("--sim-time", type=float, default=5e7)
    sim.add_argument("--tc", type=float, default=2542.64)
    sim.add_argument("--ts", type=float, default=2920.64)
    sim.add_argument("--frame", type=float, default=2050.0)
    sim.add_argument(
        "--cw", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    sim.add_argument("--dc", type=int, nargs="+", default=[0, 1, 3, 15])
    sim.add_argument("--seed", type=int, default=1)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--duration", type=float, default=24e6)
    table2.add_argument("--max-n", type=int, default=7)
    table2.add_argument("--seed", type=int, default=1)
    _add_runner_args(table2)

    figure2 = sub.add_parser("figure2", help="regenerate Figure 2")
    figure2.add_argument("--duration", type=float, default=24e6)
    figure2.add_argument("--reps", type=int, default=3)
    figure2.add_argument("--max-n", type=int, default=7)
    figure2.add_argument("--seed", type=int, default=1)
    _add_runner_args(figure2)

    testbed = sub.add_parser("testbed", help="one §3.2 emulated test")
    testbed.add_argument("-n", "--stations", type=int, default=2)
    testbed.add_argument("--duration", type=float, default=24e6)
    testbed.add_argument("--seed", type=int, default=1)

    overhead = sub.add_parser("overhead", help="§3.3 MME overhead")
    overhead.add_argument("-n", "--stations", type=int, default=2)
    overhead.add_argument("--duration", type=float, default=24e6)
    overhead.add_argument("--seed", type=int, default=1)

    sweep = sub.add_parser("sweep", help="throughput vs N per protocol")
    sweep.add_argument(
        "--counts", type=int, nargs="+", default=[1, 2, 5, 10, 20]
    )
    sweep.add_argument("--sim-time", type=float, default=2e7)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--reps", type=int, default=3)
    _add_runner_args(sweep)

    boost = sub.add_parser("boost", help="search boosted configurations")
    boost.add_argument(
        "--counts", type=int, nargs="+", default=[2, 5, 10, 20]
    )
    _add_runner_args(boost)

    batch = sub.add_parser(
        "batch",
        help="throughput/collision vs N through the vectorized batch "
        "kernel (bit-exact vs the scalar simulator, one process)",
    )
    batch.add_argument(
        "--counts", type=int, nargs="+", default=[2, 5, 10, 20, 50]
    )
    batch.add_argument("--sim-time", type=float, default=2e7)
    batch.add_argument("--seed", type=int, default=1)
    batch.add_argument("--reps", type=int, default=3)
    batch.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk result cache, shared bit-for-bit with the "
        "scalar runner (default: off)",
    )
    batch.add_argument(
        "--chunk-size", type=int, default=1024,
        help="points per kernel dispatch (default: 1024)",
    )
    batch.add_argument(
        "--telemetry-dir", type=str, default=None, metavar="DIR",
        help="write run telemetry (trace.jsonl, spans.jsonl, "
        "metrics.prom) under DIR (default: off)",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect, clear, or prune the experiment result cache",
    )
    cache.add_argument("action", choices=["info", "clear", "prune"])
    cache.add_argument(
        "--cache-dir", type=str, default=None,
        help="cache directory to operate on (default with "
        "--service-dir: its cache/ subdirectory)",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="prune: evict oldest entries until the cache fits in "
        "BYTES (default: no size bound)",
    )
    cache.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="prune: evict entries older than SECONDS "
        "(default: no age bound)",
    )
    cache.add_argument(
        "--service-dir", type=str, default=None, metavar="DIR",
        help="service directory whose journal guards the prune: keys "
        "held by an active lease are never evicted",
    )

    checkpoint = sub.add_parser(
        "checkpoint",
        help="inspect/verify a checkpoint store or resume a simulation "
        "from its newest valid snapshot",
    )
    checkpoint.add_argument(
        "action",
        choices=["inspect", "verify", "resume"],
        help="inspect: list snapshots; verify: exit non-zero unless "
        "every snapshot verifies and one is resumable; resume: run "
        "the checkpointed simulation to completion",
    )
    checkpoint.add_argument(
        "--dir", type=str, required=True,
        help="checkpoint store directory (one simulation per store)",
    )
    checkpoint.add_argument(
        "--json", type=str, default=None, metavar="FILE",
        help="also write the inspection rows (inspect/verify) or the "
        "result summary (resume) to FILE as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="run the durable sweep orchestrator on a service "
        "directory (journaled queue, leased workers, quarantine; "
        "kill -9 safe — restart resumes bit-identically)",
    )
    serve.add_argument(
        "--service-dir", type=str, required=True, metavar="DIR",
        help="service state root (journal, inbox, cache, telemetry)",
    )
    serve.add_argument(
        "--workers", type=_worker_count, default=2,
        help="concurrent worker processes (default: 2)",
    )
    serve.add_argument(
        "--max-retries", type=_retry_count, default=2,
        help="deterministic retries before a task is quarantined "
        "(default: 2)",
    )
    serve.add_argument(
        "--lease-ttl", type=_timeout_seconds, default=10.0,
        metavar="SECONDS",
        help="heartbeat silence before the watchdog reclaims a lease "
        "(default: 10)",
    )
    serve.add_argument(
        "--task-timeout", type=_timeout_seconds, default=None,
        metavar="SECONDS",
        help="hard per-attempt wall-clock limit (default: none)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=10000,
        help="admission control: reject submissions that would push "
        "pending+leased past this depth (default: 10000)",
    )
    serve.add_argument(
        "--checkpoint-every-us", type=_interval_us, default=None,
        metavar="US",
        help="checkpoint cadence for long points (default: per-kind "
        "defaults)",
    )
    serve.add_argument(
        "--exit-when-idle", action="store_true",
        help="return once the inbox is empty and no task is pending "
        "or leased (instead of serving until drained)",
    )
    serve.add_argument(
        "--http", type=str, default=None, metavar="HOST:PORT",
        help="also expose the HTTP front end (sweep submission, "
        "status, metrics, remote worker sharding) on HOST:PORT "
        "(':0' binds an ephemeral port); --workers 0 serves "
        "remote workers only",
    )
    serve.add_argument(
        "--idle-grace", type=_timeout_seconds, default=None,
        metavar="SECONDS",
        help="with --exit-when-idle: stay up until the service has "
        "been continuously idle this long (default: 0, or 2s when "
        "--http is set, so a fresh server survives until its first "
        "remote submission)",
    )

    work = sub.add_parser(
        "work",
        help="run a remote sweep worker: claim (point, rep) shards "
        "from one or more 'serve --http' front ends, execute them "
        "with the standard task runner, commit results back over HTTP",
    )
    work.add_argument(
        "--connect", type=str, action="append", required=True,
        metavar="URL",
        help="front end base URL (http://HOST:PORT); repeat for "
        "failover across hosts",
    )
    work.add_argument(
        "--worker-id", type=str, default=None,
        help="stable identity for leases/telemetry "
        "(default: <hostname>-<pid>)",
    )
    work.add_argument(
        "--poll", type=_timeout_seconds, default=0.5, metavar="SECONDS",
        help="idle poll period between claim attempts (default: 0.5)",
    )
    work.add_argument(
        "--exit-when-idle", action="store_true",
        help="return once the service reports nothing left to claim",
    )
    work.add_argument(
        "--idle-grace", type=_timeout_seconds, default=0.0,
        metavar="SECONDS",
        help="with --exit-when-idle: only exit after the service has "
        "been idle this long continuously (lets a worker start "
        "before the first submission arrives; default: 0)",
    )
    work.add_argument(
        "--give-up-after", type=_timeout_seconds, default=None,
        metavar="SECONDS",
        help="exit after the service has been unreachable this long "
        "(default: keep polling forever — workers outlive restarts)",
    )
    work.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after claiming N shards (testing/smoke)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a standard protocol sweep to a service — into "
        "its inbox directory, or over HTTP with --connect "
        "(deduped against the sha256 result cache either way)",
    )
    submit.add_argument(
        "--service-dir", type=str, default=None, metavar="DIR",
        help="service directory whose inbox receives the submission "
        "(local mode; exactly one of --service-dir/--connect)",
    )
    submit.add_argument(
        "--connect", type=str, action="append", default=None,
        metavar="URL",
        help="POST the submission to a 'serve --http' front end "
        "instead of an inbox; repeat for failover",
    )
    submit.add_argument(
        "--counts", type=int, nargs="+", default=[1, 2, 5, 10, 20]
    )
    submit.add_argument("--sim-time", type=float, default=2e7)
    submit.add_argument("--reps", type=int, default=3)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument(
        "--label", type=str, default=None,
        help="human-readable tag carried through journal and status",
    )

    status = sub.add_parser(
        "status",
        help="one status frame of a service directory: queue counts, "
        "submissions, quarantine, folded telemetry",
    )
    status.add_argument(
        "--service-dir", type=str, required=True, metavar="DIR",
    )
    status.add_argument(
        "--json", action="store_true",
        help="emit the status document as JSON instead of text",
    )

    drain = sub.add_parser(
        "drain",
        help="ask the orchestrator owning a service directory to "
        "finish in-flight work, flush, and stop",
    )
    drain.add_argument(
        "--service-dir", type=str, required=True, metavar="DIR",
    )
    drain.add_argument(
        "--wait", type=float, default=0.0, metavar="SECONDS",
        help="block up to SECONDS for the orchestrator to exit "
        "(default: return immediately)",
    )

    load = sub.add_parser("load", help="unsaturated offered-load sweep")
    load.add_argument("-n", "--stations", type=int, default=3)
    load.add_argument(
        "--fractions", type=float, nargs="+",
        default=[0.25, 0.5, 0.8, 1.0, 1.5],
    )
    load.add_argument("--sim-time", type=float, default=2e7)
    load.add_argument("--seed", type=int, default=1)

    errors = sub.add_parser("errors", help="channel-error sweep (ARQ)")
    errors.add_argument("-n", "--stations", type=int, default=2)
    errors.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.02, 0.05, 0.1]
    )
    errors.add_argument("--duration", type=float, default=12e6)
    errors.add_argument("--seed", type=int, default=1)

    delay = sub.add_parser("delay", help="access-delay model vs simulation")
    delay.add_argument(
        "--counts", type=int, nargs="+", default=[1, 2, 5, 10]
    )
    delay.add_argument("--sim-time", type=float, default=2e7)

    coexist = sub.add_parser(
        "coexist", help="boosted/legacy mixed-population sweep"
    )
    coexist.add_argument("--total", type=int, default=10)
    coexist.add_argument(
        "--boosted", type=int, nargs="+", default=[0, 2, 5, 8, 10]
    )
    coexist.add_argument("--sim-time", type=float, default=2e7)

    trace = sub.add_parser(
        "trace",
        help="capture MAC + SoF traces of one experiment and "
        "cross-check the trace-derived metrics",
    )
    trace.add_argument(
        "experiment", nargs="?", choices=["testbed"], default="testbed",
        help="what to trace (currently the §3.2 emulated testbed)",
    )
    trace.add_argument("-n", "--stations", type=int, default=2)
    trace.add_argument("--duration", type=float, default=24e6)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument(
        "--out-dir", type=str, default="traces",
        help="directory receiving the JSONL artifacts (default: traces/)",
    )
    trace.add_argument(
        "--no-mac-trace", action="store_true",
        help="skip the full MAC event trace",
    )
    trace.add_argument(
        "--no-sof-trace", action="store_true",
        help="skip the sniffer-compatible SoF trace",
    )
    trace.add_argument(
        "--metrics", action="store_true",
        help="also export the metrics-registry snapshot",
    )

    profile = sub.add_parser(
        "profile",
        help="profile the engine while running one experiment "
        "(events/sec, wall time per process type)",
    )
    profile.add_argument(
        "experiment", nargs="?", choices=["testbed"], default="testbed",
        help="what to profile (currently the §3.2 emulated testbed)",
    )
    profile.add_argument("-n", "--stations", type=int, default=2)
    profile.add_argument("--duration", type=float, default=24e6)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "--json", type=str, default=None, metavar="FILE",
        help="also write the profile report to FILE as JSON",
    )

    validity = sub.add_parser(
        "validity",
        help="large-N model-vs-simulation validity map on the batch "
        "kernel, flagged against committed error pins",
    )
    validity.add_argument(
        "action",
        choices=["run", "check"],
        help="run: sweep the (regime, N) grid and report/export the "
        "map; check: re-derive a saved map's flags against a pins "
        "file and exit non-zero on any violation",
    )
    validity.add_argument(
        "--counts", type=int, nargs="+", default=[5, 10, 25, 50, 100, 150],
        help="station counts to sweep (default: 5..150)",
    )
    # Keep in sync with repro.validity.regimes.REGIMES (hardcoded so
    # parser construction stays import-light).
    validity.add_argument(
        "--regimes", type=str, nargs="+", default=None,
        metavar="NAME",
        choices=[
            "saturated", "fractional_load", "heterogeneous",
            "retry_limited",
        ],
        help="regime subset (default: all registered regimes)",
    )
    validity.add_argument("--sim-time", type=float, default=1e7)
    validity.add_argument("--reps", type=int, default=2)
    validity.add_argument("--seed", type=int, default=1)
    validity.add_argument(
        "--method", choices=["markov", "recursive"], default="markov"
    )
    validity.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="write the validity-map artifact to FILE as JSON",
    )
    validity.add_argument(
        "--map", type=str, default=None, metavar="FILE",
        help="(check) saved validity-map artifact to verify",
    )
    validity.add_argument(
        "--pins", type=str, default=None, metavar="FILE",
        help="pins JSON file (default: the built-in pins)",
    )
    validity.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk result cache, shared bit-for-bit with the "
        "scalar runner (default: off)",
    )
    validity.add_argument(
        "--chunk-size", type=int, default=None,
        help="points per kernel dispatch (default: 1024)",
    )
    validity.add_argument(
        "--strict", action="store_true",
        help="(run) exit non-zero if any cell is flagged",
    )
    validity.add_argument(
        "--no-figure", action="store_true",
        help="(run) skip the ASCII error figure",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injected collision test with the runtime MAC "
        "invariant checker",
    )
    # Keep in sync with repro.chaos.plan.PRESETS (hardcoded so parser
    # construction stays import-light like every other subcommand).
    chaos.add_argument(
        "--preset", choices=["ge", "churn", "full"], default="full",
        help="ready-made ChaosPlan scaled to the run duration "
        "(default: full)",
    )
    chaos.add_argument(
        "--plan", type=str, default=None, metavar="FILE",
        help="JSON ChaosPlan file (overrides --preset)",
    )
    chaos.add_argument("-n", "--stations", type=int, default=3)
    chaos.add_argument("--duration", type=float, default=12e6)
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument(
        "--plan-seed", type=int, default=0,
        help="entropy for the plan's per-fault RNG streams (default: 0)",
    )
    chaos.add_argument(
        "--invariants", choices=["raise", "log", "count"],
        default="raise",
        help="violation policy for preset plans (default: raise)",
    )
    chaos.add_argument(
        "--recovery", action="store_true",
        help="run the recovery experiment (baseline/faulty/recovered "
        "windows of --duration each) instead of a single test",
    )
    chaos.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="(with --recovery) snapshot the post-fault state into DIR "
        "so 'repro-plc checkpoint resume' can re-enter the experiment",
    )
    chaos.add_argument(
        "--json", type=str, default=None, metavar="FILE",
        help="also write the chaos report to FILE as JSON",
    )

    top = sub.add_parser(
        "top",
        help="live sweep console: tail a run's trace/span JSONL and "
        "render progress, rates, ETA and active chaos episodes",
    )
    top.add_argument(
        "path",
        help="telemetry directory of the run (a --telemetry-dir), or "
        "a trace JSONL file directly (a --trace FILE)",
    )
    top.add_argument(
        "--spans", type=str, default=None, metavar="FILE",
        help="span JSONL to fold in (default: spans.jsonl next to a "
        "directory path; none for a bare trace file)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll/render interval (default: 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame from the current file contents "
        "and exit (CI mode; also correct for finished runs)",
    )
    top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="stop after N rendered frames (default: until run_end)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="print the final status snapshot as JSON instead of the "
        "text frame history",
    )

    report = sub.add_parser(
        "report",
        help="post-hoc run summary from a telemetry directory: span "
        "tree, critical path, slowest points, failures",
    )
    report.add_argument(
        "run_dir",
        help="telemetry directory holding trace.jsonl / spans.jsonl",
    )
    report.add_argument(
        "--slowest", type=int, default=10, metavar="N",
        help="how many slowest points to list (default: 10)",
    )
    report.add_argument(
        "--json", type=str, default=None, metavar="FILE",
        help="also write the full report to FILE as JSON "
        "('-' prints JSON to stdout instead of the text view)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="render a metrics snapshot as OpenMetrics text, or "
        "validate an existing exposition file",
    )
    metrics.add_argument(
        "path",
        help="a metrics-registry JSON snapshot (e.g. the obs "
        "metrics_*.json artifact), an OpenMetrics .prom file, or a "
        "telemetry directory holding metrics.prom",
    )
    metrics.add_argument(
        "--check", action="store_true",
        help="validate only: exit non-zero on any OpenMetrics format "
        "problem, printing each problem",
    )
    metrics.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="also write the rendered exposition to FILE (atomic, "
        "textfile-collector friendly)",
    )
    return parser


def _cmd_sim(args: argparse.Namespace) -> int:
    from ..core.simulator import sim_1901

    collision_pr, throughput = sim_1901(
        args.stations,
        args.sim_time,
        args.tc,
        args.ts,
        args.frame,
        args.cw,
        args.dc,
        seed=args.seed,
    )
    print(f"collision_pr     = {collision_pr:.6f}")
    print(f"norm_throughput  = {throughput:.6f}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from ..experiments.collision_probability import table2_data
    from ..report.tables import format_scientific, format_table

    rows = table2_data(
        station_counts=range(1, args.max_n + 1),
        duration_us=args.duration,
        seed=args.seed,
        runner=_runner_from_args(args),
    )
    print(
        format_table(
            ["N", "sum C_i", "sum A_i", "C/A"],
            [
                (
                    row.num_stations,
                    format_scientific(row.sum_collided),
                    format_scientific(row.sum_acked),
                    f"{row.collision_probability:.4f}",
                )
                for row in rows
            ],
            title=f"Table 2 (duration {args.duration/1e6:.0f}s per test)",
        )
    )
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from ..experiments.collision_probability import figure2_data
    from ..report.figures import ascii_plot
    from ..report.tables import format_table

    points = figure2_data(
        station_counts=range(1, args.max_n + 1),
        test_duration_us=args.duration,
        test_repetitions=args.reps,
        seed=args.seed,
        runner=_runner_from_args(args),
    )
    print(
        format_table(
            ["N", "measured", "simulated", "analysis"],
            [
                (
                    p.num_stations,
                    f"{p.measured:.4f}",
                    f"{p.simulated:.4f}",
                    f"{p.analytical:.4f}",
                )
                for p in points
            ],
            title="Figure 2: collision probability vs number of stations",
        )
    )
    ns = [p.num_stations for p in points]
    print(
        ascii_plot(
            {
                "measured": (ns, [p.measured for p in points]),
                "simulated": (ns, [p.simulated for p in points]),
                "analysis": (ns, [p.analytical for p in points]),
            },
            title="Figure 2",
            xlabel="number of stations",
            ylabel="collision probability",
            y_min=0.0,
        )
    )
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    from ..experiments.procedures import run_collision_test

    test = run_collision_test(
        args.stations, duration_us=args.duration, seed=args.seed
    )
    print(f"stations              = {test.num_stations}")
    print(f"duration              = {test.duration_us/1e6:.1f} s")
    for mac, acked, collided in test.per_station:
        print(f"  {mac}: acked={acked} collided={collided}")
    print(f"sum acked             = {test.sum_acked}")
    print(f"sum collided          = {test.sum_collided}")
    print(f"collision probability = {test.collision_probability:.4f}")
    print(f"goodput at D          = {test.goodput_mbps:.2f} Mbps")
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from ..experiments.mme_overhead import measure_mme_overhead

    result = measure_mme_overhead(
        args.stations, duration_us=args.duration, seed=args.seed
    )
    print(f"data bursts       = {result.data_bursts}")
    print(f"management bursts = {result.management_bursts}")
    print(f"MME overhead      = {result.overhead:.6f}")
    print(f"burst sizes       = {result.burst_size_histogram}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..experiments.sweeps import standard_protocol_sweep
    from ..report.tables import format_table

    runner = _runner_from_args(args)
    series = standard_protocol_sweep(
        station_counts=args.counts,
        sim_time_us=args.sim_time,
        repetitions=args.reps,
        seed=args.seed,
        runner=runner,
    )
    rows = []
    for label, points in series.items():
        for p in points:
            rows.append(
                (
                    label,
                    p.num_stations,
                    f"{p.sim_throughput:.4f}",
                    f"{p.model_throughput:.4f}",
                    f"{p.sim_collision_probability:.4f}",
                )
            )
    print(
        format_table(
            ["protocol", "N", "sim S", "model S", "sim p"],
            rows,
            title="Saturation throughput / collision probability vs N",
        )
    )
    _print_runner_counters(runner)
    return 0


def _cmd_boost(args: argparse.Namespace) -> int:
    from ..boost.adaptive import boost_report
    from ..report.tables import format_table

    runner = _runner_from_args(args)
    boosted, rows = boost_report(args.counts, runner=runner)
    print(f"boosted configuration: {boosted.describe()}")
    print(
        format_table(
            ["N", "default S", "boosted S", "upper bound", "gain %"],
            [
                (
                    r.num_stations,
                    f"{r.default_throughput:.4f}",
                    f"{r.boosted_throughput:.4f}",
                    f"{r.upper_bound:.4f}",
                    f"{r.gain_percent:+.1f}",
                )
                for r in rows
            ],
        )
    )
    _print_runner_counters(runner)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from ..core import ScenarioConfig
    from ..core.results import aggregate
    from ..report.tables import format_table
    from ..runner import BatchRunner

    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=args.sim_time, seed=args.seed
        )
        for n in args.counts
    ]
    runner = BatchRunner(
        cache_dir=args.cache_dir,
        chunk_size=args.chunk_size,
        telemetry_dir=args.telemetry_dir,
    )
    grouped = runner.run_scenarios(
        scenarios, root_seed=args.seed, repetitions=args.reps
    )
    rows = []
    for n, reps in zip(args.counts, grouped):
        runs = [point.result for point in reps]
        agg = aggregate(runs)
        jain = sum(run.jain_fairness() for run in runs) / len(runs)
        rows.append(
            (
                n,
                f"{agg.normalized_throughput:.4f}",
                f"{agg.collision_probability:.4f}",
                f"{jain:.4f}",
            )
        )
    print(
        format_table(
            ["N", "throughput S", "collision p", "Jain fairness"],
            rows,
            title=(
                f"Batch kernel sweep ({args.reps} rep(s), "
                f"{args.sim_time / 1e6:g} s simulated per point)"
            ),
        )
    )
    c = runner.counters
    print(
        f"[batch] points={c.points_total} executed={c.executed} "
        f"cache_hits={c.cache_hits}"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from ..runner import ResultCache

    cache_dir = args.cache_dir
    if cache_dir is None:
        if args.service_dir is None:
            print(
                "cache: --cache-dir is required (or --service-dir to "
                "use its cache/)",
                file=sys.stderr,
            )
            return 2
        from pathlib import Path

        from ..service.orchestrator import ServicePaths

        cache_dir = str(ServicePaths(Path(args.service_dir)).cache)
    cache = ResultCache(cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache_dir}")
    elif args.action == "prune":
        if args.max_bytes is None and args.max_age is None:
            print(
                "cache prune: at least one of --max-bytes/--max-age "
                "is required",
                file=sys.stderr,
            )
            return 2
        protect = set()
        if args.service_dir is not None:
            # Journal-aware guard: a key under an active lease is a
            # result the orchestrator is about to commit (or a
            # resubmission is about to dedupe against) — never evict.
            from ..service.state import TaskState, fold_journal

            state = fold_journal(args.service_dir)
            protect = {
                record.task_id
                for record in state.by_state(TaskState.LEASED)
            }
        report = cache.prune(
            max_bytes=args.max_bytes,
            max_age_s=args.max_age,
            protect=protect,
        )
        print(
            f"pruned {report['removed']} entr(ies) from {cache_dir}: "
            f"{report['kept']} kept ({report['bytes']} bytes)"
            + (
                f", {report['protected']} lease-protected"
                if report["protected"]
                else ""
            )
        )
    else:
        orphans = sum(1 for _ in cache.temp_paths())
        print(f"cache dir : {cache_dir}")
        print(f"entries   : {len(cache)}")
        if orphans:
            print(f"orphaned  : {orphans} temp file(s) (swept by 'clear')")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib

    from ..service import Orchestrator, ServiceConfig

    http_spec = getattr(args, "http", None)
    idle_grace = getattr(args, "idle_grace", None)
    if idle_grace is None:
        # An HTTP server that exits on its first idle poll dies before
        # any client can reach it; give it a grace window by default.
        idle_grace = 2.0 if http_spec else 0.0
    orchestrator = Orchestrator(
        ServiceConfig(
            service_dir=args.service_dir,
            max_workers=args.workers if http_spec else (args.workers or 2),
            max_retries=args.max_retries,
            lease_ttl_s=args.lease_ttl,
            task_timeout_s=args.task_timeout,
            max_queue_depth=args.max_queue_depth,
            checkpoint_every_us=args.checkpoint_every_us,
            idle_grace_s=idle_grace,
        )
    )
    with contextlib.ExitStack() as stack:
        if http_spec:
            from ..service.net import serve_http

            front = stack.enter_context(serve_http(orchestrator, http_spec))
            print(
                f"serving {args.service_dir} on {front.url} "
                f"(pid {os.getpid()}, "
                f"workers={orchestrator.config.max_workers})",
                flush=True,
            )
        else:
            print(
                f"serving {args.service_dir} "
                f"(pid {os.getpid()}, "
                f"workers={orchestrator.config.max_workers})",
                flush=True,
            )
        state = orchestrator.serve(exit_when_idle=args.exit_when_idle)
    counts = state.counts()
    print(
        f"[serve] completed={counts['completed']} "
        f"pending={counts['pending']} leased={counts['leased']} "
        f"quarantined={counts['quarantined']}"
    )
    if orchestrator.shutdown_signum is not None:
        # Supervisor convention: a signal-triggered (clean) drain exits
        # 128 + signum, so SIGTERM reports 143 like any well-behaved
        # service — distinguishable from both success and crashes.
        return 128 + orchestrator.shutdown_signum
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from ..service.net import work_loop

    print(
        f"worker connecting to {', '.join(args.connect)} "
        f"(pid {os.getpid()})",
        flush=True,
    )
    stats = work_loop(
        args.connect,
        worker_id=args.worker_id,
        poll_s=args.poll,
        exit_when_idle=args.exit_when_idle,
        idle_grace_s=args.idle_grace,
        give_up_after_s=args.give_up_after,
        max_tasks=args.max_tasks,
    )
    print(
        f"[work] {stats['worker_id']}: claims={stats['claims']} "
        f"completed={stats['completed']} duplicate={stats['duplicate']} "
        f"failed={stats['failed']} lost_leases={stats['lost_leases']}"
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from pathlib import Path

    from ..runner import ResultCache
    from ..service.orchestrator import ServicePaths
    from ..service.submit import (
        build_submission,
        dedupe_report,
        standard_sweep_tasks,
        write_submission,
    )

    if bool(args.service_dir) == bool(args.connect):
        print(
            "submit needs exactly one of --service-dir (inbox) or "
            "--connect URL (HTTP)",
            file=sys.stderr,
        )
        return 2
    tasks = standard_sweep_tasks(
        args.counts,
        sim_time_us=args.sim_time,
        repetitions=args.reps,
        seed=args.seed,
    )
    submission = build_submission(tasks, label=args.label)
    if args.connect:
        from ..service.net import AllHostsUnreachable, SweepClient

        client = SweepClient(args.connect)
        try:
            verdict = client.submit(submission)
        except AllHostsUnreachable as exc:
            print(f"submit failed: {exc}", file=sys.stderr)
            return 1
        if not verdict.get("accepted"):
            print(
                f"submission {verdict.get('submit_id', '?')[:12]} "
                f"REJECTED: {verdict.get('reason')}",
                file=sys.stderr,
            )
            return 1
        print(
            f"submitted {verdict['submit_id'][:12]} -> "
            f"{', '.join(args.connect)}"
        )
        print(
            f"[submit] tasks={verdict['task_count']} "
            f"deduped={verdict['deduped']} new={verdict['new']}"
        )
        return 0
    paths = ServicePaths(Path(args.service_dir))
    report = dedupe_report(
        submission["tasks"],
        ResultCache(paths.cache) if paths.cache.is_dir() else None,
    )
    path = write_submission(paths.inbox, submission)
    print(f"submitted {submission['submit_id'][:12]} -> {path}")
    print(
        f"[submit] tasks={report['tasks']} "
        f"cached={report['cached']} to_run={report['to_run']}"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from ..service.status import render_service_status, service_status

    status = service_status(args.service_dir)
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        print(render_service_status(status))
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from ..service.leases import pid_alive
    from ..service.orchestrator import ServicePaths, request_drain

    paths = ServicePaths(Path(args.service_dir))
    request_drain(paths.root)
    print(f"drain requested for {paths.root}")
    if args.wait <= 0:
        return 0
    deadline = time.monotonic() + args.wait
    while time.monotonic() < deadline:
        try:
            pid = int(paths.pid_file.read_text(encoding="utf-8").strip())
        except (OSError, ValueError):
            print("orchestrator stopped")
            return 0
        if not pid_alive(pid):
            print("orchestrator stopped")
            return 0
        time.sleep(0.2)
    print(f"orchestrator still running after {args.wait:.0f}s")
    return 1


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from ..checkpoint import CheckpointStore
    from ..report.tables import format_table

    store = CheckpointStore(args.dir)
    if args.action in ("inspect", "verify"):
        rows = store.entries()
        print(f"checkpoint store : {store.directory}")
        print(f"snapshots        : {len(rows)}")
        if rows:
            print(
                format_table(
                    ["seq", "valid", "kind", "sim time (s)", "bytes"],
                    [
                        (
                            row["seq"],
                            "yes" if row["valid"] else "NO",
                            row.get("header", {}).get("kind", "?"),
                            (
                                f"{row['header']['sim_time_us'] / 1e6:.3f}"
                                if row["valid"]
                                else "-"
                            ),
                            row["bytes"],
                        )
                        for row in rows
                    ],
                )
            )
            for row in rows:
                if not row["valid"]:
                    print(f"  seq {row['seq']}: {row['error']}")
        if args.json:
            from ..report.export import write_json

            write_json(args.json, {"dir": store.directory, "entries": rows})
            print(f"inspection written to {args.json}")
        if args.action == "verify":
            invalid = [row for row in rows if not row["valid"]]
            valid = [row for row in rows if row["valid"]]
            if invalid:
                print(f"verify FAILED: {len(invalid)} corrupt snapshot(s)")
                return 1
            if not valid:
                print("verify FAILED: no resumable snapshot")
                return 1
            newest = valid[-1]
            print(
                f"verify OK: resumable from seq {newest['seq']} "
                f"(t = {newest['header']['sim_time_us'] / 1e6:.3f} s)"
            )
        return 0

    # resume
    newest = store.latest_valid()
    if newest is None:
        print(f"no valid snapshot in {store.directory}")
        return 1
    print(
        f"resuming {newest.kind} from seq {newest.seq} "
        f"(t = {newest.sim_time_us / 1e6:.3f} s)"
    )
    if newest.kind == "testbed" and newest.meta.get("experiment") == "recovery":
        from ..chaos.recovery import resume_recovery_experiment

        result = resume_recovery_experiment(store, checkpoint=newest)
        print(f"baseline p            = {result.baseline:.4f}")
        print(f"faulty p              = {result.faulty:.4f}")
        print(f"recovered p           = {result.recovered:.4f}")
        print(f"deviation             = {result.deviation:.4f} "
              f"(allowed {result.allowed_deviation:.4f})")
        print(f"converged             = {result.converged}")
        if args.json:
            from ..report.export import write_json

            write_json(args.json, result.as_dict())
            print(f"result written to {args.json}")
        return 0 if result.converged and result.invariants["green"] else 1
    if newest.kind == "testbed":
        from ..checkpoint import resume_collision_test

        outcome = resume_collision_test(store, checkpoint=newest)
        report = None
        if isinstance(outcome, tuple):
            test, report = outcome
        else:
            test = outcome
        print(f"stations              = {test.num_stations}")
        print(f"duration              = {test.duration_us / 1e6:.1f} s")
        print(f"sum acked             = {test.sum_acked}")
        print(f"sum collided          = {test.sum_collided}")
        print(f"collision probability = {test.collision_probability:.4f}")
        print(f"goodput at D          = {test.goodput_mbps:.2f} Mbps")
        summary = {
            "num_stations": test.num_stations,
            "duration_us": test.duration_us,
            "per_station": [list(row) for row in test.per_station],
            "collision_probability": test.collision_probability,
            "goodput_mbps": test.goodput_mbps,
        }
        if report is not None:
            for family, ledger in sorted(report["injection"].items()):
                print(f"  {family}: {ledger}")
            summary["chaos"] = report
    elif newest.kind == "slotsim":
        from ..checkpoint import (
            restore_slot_simulator,
            run_simulate_with_checkpoints,
        )
        from ..runner.serialize import scenario_from_jsonable

        scenario_json = (newest.meta.get("payload") or {}).get("scenario")
        if scenario_json is None:
            print(
                "snapshot meta carries no scenario; cannot rebuild the "
                "simulator (was this store written by the runner?)"
            )
            return 1
        sim = restore_slot_simulator(
            scenario_from_jsonable(scenario_json), newest.state
        )
        result = run_simulate_with_checkpoints(
            sim, store, meta=dict(newest.meta)
        )
        print(f"successes             = {result.successes}")
        print(f"collisions            = {result.collisions}")
        print(f"collision probability = {result.collision_probability:.6f}")
        summary = {
            "successes": result.successes,
            "collisions": result.collisions,
            "collision_probability": result.collision_probability,
        }
    else:
        print(f"unknown snapshot kind {newest.kind!r}")
        return 1
    if args.json:
        from ..report.export import write_json

        write_json(args.json, summary)
        print(f"result written to {args.json}")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from ..experiments.unsaturated import offered_load_sweep, saturation_rate_pps
    from ..report.tables import format_table

    knee = saturation_rate_pps(args.stations)
    points = offered_load_sweep(
        args.stations,
        load_fractions=args.fractions,
        sim_time_us=args.sim_time,
        seed=args.seed,
    )
    print(f"saturation knee ≈ {knee:.1f} frames/s per station")
    print(
        format_table(
            ["rate (fps)", "offered", "delivered", "collision p",
             "mean delay (ms)", "loss"],
            [
                (f"{p.arrival_rate_pps:.0f}", f"{p.offered_fps:.0f}",
                 f"{p.delivered_fps:.0f}",
                 f"{p.collision_probability:.4f}",
                 f"{p.mean_delay_us / 1000:.1f}",
                 f"{p.queue_loss_fraction:.3f}")
                for p in points
            ],
        )
    )
    return 0


def _cmd_errors(args: argparse.Namespace) -> int:
    from ..experiments.channel_errors import error_rate_sweep
    from ..report.tables import format_table

    points = error_rate_sweep(
        args.stations,
        error_probabilities=args.rates,
        duration_us=args.duration,
        seed=args.seed,
    )
    print(
        format_table(
            ["PB error rate", "goodput (Mbps)", "collision p",
             "retransmissions"],
            [
                (f"{p.pb_error_probability:.2f}", f"{p.goodput_mbps:.2f}",
                 f"{p.collision_probability:.4f}", p.retransmissions)
                for p in points
            ],
        )
    )
    return 0


def _cmd_delay(args: argparse.Namespace) -> int:
    import numpy as np

    from ..analysis.delay import DelayModel
    from ..core import ScenarioConfig, SlotSimulator
    from ..report.tables import format_table

    model = DelayModel()
    rows = []
    for n in args.counts:
        prediction = model.solve(n)
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=args.sim_time, seed=5
        )
        result = SlotSimulator(scenario, record_delays=True).run()
        rows.append(
            (n,
             f"{prediction.mean_us / 1000:.2f}",
             f"{float(result.delays_us.mean()) / 1000:.2f}",
             f"{prediction.p95_us / 1000:.1f}",
             f"{float(np.percentile(result.delays_us, 95)) / 1000:.1f}")
        )
    print(
        format_table(
            ["N", "model mean (ms)", "sim mean (ms)", "model p95 (ms)",
             "sim p95 (ms)"],
            rows,
        )
    )
    return 0


def _cmd_coexist(args: argparse.Namespace) -> int:
    from ..experiments.coexistence import adoption_sweep
    from ..report.tables import format_table

    results = adoption_sweep(
        total_stations=args.total,
        boosted_counts=args.boosted,
        sim_time_us=args.sim_time,
    )
    print(
        format_table(
            ["boosted", "total S", "per boosted", "per legacy",
             "collision p"],
            [
                (r.num_boosted, f"{r.total_throughput:.4f}",
                 f"{r.per_boosted_station:.4f}" if r.num_boosted else "-",
                 f"{r.per_legacy_station:.4f}" if r.num_legacy else "-",
                 f"{r.collision_probability:.4f}")
                for r in results
            ],
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..obs.capture import ObsConfig, observed_collision_test
    from ..report.tables import format_table

    config = ObsConfig(
        dir=args.out_dir,
        mac_trace=not args.no_mac_trace,
        sof_trace=not args.no_sof_trace,
        metrics=args.metrics,
        label=f"{args.experiment}_n{args.stations}_seed{args.seed}",
    )
    test, capture = observed_collision_test(
        args.stations, config, duration_us=args.duration, seed=args.seed
    )
    print(f"stations              = {test.num_stations}")
    print(f"duration              = {test.duration_us/1e6:.1f} s")
    print(f"collision probability = {test.collision_probability:.4f}")
    for name, path in sorted(capture["paths"].items()):
        print(f"{name:<21} -> {path}")
    if "mac_events" in capture:
        print(f"MAC events            = {capture['mac_events']}")
    if "sof_rows" in capture:
        print(f"SoF rows              = {capture['sof_rows']}")
    if "cross_check" in capture:
        print(
            format_table(
                ["metric", "trace", "direct", "abs err"],
                [
                    (
                        row["metric"],
                        f"{row['trace']:.10g}",
                        f"{row['direct']:.10g}",
                        f"{row['abs_err']:.3g}",
                    )
                    for row in capture["cross_check"]
                ],
                title="Trace vs direct RoundLog cross-check",
            )
        )
        if not capture["cross_check_ok"]:
            print("cross-check FAILED: trace disagrees with RoundLog "
                  "beyond 1e-9")
            return 1
        print("cross-check OK (all metrics within 1e-9)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from ..experiments.procedures import run_collision_test
    from ..experiments.testbed import build_testbed
    from ..obs.profiler import EngineProfiler

    testbed = build_testbed(args.stations, seed=args.seed)
    profiler = EngineProfiler().attach(testbed.env)
    run_collision_test(
        args.stations,
        duration_us=args.duration,
        seed=args.seed,
        testbed=testbed,
    )
    profiler.detach()
    report = profiler.report()
    print(report.format())
    if args.json:
        from ..report.export import write_json

        write_json(args.json, report.as_dict())
        print(f"\nprofile written to {args.json}")
    return 0


def _load_pins(path: Optional[str]):
    from ..validity import default_pins

    if path is None:
        return default_pins()
    import json

    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_validity(args: argparse.Namespace) -> int:
    from ..validity import check_pins

    pins = _load_pins(args.pins)

    if args.action == "check":
        import json

        if args.map is None:
            print("validity check requires --map FILE")
            return 2
        with open(args.map, encoding="utf-8") as handle:
            map_data = json.load(handle)
        problems = check_pins(map_data, pins)
        cells = len(map_data.get("rows", []))
        if problems:
            print(f"pin check FAILED ({len(problems)} problem(s), "
                  f"{cells} cell(s)):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"pin check OK: {cells} cell(s) within pins")
        return 0

    from ..runner import BatchRunner
    from ..validity import (
        build_validity_map,
        format_validity_map,
        validity_figure,
    )

    runner = BatchRunner(
        cache_dir=args.cache_dir,
        **({"chunk_size": args.chunk_size} if args.chunk_size else {}),
    )
    vmap = build_validity_map(
        counts=args.counts,
        regimes=args.regimes,
        sim_time_us=args.sim_time,
        repetitions=args.reps,
        seed=args.seed,
        method=args.method,
        pins=pins,
        runner=runner,
    )
    print(format_validity_map(vmap))
    if not args.no_figure:
        print(validity_figure(vmap))
    flagged = vmap.flagged_rows
    if flagged:
        print(f"{len(flagged)} flagged cell(s):")
        for row in flagged:
            print(
                f"  {row.regime}/N={row.num_stations}: "
                f"p err {row.collision_probability_error:.4f}, "
                f"S rel err {row.throughput_relative_error:.4f}"
            )
    else:
        print("all cells within pins")
    c = runner.counters
    print(
        f"[batch] points={c.points_total} executed={c.executed} "
        f"cache_hits={c.cache_hits}"
    )
    if args.out:
        from ..report.export import write_json

        write_json(args.out, vmap.as_dict())
        print(f"validity map written to {args.out}")
    if args.strict and flagged:
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from ..chaos import InvariantViolation, preset_plan
    from ..chaos.experiment import chaos_collision_test
    from ..chaos.recovery import run_recovery_experiment

    if args.recovery:
        checkpoint_store = None
        if args.checkpoint_dir:
            from ..checkpoint import CheckpointStore

            checkpoint_store = CheckpointStore(args.checkpoint_dir)
        result = run_recovery_experiment(
            args.stations,
            seed=args.seed,
            window_us=args.duration,
            plan_seed=args.plan_seed,
            checkpoint_store=checkpoint_store,
        )
        print(f"stations (baseline)   = {result.num_stations}")
        print(f"window                = {result.window_us/1e6:.1f} s")
        print(f"baseline p            = {result.baseline:.4f}")
        print(f"faulty p              = {result.faulty:.4f}")
        print(f"recovered p           = {result.recovered:.4f}")
        print(f"deviation             = {result.deviation:.4f} "
              f"(allowed {result.allowed_deviation:.4f})")
        print(f"invariants green      = {result.invariants['green']}")
        print(f"converged             = {result.converged}")
        if args.json:
            from ..report.export import write_json

            write_json(args.json, result.as_dict())
            print(f"report written to {args.json}")
        return 0 if result.converged and result.invariants["green"] else 1

    if args.plan:
        with open(args.plan, encoding="utf-8") as handle:
            plan = json.load(handle)
    else:
        plan = preset_plan(
            args.preset,
            args.duration,
            seed=args.plan_seed,
            invariants=args.invariants,
        )
    try:
        test, report = chaos_collision_test(
            args.stations, plan, duration_us=args.duration, seed=args.seed
        )
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}")
        return 1
    invariants = report["invariants"]
    print(f"stations              = {test.num_stations}")
    print(f"duration              = {test.duration_us/1e6:.1f} s")
    print(f"collision probability = {test.collision_probability:.4f}")
    print(f"goodput at D          = {test.goodput_mbps:.2f} Mbps")
    for family, ledger in sorted(report["injection"].items()):
        print(f"  {family}: {ledger}")
    print(f"probe events          = {invariants['events_seen']}")
    print(f"deep sweeps           = {invariants['deep_sweeps']}")
    print(f"violations            = {invariants['violation_count']}")
    if args.json:
        from ..report.export import write_json

        write_json(
            args.json,
            {
                "num_stations": test.num_stations,
                "duration_us": test.duration_us,
                "collision_probability": test.collision_probability,
                "goodput_mbps": test.goodput_mbps,
                **report,
            },
        )
        print(f"report written to {args.json}")
    if not invariants["green"]:
        print("invariant checker NOT green")
        return 1
    print("invariant checker green")
    return 0


def _telemetry_paths(path_arg: str, spans_arg: Optional[str]):
    """Resolve a ``top`` path argument to ``(trace, spans)`` paths."""
    from pathlib import Path

    from ..telemetry.report import SPANS_FILENAME, TRACE_FILENAME

    path = Path(path_arg)
    if path.is_dir():
        trace = path / TRACE_FILENAME
        # Tailers tolerate a not-yet-created spans file, so always
        # fold it in for directory inputs.
        spans = Path(spans_arg) if spans_arg else path / SPANS_FILENAME
        return trace, spans
    return path, (Path(spans_arg) if spans_arg else None)


def _cmd_top(args: argparse.Namespace) -> int:
    import json

    from ..telemetry.console import follow

    trace, spans = _telemetry_paths(args.path, args.spans)
    if not trace.exists() and not args.once and args.frames is None:
        print(f"no trace at {trace} (is the sweep running with "
              f"--telemetry-dir or --trace?)")
        return 1
    emit = (lambda frame: None) if args.json else print
    status = follow(
        trace,
        spans_path=spans,
        interval_s=args.interval,
        once=args.once,
        max_frames=args.frames,
        emit=emit,
    )
    if args.json:
        print(json.dumps(status.as_dict(), indent=2))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from ..telemetry.report import build_report, format_report

    report = build_report(args.run_dir, slowest=args.slowest)
    if not report["summary"]["run_id"] and not report["span_tree"]:
        print(f"no telemetry found under {args.run_dir} "
              f"(expected trace.jsonl and/or spans.jsonl)")
        return 1
    if args.json == "-":
        print(json.dumps(report, indent=2))
        return 0
    print(format_report(report))
    if args.json:
        from ..report.export import write_json

        write_json(args.json, report)
        print(f"report written to {args.json}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from ..telemetry.openmetrics import (
        render_openmetrics,
        validate_openmetrics,
    )

    path = Path(args.path)
    if path.is_dir():
        path = path / "metrics.prom"
    if not path.exists():
        print(f"no metrics source at {path}")
        return 1
    if path.suffix == ".prom" or path.suffix == ".txt":
        text = path.read_text(encoding="utf-8")
    else:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        text = render_openmetrics(metrics=snapshot)
    problems = validate_openmetrics(text)
    if args.check:
        if problems:
            print(f"OpenMetrics check FAILED ({len(problems)} problem(s)):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        families = sum(
            1 for line in text.splitlines() if line.startswith("# TYPE ")
        )
        print(f"OpenMetrics check OK: {families} metric familie(s)")
        return 0
    if args.out:
        import os

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        tmp = out.with_suffix(out.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, out)
        print(f"exposition written to {out}", file=sys.stderr)
    print(text, end="")
    if problems:
        print(f"WARNING: {len(problems)} format problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "sim": _cmd_sim,
    "load": _cmd_load,
    "errors": _cmd_errors,
    "delay": _cmd_delay,
    "coexist": _cmd_coexist,
    "table2": _cmd_table2,
    "figure2": _cmd_figure2,
    "testbed": _cmd_testbed,
    "overhead": _cmd_overhead,
    "sweep": _cmd_sweep,
    "boost": _cmd_boost,
    "batch": _cmd_batch,
    "cache": _cmd_cache,
    "checkpoint": _cmd_checkpoint,
    "serve": _cmd_serve,
    "work": _cmd_work,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "drain": _cmd_drain,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "chaos": _cmd_chaos,
    "validity": _cmd_validity,
    "top": _cmd_top,
    "report": _cmd_report,
    "metrics": _cmd_metrics,
}


#: Commands that install their own SIGTERM/SIGINT disposition (the
#: serve loop drains on its first signal; a raise here would kill the
#: drain instead).
_OWN_SIGNALS = {"serve"}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-plc`` console script."""
    from ..service.signals import ShutdownRequested, handle_signals

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command in _OWN_SIGNALS:
            return _COMMANDS[args.command](args)
        # SIGTERM/SIGINT raise at the interrupted frame, so
        # runner-backed commands (sweep, batch, figure2, ...) unwind
        # through their finally blocks: open telemetry spans close,
        # trace JSONL flushes, checkpoints stay valid — instead of the
        # default handler's truncated artifacts.
        with handle_signals(mode="raise"):
            return _COMMANDS[args.command](args)
    except ShutdownRequested as exc:
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        return exc.exit_status
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. ``repro-plc top | head``):
        # exit quietly like any well-behaved filter.  Re-point stdout
        # at devnull so the interpreter's shutdown flush cannot raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
