"""Reimplementation of ``faifa``: the sniffer-mode capture tool.

§3.3: faifa activates the device's sniffer mode (MMType 0xA034) and
captures the start-of-frame delimiters of *all* PLC frames — data,
beacons and management.  From the delimiter fields alone it supports
the paper's three measurement methodologies:

- frame classification by **Link ID** (UDP data flows at CA1;
  management messages at CA2/CA3);
- **burst reconstruction** via the ``MPDUCnt`` field (0 marks the last
  MPDU of a burst), since bursts — not MPDUs — are the unit that pays
  CSMA/CA overhead;
- the **MME overhead** = management bursts / data bursts;
- the **source trace** of data bursts, for fairness analysis ([4]).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..hpav.device import HomePlugAVDevice
from ..hpav.mme import MmeFrame
from ..hpav.mme_types import MmeType, SnifferIndication, SnifferRequest
from .ampstat import HOST_MAC

__all__ = ["BurstRecord", "Faifa", "export_captures_json", "export_sof_trace_jsonl"]


@dataclasses.dataclass(frozen=True)
class BurstRecord:
    """A burst reassembled from consecutive SoF captures."""

    start_time_us: int
    source_tei: int
    dest_tei: int
    link_id: int
    num_mpdus: int
    collided: bool

    @property
    def is_data(self) -> bool:
        """CA0/CA1 carry the tests' data traffic (§3.3)."""
        return self.link_id <= 1

    @property
    def is_management(self) -> bool:
        """MMEs are transmitted at CA2/CA3 (§3.3)."""
        return self.link_id >= 2


class Faifa:
    """Host-side sniffer bound to one device."""

    def __init__(self, device: HomePlugAVDevice, host_mac: str = HOST_MAC) -> None:
        self.device = device
        self.host_mac = host_mac
        self.captures: List[SnifferIndication] = []
        device.host_indication_handler = self._on_indication

    # -- sniffer control ------------------------------------------------------
    def _control(self, enable: bool) -> None:
        frame = MmeFrame(
            dst_mac=self.device.mac_addr,
            src_mac=self.host_mac,
            mmtype=MmeType.VS_SNIFFER,
            payload=SnifferRequest(enable=enable).encode(),
        )
        self.device.host_request(frame.encode())

    def enable(self) -> None:
        """Turn sniffer mode on (MMType 0xA034)."""
        self._control(True)

    def disable(self) -> None:
        self._control(False)

    def clear(self) -> None:
        """Drop captures collected so far (start of a test)."""
        self.captures.clear()

    def _on_indication(self, frame_bytes: bytes) -> None:
        mme = MmeFrame.decode(frame_bytes)
        if mme.base_mmtype != MmeType.VS_SNIFFER:
            return
        self.captures.append(SnifferIndication.decode(mme.payload))

    # -- §3.3 analyses -------------------------------------------------------
    def bursts(self) -> List[BurstRecord]:
        """Group captured SoFs into bursts via ``MPDUCnt`` (§3.3).

        The field counts *remaining* MPDUs, so a burst is a maximal run
        of captures from one source ending at ``mpdu_count == 0``.
        """
        records: List[BurstRecord] = []
        open_bursts: Dict[Tuple[int, int], List[SnifferIndication]] = {}
        for capture in self.captures:
            key = (capture.source_tei, capture.link_id)
            open_bursts.setdefault(key, []).append(capture)
            if capture.mpdu_count == 0:
                parts = open_bursts.pop(key)
                first = parts[0]
                records.append(
                    BurstRecord(
                        start_time_us=first.timestamp_us,
                        source_tei=first.source_tei,
                        dest_tei=first.dest_tei,
                        link_id=first.link_id,
                        num_mpdus=len(parts),
                        collided=any(part.collided for part in parts),
                    )
                )
        records.sort(key=lambda record: record.start_time_us)
        return records

    def data_bursts(self) -> List[BurstRecord]:
        return [record for record in self.bursts() if record.is_data]

    def management_bursts(self) -> List[BurstRecord]:
        return [record for record in self.bursts() if record.is_management]

    def mme_overhead(self) -> float:
        """Management bursts / data bursts (§3.3's overhead metric)."""
        data = len(self.data_bursts())
        management = len(self.management_bursts())
        if data == 0:
            return float("inf") if management else 0.0
        return management / data

    def burst_size_histogram(self) -> Dict[int, int]:
        """Frequency of burst sizes (the §3.1 measurement)."""
        histogram: Dict[int, int] = {}
        for record in self.bursts():
            histogram[record.num_mpdus] = histogram.get(record.num_mpdus, 0) + 1
        return histogram

    def source_trace(
        self, data_only: bool = True, include_collided: bool = False
    ) -> List[Tuple[int, int]]:
        """(time, source TEI) per burst — the fairness trace of [4]."""
        return [
            (record.start_time_us, record.source_tei)
            for record in self.bursts()
            if (record.is_data or not data_only)
            and (include_collided or not record.collided)
        ]


def export_captures_json(faifa: "Faifa", path) -> "Path":
    """Write a faifa capture session to JSON for offline analysis.

    The file holds the raw SoF captures plus the derived burst records
    — everything needed to re-run the §3.3 computations elsewhere.
    """
    from pathlib import Path

    from ..report.export import write_json

    return write_json(
        Path(path),
        {
            "captures": list(faifa.captures),
            "bursts": faifa.bursts(),
            "mme_overhead": faifa.mme_overhead(),
            "burst_size_histogram": faifa.burst_size_histogram(),
        },
    )


def export_sof_trace_jsonl(faifa: "Faifa", path) -> "Path":
    """Write a faifa capture session as a SoF-trace JSONL file.

    Rows follow :data:`repro.obs.trace.SOF_TRACE_FIELDS` — the same
    schema the in-simulation :class:`repro.obs.trace.SofTraceRecorder`
    emits — so a firmware-sniffer capture and a probe capture feed the
    same :func:`repro.obs.analyze.analyze_sof_trace` pipeline.
    """
    from ..obs.trace import SOF_TRACE_FIELDS
    from ..report.export import write_jsonl

    return write_jsonl(
        path,
        (
            {
                field: getattr(capture, field)
                for field in SOF_TRACE_FIELDS
            }
            for capture in faifa.captures
        ),
    )
