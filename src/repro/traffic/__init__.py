"""Traffic generation: packets and source processes."""

from .generators import CbrSource, PoissonSource, SaturatedSource
from .packets import (
    ETHERNET_HEADER_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERNET_MTU_BYTES,
    ETHERTYPE_HOMEPLUG_AV,
    ETHERTYPE_IPV4,
    IPV4_HEADER_BYTES,
    UDP_HEADER_BYTES,
    EthernetFrame,
    mac_address,
    udp_frame,
)

__all__ = [
    "CbrSource",
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_MIN_FRAME_BYTES",
    "ETHERNET_MTU_BYTES",
    "ETHERTYPE_HOMEPLUG_AV",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "IPV4_HEADER_BYTES",
    "PoissonSource",
    "SaturatedSource",
    "UDP_HEADER_BYTES",
    "mac_address",
    "udp_frame",
]
