"""Traffic sources feeding the emulated devices' host interfaces.

The paper's tests use *saturated* stations (§3): the UDP source always
has data queued.  :class:`SaturatedSource` keeps the device's CA1 queue
topped up; :class:`PoissonSource` and :class:`CbrSource` provide the
unsaturated extensions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.parameters import PriorityClass
from ..engine.environment import Environment
from ..engine.marks import ProcMark
from ..engine.randomness import RandomStreams
from .packets import udp_frame

if TYPE_CHECKING:  # avoid a circular import at runtime (hpav uses traffic)
    from ..hpav.device import HomePlugAVDevice

__all__ = ["SaturatedSource", "PoissonSource", "CbrSource"]


class _SourceBase:
    """Common plumbing: counts offered/accepted frames."""

    def __init__(
        self,
        env: Environment,
        device: "HomePlugAVDevice",
        dst_mac: str,
        udp_payload_bytes: int = 1472,
        priority: PriorityClass = PriorityClass.CA1,
    ) -> None:
        self.env = env
        self.device = device
        self.dst_mac = dst_mac
        self.udp_payload_bytes = udp_payload_bytes
        self.priority = priority
        self.offered = 0
        self.accepted = 0
        #: Set by :meth:`stop`; the generator process exits at its next
        #: poll (station churn: a leaving device's source must quiesce).
        self.stopped = False
        #: Resume bookmark, updated before every sleep (checkpointing).
        self.mark = ProcMark(("source", device.mac_addr))

    def stop(self) -> None:
        """Stop offering traffic; the generator exits at its next wake."""
        self.stopped = True

    def restart(self, env: Environment) -> None:
        """Re-create the generator process from the mark (restore path)."""
        self.process = env.process(self._run(resume_wake_us=self.mark.wake_us))
        self.mark.stamp_created(env)

    def _offer(self) -> bool:
        frame = udp_frame(
            dst_mac=self.dst_mac,
            src_mac=self.device.mac_addr,
            udp_payload_bytes=self.udp_payload_bytes,
            created_us=self.env.now,
        )
        self.offered += 1
        if self.device.send_ethernet(frame, self.priority):
            self.accepted += 1
            return True
        return False


class SaturatedSource(_SourceBase):
    """Keeps the device's transmit queue above a watermark.

    Polls every ``poll_interval_us`` (default: one beacon period
    fraction, cheap relative to contention rounds) and refills the
    queue to ``high_watermark`` frames.
    """

    def __init__(
        self,
        env: Environment,
        device: "HomePlugAVDevice",
        dst_mac: str,
        udp_payload_bytes: int = 1472,
        priority: PriorityClass = PriorityClass.CA1,
        high_watermark: int = 64,
        poll_interval_us: float = 5_000.0,
    ) -> None:
        super().__init__(env, device, dst_mac, udp_payload_bytes, priority)
        self.high_watermark = high_watermark
        self.poll_interval_us = poll_interval_us
        self.process = env.process(self._run())
        self.mark.stamp_created(env)

    def _run(self, resume_wake_us: Optional[float] = None):
        if resume_wake_us is not None:
            # A restored incarnation sleeps to the exact wake instant
            # its predecessor had scheduled, then re-enters the loop —
            # the same check/refill/sleep sequence a live wake runs.
            yield self.env.timeout_at(resume_wake_us)
        while not self.stopped:
            depth = self.device.node.queues.depth(self.priority)
            while depth < self.high_watermark:
                if not self._offer():
                    break
                depth += 1
            self.mark.sleeping(self.env, self.env.now + self.poll_interval_us)
            yield self.env.timeout(self.poll_interval_us)
        self.mark.finish()


class PoissonSource(_SourceBase):
    """Poisson frame arrivals at ``rate_pps`` (unsaturated extension)."""

    def __init__(
        self,
        env: Environment,
        device: "HomePlugAVDevice",
        dst_mac: str,
        rate_pps: float,
        streams: Optional[RandomStreams] = None,
        udp_payload_bytes: int = 1472,
        priority: PriorityClass = PriorityClass.CA1,
    ) -> None:
        super().__init__(env, device, dst_mac, udp_payload_bytes, priority)
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.mean_interarrival_us = 1e6 / rate_pps
        streams = streams if streams is not None else RandomStreams(0)
        self._rng = streams.stream("poisson", device.mac_addr)
        self.process = env.process(self._run())
        self.mark.stamp_created(env)

    def _run(self, resume_wake_us: Optional[float] = None):
        if resume_wake_us is not None:
            # The inter-arrival delay for this wake was drawn before the
            # checkpoint (the restored RNG state is post-draw), so only
            # the sleep is replayed, at the exact recorded instant.
            yield self.env.timeout_at(resume_wake_us)
            if not self.stopped:
                self._offer()
        while not self.stopped:
            delay = float(self._rng.exponential(self.mean_interarrival_us))
            self.mark.sleeping(self.env, self.env.now + delay)
            yield self.env.timeout(delay)
            if not self.stopped:
                self._offer()
        self.mark.finish()


class CbrSource(_SourceBase):
    """Constant-bit-rate frames every ``interval_us``."""

    def __init__(
        self,
        env: Environment,
        device: "HomePlugAVDevice",
        dst_mac: str,
        interval_us: float,
        udp_payload_bytes: int = 1472,
        priority: PriorityClass = PriorityClass.CA1,
    ) -> None:
        super().__init__(env, device, dst_mac, udp_payload_bytes, priority)
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self.interval_us = interval_us
        self.process = env.process(self._run())
        self.mark.stamp_created(env)

    def _run(self, resume_wake_us: Optional[float] = None):
        if resume_wake_us is not None:
            yield self.env.timeout_at(resume_wake_us)
            if not self.stopped:
                self._offer()
        while not self.stopped:
            self.mark.sleeping(self.env, self.env.now + self.interval_us)
            yield self.env.timeout(self.interval_us)
            if not self.stopped:
                self._offer()
        self.mark.finish()
