"""Ethernet/UDP packet abstractions for the emulated testbed.

The testbed methodology (§3) saturates N stations with UDP traffic
towards a destination station D.  We model packets structurally — real
header fields, sizes in bytes, monotone frame ids — without carrying
payload bytes around (the MAC only needs sizes and addressing).
"""

from __future__ import annotations

import dataclasses

from ..core.counters import SequenceCounter

__all__ = [
    "ETHERTYPE_IPV4",
    "ETHERTYPE_HOMEPLUG_AV",
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_MIN_FRAME_BYTES",
    "ETHERNET_MTU_BYTES",
    "IPV4_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "mac_address",
    "EthernetFrame",
    "udp_frame",
]

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_HOMEPLUG_AV = 0x88E1

ETHERNET_HEADER_BYTES = 14
ETHERNET_MIN_FRAME_BYTES = 60  # without FCS
ETHERNET_MTU_BYTES = 1500
IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_frame_ids = SequenceCounter(1)


def frame_id_state() -> int:
    """Checkpoint hook: the next frame id to be handed out."""
    return _frame_ids.peek()


def restore_frame_ids(value: int) -> None:
    """Checkpoint hook: restore the frame id counter."""
    _frame_ids.reset(value)


def mac_address(index: int) -> str:
    """Deterministic locally administered MAC for station ``index``.

    >>> mac_address(3)
    '02:00:00:00:00:03'
    """
    if not 0 <= index <= 0xFFFFFFFFFF:
        raise ValueError("index out of range for a MAC address")
    raw = (0x02 << 40) | index
    octets = [(raw >> shift) & 0xFF for shift in range(40, -8, -8)]
    return ":".join(f"{octet:02x}" for octet in octets)


@dataclasses.dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet frame entering a PLC device's host interface."""

    dst_mac: str
    src_mac: str
    ethertype: int
    length_bytes: int
    frame_id: int = dataclasses.field(default_factory=lambda: next(_frame_ids))
    #: Creation (arrival) time, µs; stamped by traffic generators.
    created_us: float = 0.0

    def __post_init__(self) -> None:
        if self.length_bytes < ETHERNET_HEADER_BYTES:
            raise ValueError(
                f"frame shorter than an Ethernet header: {self.length_bytes}"
            )
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"bad ethertype {self.ethertype:#x}")

    @property
    def payload_bytes(self) -> int:
        return self.length_bytes - ETHERNET_HEADER_BYTES


def udp_frame(
    dst_mac: str,
    src_mac: str,
    udp_payload_bytes: int = 1472,
    created_us: float = 0.0,
) -> EthernetFrame:
    """Build the Ethernet frame of a UDP datagram.

    The default payload of 1472 bytes fills a 1500-byte IP packet — the
    iperf-style saturation traffic of the paper's tests.

    >>> udp_frame("02:00:00:00:00:00", "02:00:00:00:00:01").length_bytes
    1514
    """
    if udp_payload_bytes < 0:
        raise ValueError("udp_payload_bytes must be >= 0")
    length = max(
        ETHERNET_HEADER_BYTES
        + IPV4_HEADER_BYTES
        + UDP_HEADER_BYTES
        + udp_payload_bytes,
        ETHERNET_MIN_FRAME_BYTES,
    )
    return EthernetFrame(
        dst_mac=dst_mac,
        src_mac=src_mac,
        ethertype=ETHERTYPE_IPV4,
        length_bytes=length,
        created_us=created_us,
    )
