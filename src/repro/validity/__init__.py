"""Large-N model-vs-simulation validity map.

Cano & Malone show that decoupling-style 1901 models drift in exactly
the regimes the classic Figure-2 validation never visits: large N and
unsaturated or heterogeneous load.  This package charts that drift.
It sweeps the analytical model against batch-kernel simulations over
station counts into the hundreds and a set of load *regimes*, producing
a "validity map": per-``(regime, N)`` model-error rows, auto-flagged
against committed pins, exported as a JSON artifact plus report
table/figure (``repro-plc validity``).
"""

from .harness import (
    DEFAULT_COUNTS,
    ValidityMap,
    ValidityRow,
    build_validity_map,
    check_pins,
    default_pins,
)
from .regimes import REGIMES, Regime, regimes_by_name
from .report import format_validity_map, validity_figure

__all__ = [
    "DEFAULT_COUNTS",
    "REGIMES",
    "Regime",
    "ValidityMap",
    "ValidityRow",
    "build_validity_map",
    "check_pins",
    "default_pins",
    "format_validity_map",
    "regimes_by_name",
    "validity_figure",
]
