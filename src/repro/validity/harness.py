"""The validity-map harness: sweep, flag, pin-check.

:func:`build_validity_map` compares the analytical 1901 model against
batch-kernel simulations over a grid of ``(regime, N)`` cells, each
cell aggregating several independently seeded repetitions, and flags
every cell against per-regime error *pins*.

Execution routes through :class:`~repro.runner.batch.BatchRunner`:
all cells of the map are simulated in one lockstep kernel dispatch
(sharded by ``chunk_size``), every point is cached under the scalar
runner's cache key — so an interrupted sweep resumes from the cache,
and a map regenerated with a different ``counts`` subset reuses every
overlapping point.

Seeding is position-independent: the point for regime ``g`` (registry
index) at ``N`` stations, repetition ``r``, draws from
``SeedSpec(root_seed, g * 10_000 + N, r)``.  Adding counts or
selecting regime subsets never changes any existing cell's numbers.

Pins (``default_pins`` / a committed JSON file) give each regime a
ceiling on the collision-probability error and the relative throughput
error.  A cell is *flagged* when it exceeds its ceiling or when an
error is undefined (``NaN``).  :func:`check_pins` re-derives the flags
of a saved artifact against a pins file — the CI gate that catches
silent model/simulator drift.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional, Sequence

from ..core.config import CsmaConfig, TimingConfig
from ..core.results import aggregate
from .regimes import REGIMES, Regime, regimes_by_name

__all__ = [
    "DEFAULT_COUNTS",
    "MAP_SCHEMA",
    "PINS_SCHEMA",
    "ValidityMap",
    "ValidityRow",
    "build_validity_map",
    "check_pins",
    "default_pins",
]

#: Default station-count grid: the paper's range (≤ 7) up to the
#: large-N territory the batch kernel opens (acceptance: 5 → ≥ 100).
DEFAULT_COUNTS = (5, 10, 25, 50, 100, 150)

MAP_SCHEMA = "repro-plc/validity-map/v1"
PINS_SCHEMA = "repro-plc/validity-pins/v1"

#: Seed-derivation stride between regime registry indices; station
#: counts must stay below it for indices to be collision-free.
_REGIME_STRIDE = 10_000


def default_pins() -> Dict[str, Any]:
    """Per-regime error ceilings (the committed pins' source of truth).

    Ceilings for the model-valid regimes are tight (the model should
    track simulation within a few percent); for the regimes where the
    saturated model is expected to break they bound *how far* it may
    drift — measured on the committed artifact plus margin, so a
    behaviour change in either the model or the kernel trips the pin
    check before it silently redraws the map.
    """
    return {
        "schema": PINS_SCHEMA,
        "regimes": {
            "saturated": {
                "collision_probability_error": 0.05,
                "throughput_relative_error": 0.06,
            },
            "fractional_load": {
                "collision_probability_error": 0.97,
                "throughput_relative_error": 0.55,
            },
            "heterogeneous": {
                "collision_probability_error": 0.20,
                "throughput_relative_error": 0.60,
            },
            "retry_limited": {
                "collision_probability_error": 0.12,
                "throughput_relative_error": 0.12,
            },
        },
    }


@dataclasses.dataclass(frozen=True)
class ValidityRow:
    """One cell of the map: model vs simulation at ``(regime, N)``."""

    regime: str
    num_stations: int
    model_collision_probability: float
    sim_collision_probability: float
    model_throughput: float
    sim_throughput: float
    repetitions: int
    #: Ceilings applied to this row (``None`` = unpinned).
    pin_collision: Optional[float]
    pin_throughput: Optional[float]

    @property
    def collision_probability_error(self) -> float:
        return abs(
            self.model_collision_probability - self.sim_collision_probability
        )

    @property
    def throughput_relative_error(self) -> float:
        """|model − sim| / sim, ``NaN`` when the sim delivered nothing."""
        if self.sim_throughput == 0:
            return float("nan")
        return (
            abs(self.model_throughput - self.sim_throughput)
            / self.sim_throughput
        )

    @property
    def flagged(self) -> bool:
        """Exceeds a pin, or an error metric is undefined."""
        return _flag(
            self.collision_probability_error,
            self.throughput_relative_error,
            self.pin_collision,
            self.pin_throughput,
        )

    def as_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["collision_probability_error"] = _jsonable_float(
            self.collision_probability_error
        )
        data["throughput_relative_error"] = _jsonable_float(
            self.throughput_relative_error
        )
        data["flagged"] = self.flagged
        return data


def _flag(
    coll_error: float,
    tput_error: float,
    pin_collision: Optional[float],
    pin_throughput: Optional[float],
) -> bool:
    if math.isnan(coll_error) or math.isnan(tput_error):
        return True
    if pin_collision is not None and coll_error > pin_collision:
        return True
    if pin_throughput is not None and tput_error > pin_throughput:
        return True
    return False


def _jsonable_float(value: float) -> Optional[float]:
    """NaN → ``None`` so the artifact is strict JSON."""
    return None if math.isnan(value) else value


def _stored_float(value: Optional[float]) -> float:
    return float("nan") if value is None else float(value)


@dataclasses.dataclass(frozen=True)
class ValidityMap:
    """The full artifact: rows plus the configuration that made them."""

    rows: List[ValidityRow]
    config: Dict[str, Any]

    @property
    def flagged_rows(self) -> List[ValidityRow]:
        return [row for row in self.rows if row.flagged]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": MAP_SCHEMA,
            "config": dict(self.config),
            "rows": [row.as_dict() for row in self.rows],
            "summary": {
                "cells": len(self.rows),
                "flagged": len(self.flagged_rows),
                "regimes": sorted({row.regime for row in self.rows}),
            },
        }


def _point_index(regime: Regime, num_stations: int) -> int:
    """Stable seed index for a cell, independent of grid selection."""
    if num_stations >= _REGIME_STRIDE:
        raise ValueError(
            f"num_stations must be < {_REGIME_STRIDE}, got {num_stations}"
        )
    registry = [r.name for r in REGIMES]
    return registry.index(regime.name) * _REGIME_STRIDE + num_stations


def build_validity_map(
    counts: Sequence[int] = DEFAULT_COUNTS,
    regimes: Optional[Sequence[str]] = None,
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 1e7,
    repetitions: int = 2,
    seed: int = 1,
    method: str = "markov",
    pins: Optional[Dict[str, Any]] = None,
    runner=None,
    cache_dir=None,
    chunk_size: Optional[int] = None,
) -> ValidityMap:
    """Sweep every ``(regime, N)`` cell and build the validity map.

    ``runner`` is an optional
    :class:`~repro.runner.batch.BatchRunner`; by default one is built
    (``cache_dir`` / ``chunk_size`` as shorthands).  All cells run in
    one ``run_points`` call, so the kernel processes the whole map in
    lockstep and the cache makes interrupted or repeated sweeps
    incremental.
    """
    from ..analysis.model import Model1901
    from ..runner.batch import BatchRunner
    from ..runner.seeding import SeedSpec

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    selected = regimes_by_name(regimes)
    csma = config if config is not None else CsmaConfig.default_1901()
    timing = timing if timing is not None else TimingConfig()
    pins = pins if pins is not None else default_pins()
    pin_regimes = pins.get("regimes", {})
    model = Model1901(csma, timing, method=method)
    if runner is None:
        runner = BatchRunner(
            cache_dir=cache_dir,
            **({"chunk_size": chunk_size} if chunk_size else {}),
        )

    cells = [
        (regime, n) for regime in selected for n in counts
    ]
    pairs = []
    for regime, n in cells:
        scenario = regime.scenario(
            n, csma=csma, timing=timing, sim_time_us=sim_time_us, seed=seed
        )
        index = _point_index(regime, n)
        for rep in range(repetitions):
            pairs.append(
                (
                    scenario,
                    SeedSpec(
                        root_seed=seed, point_index=index, repetition=rep
                    ),
                )
            )
    points = runner.run_points(pairs)

    rows: List[ValidityRow] = []
    for k, (regime, n) in enumerate(cells):
        prediction = model.solve(n)
        agg = aggregate(
            [
                p.result
                for p in points[k * repetitions : (k + 1) * repetitions]
            ]
        )
        pin = pin_regimes.get(regime.name, {})
        rows.append(
            ValidityRow(
                regime=regime.name,
                num_stations=n,
                model_collision_probability=prediction.collision_probability,
                sim_collision_probability=agg.collision_probability,
                model_throughput=prediction.normalized_throughput,
                sim_throughput=agg.normalized_throughput,
                repetitions=repetitions,
                pin_collision=pin.get("collision_probability_error"),
                pin_throughput=pin.get("throughput_relative_error"),
            )
        )
    return ValidityMap(
        rows=rows,
        config={
            "counts": list(counts),
            "regimes": [r.name for r in selected],
            "sim_time_us": sim_time_us,
            "repetitions": repetitions,
            "seed": seed,
            "method": method,
        },
    )


def check_pins(
    map_data: Dict[str, Any], pins: Dict[str, Any]
) -> List[str]:
    """Re-derive every row's flag from ``pins``; list the violations.

    Returns one message per problem: a row whose stored errors exceed
    the pin ceilings (or are undefined), a stored ``flagged`` marker
    that disagrees with the re-derivation (artifact/pins drift), or a
    schema mismatch.  An empty list means the artifact is green.
    """
    problems: List[str] = []
    if map_data.get("schema") != MAP_SCHEMA:
        problems.append(
            f"map schema {map_data.get('schema')!r} != {MAP_SCHEMA!r}"
        )
        return problems
    if pins.get("schema") != PINS_SCHEMA:
        problems.append(
            f"pins schema {pins.get('schema')!r} != {PINS_SCHEMA!r}"
        )
        return problems
    pin_regimes = pins.get("regimes", {})
    for row in map_data.get("rows", []):
        cell = f"{row['regime']}/N={row['num_stations']}"
        pin = pin_regimes.get(row["regime"])
        if pin is None:
            problems.append(f"{cell}: regime has no pin entry")
            continue
        coll = _stored_float(row["collision_probability_error"])
        tput = _stored_float(row["throughput_relative_error"])
        flagged = _flag(
            coll,
            tput,
            pin.get("collision_probability_error"),
            pin.get("throughput_relative_error"),
        )
        if flagged:
            problems.append(
                f"{cell}: collision error {coll:.4f} "
                f"(pin {pin.get('collision_probability_error')}), "
                f"throughput error {tput:.4f} "
                f"(pin {pin.get('throughput_relative_error')})"
            )
        if bool(row.get("flagged")) != flagged:
            problems.append(
                f"{cell}: stored flagged={row.get('flagged')} but pins "
                f"derive {flagged} — regenerate the artifact"
            )
    return problems
