"""The load regimes of the validity map.

Each :class:`Regime` builds, for a station count ``N``, one scenario
probing a distinct corner of the model's assumption space:

- ``saturated`` — the paper's operating assumption (every station
  always backlogged).  The decoupling model is derived here; errors
  should stay small at every N.
- ``fractional_load`` — homogeneous Poisson arrivals at 70 % of the
  per-station saturation rate.  Stations idle between frames, so the
  saturated model *over*-predicts contention; the gap is the point.
- ``heterogeneous`` — half the stations saturated, half at 50 % load.
  Neither the saturated nor any homogeneous-unsaturated analysis
  describes this mix.
- ``retry_limited`` — saturated stations that drop a frame after 7
  failed attempts (a typical 1901 retry limit).  Drops relieve
  contention at large N, which the infinite-retry model cannot see.

Every regime runs on the batch kernel — since PR 7 the kernel's
support matrix covers unsaturated arrivals and finite retry limits
bit-exactly (:mod:`repro.batch.kernel`).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence

from ..core.config import (
    CsmaConfig,
    ScenarioConfig,
    StationConfig,
    TimingConfig,
)
from ..experiments.unsaturated import saturation_rate_pps

__all__ = ["REGIMES", "Regime", "regimes_by_name"]

#: Offered load of the fractional regime, as a fraction of saturation.
FRACTIONAL_LOAD = 0.7

#: Offered load of the unsaturated half of the heterogeneous regime.
HETEROGENEOUS_LOAD = 0.5

#: Frame-retry budget of the retry-limited regime.
RETRY_LIMIT = 7


@dataclasses.dataclass(frozen=True)
class Regime:
    """One load regime: a name plus a per-N scenario builder."""

    name: str
    description: str
    #: Whether the saturated decoupling model is expected to stay
    #: accurate here (documentation for map readers; the enforced
    #: thresholds live in the pins file).
    model_expected_valid: bool
    build: Callable[..., ScenarioConfig]

    def scenario(
        self,
        num_stations: int,
        csma: Optional[CsmaConfig] = None,
        timing: Optional[TimingConfig] = None,
        sim_time_us: float = 1e7,
        seed: int = 1,
    ) -> ScenarioConfig:
        csma = csma if csma is not None else CsmaConfig.default_1901()
        timing = timing if timing is not None else TimingConfig()
        return self.build(num_stations, csma, timing, sim_time_us, seed)


def _per_station_rate(
    fraction: float, num_stations: int, timing: TimingConfig
) -> float:
    """``fraction`` of the analytical saturation knee, floored > 0."""
    return max(fraction * saturation_rate_pps(num_stations, timing), 1e-3)


def _saturated(n, csma, timing, sim_time_us, seed):
    return ScenarioConfig.homogeneous(
        num_stations=n,
        csma=csma,
        timing=timing,
        sim_time_us=sim_time_us,
        seed=seed,
    )


def _fractional_load(n, csma, timing, sim_time_us, seed):
    return ScenarioConfig.homogeneous(
        num_stations=n,
        csma=csma,
        timing=timing,
        sim_time_us=sim_time_us,
        seed=seed,
        arrival_rate_pps=_per_station_rate(FRACTIONAL_LOAD, n, timing),
    )


def _heterogeneous(n, csma, timing, sim_time_us, seed):
    rate = _per_station_rate(HETEROGENEOUS_LOAD, n, timing)
    stations = tuple(
        StationConfig(
            csma=csma,
            arrival_rate_pps=None if i % 2 == 0 else rate,
            name=f"sta{i}",
        )
        for i in range(n)
    )
    return ScenarioConfig(
        stations=stations,
        timing=timing,
        sim_time_us=sim_time_us,
        seed=seed,
    )


def _retry_limited(n, csma, timing, sim_time_us, seed):
    return ScenarioConfig.homogeneous(
        num_stations=n,
        csma=dataclasses.replace(csma, retry_limit=RETRY_LIMIT),
        timing=timing,
        sim_time_us=sim_time_us,
        seed=seed,
    )


#: Registry order is the artifact/report order AND the seed-derivation
#: index (see harness._point_index) — append new regimes at the end.
REGIMES: Sequence[Regime] = (
    Regime(
        name="saturated",
        description="all stations permanently backlogged "
        "(the paper's operating assumption)",
        model_expected_valid=True,
        build=_saturated,
    ),
    Regime(
        name="fractional_load",
        description=f"homogeneous Poisson arrivals at "
        f"{FRACTIONAL_LOAD:.0%} of the saturation knee",
        model_expected_valid=False,
        build=_fractional_load,
    ),
    Regime(
        name="heterogeneous",
        description=f"half saturated, half at "
        f"{HETEROGENEOUS_LOAD:.0%} load",
        model_expected_valid=False,
        build=_heterogeneous,
    ),
    Regime(
        name="retry_limited",
        description=f"saturated with frames dropped after "
        f"{RETRY_LIMIT} attempts",
        model_expected_valid=True,
        build=_retry_limited,
    ),
)


def regimes_by_name(names: Optional[Sequence[str]] = None) -> Sequence[Regime]:
    """Resolve regime names (default: every registered regime)."""
    if names is None:
        return tuple(REGIMES)
    registry: Dict[str, Regime] = {r.name: r for r in REGIMES}
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise ValueError(
            f"unknown regime(s) {unknown}; known: {sorted(registry)}"
        )
    return tuple(registry[name] for name in names)
