"""Human-readable views of a validity map: table and ASCII figure."""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..report.figures import ascii_plot
from ..report.tables import format_table
from .harness import ValidityMap

__all__ = ["format_validity_map", "validity_figure"]


def _fmt(value: float) -> str:
    return "nan" if math.isnan(value) else f"{value:.4f}"


def _fmt_pin(value) -> str:
    return "-" if value is None else f"{value:.2f}"


def format_validity_map(vmap: ValidityMap) -> str:
    """The per-cell error table, registry order, flags last."""
    rows = [
        (
            row.regime,
            row.num_stations,
            _fmt(row.model_collision_probability),
            _fmt(row.sim_collision_probability),
            _fmt(row.collision_probability_error),
            _fmt(row.throughput_relative_error),
            f"{_fmt_pin(row.pin_collision)}/{_fmt_pin(row.pin_throughput)}",
            "FLAG" if row.flagged else "ok",
        )
        for row in vmap.rows
    ]
    cfg = vmap.config
    return format_table(
        [
            "regime",
            "N",
            "model p",
            "sim p",
            "p err",
            "S rel err",
            "pins p/S",
            "status",
        ],
        rows,
        title=(
            f"Validity map ({cfg['repetitions']} rep(s), "
            f"{cfg['sim_time_us'] / 1e6:g} s simulated per point, "
            f"seed {cfg['seed']})"
        ),
    )


def validity_figure(vmap: ValidityMap) -> str:
    """Collision-probability model error vs N, one curve per regime."""
    series: Dict[str, Tuple[List[int], List[float]]] = {}
    for row in vmap.rows:
        error = row.collision_probability_error
        if math.isnan(error):
            continue
        xs, ys = series.setdefault(row.regime, ([], []))
        xs.append(row.num_stations)
        ys.append(error)
    return ascii_plot(
        series,
        title="Model collision-probability error by regime",
        xlabel="number of stations",
        ylabel="|model p - sim p|",
        y_min=0.0,
    )
