"""Tests for the 802.11 Bianchi baseline model."""

import pytest

from repro.analysis.bianchi import Bianchi80211Model, tau_bianchi
from repro.core.config import CsmaConfig, TimingConfig


class TestTauBianchi:
    def test_gamma_zero_closed_form(self):
        # τ(0) = 2/(W+1).
        assert tau_bianchi(0.0, 16, 6) == pytest.approx(2 / 17)
        assert tau_bianchi(0.0, 32, 5) == pytest.approx(2 / 33)

    def test_matches_textbook_closed_form(self):
        # τ = 2(1−2γ) / ((1−2γ)(W+1) + γW(1−(2γ)^m)), γ ≠ 1/2.
        for w, m, gamma in [(32, 5, 0.2), (16, 6, 0.1), (8, 3, 0.4)]:
            closed = (2 * (1 - 2 * gamma)) / (
                (1 - 2 * gamma) * (w + 1)
                + gamma * w * (1 - (2 * gamma) ** m)
            )
            assert tau_bianchi(gamma, w, m) == pytest.approx(
                closed, rel=1e-9
            )

    def test_no_singularity_at_half(self):
        # The closed form is 0/0 at γ=1/2; the series is smooth there.
        left = tau_bianchi(0.4999999, 32, 5)
        mid = tau_bianchi(0.5, 32, 5)
        right = tau_bianchi(0.5000001, 32, 5)
        assert left == pytest.approx(mid, rel=1e-4)
        assert right == pytest.approx(mid, rel=1e-4)

    def test_decreasing_in_gamma(self):
        taus = [tau_bianchi(g, 16, 6) for g in (0.0, 0.2, 0.5, 0.8)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            tau_bianchi(-0.1, 16, 6)
        with pytest.raises(ValueError):
            tau_bianchi(0.2, 0, 6)


class TestBianchiModel:
    def test_collision_probability_increases_with_n(self):
        model = Bianchi80211Model()
        values = [model.collision_probability(n) for n in (2, 5, 10, 20)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_single_station(self):
        model = Bianchi80211Model()
        assert model.collision_probability(1) == 0.0

    def test_from_config_roundtrip(self):
        config = CsmaConfig.ieee80211(cw_min=16, max_stage=4)
        model = Bianchi80211Model.from_config(config)
        assert model.cw_min == 16
        assert model.max_stage == 4

    def test_from_config_rejects_non_doubling(self):
        config = CsmaConfig(cw=(8, 8), dc=(8, 8))
        with pytest.raises(ValueError):
            Bianchi80211Model.from_config(config)

    def test_throughput_positive_and_bounded(self):
        model = Bianchi80211Model(timing=TimingConfig())
        for n in (1, 5, 20):
            s = model.normalized_throughput(n)
            assert 0 < s < 1

    def test_matches_simulation(self):
        """Bianchi vs our slot simulator running the 802.11 config."""
        from repro.core import ScenarioConfig, SlotSimulator

        config = CsmaConfig.ieee80211()
        model = Bianchi80211Model.from_config(config)
        n = 5
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, csma=config, sim_time_us=3e7, seed=3
        )
        result = SlotSimulator(scenario).run()
        prediction = model.solve(n)
        assert prediction.collision_probability == pytest.approx(
            result.collision_probability, abs=0.03
        )
        assert prediction.normalized_throughput == pytest.approx(
            result.normalized_throughput, rel=0.05
        )
