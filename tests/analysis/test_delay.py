"""Tests for the access-delay model."""

import numpy as np
import pytest

from repro.analysis.delay import DelayModel
from repro.core import ScenarioConfig, SlotSimulator
from repro.core.config import CsmaConfig, TimingConfig


class TestSingleStation:
    """N=1 has a closed form: delay = U{0..7}·σ + Ts."""

    def test_mean_exact(self):
        prediction = DelayModel().solve(1)
        timing = TimingConfig()
        assert prediction.mean_us == pytest.approx(
            3.5 * timing.slot + timing.ts, rel=1e-6
        )

    def test_std_exact(self):
        prediction = DelayModel().solve(1)
        timing = TimingConfig()
        expected = timing.slot * np.sqrt(((8**2) - 1) / 12.0)
        assert prediction.std_us == pytest.approx(expected, rel=1e-6)

    def test_events_exact(self):
        # E[K] = (CW0+1)/2 = 4.5 events per frame.
        assert DelayModel().solve(1).mean_events == pytest.approx(4.5)


class TestAgainstSimulation:
    @pytest.mark.parametrize("n", [2, 5])
    def test_mean_within_five_percent(self, n):
        prediction = DelayModel().solve(n)
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=2e7, seed=5
        )
        result = SlotSimulator(scenario, record_delays=True).run()
        assert prediction.mean_us == pytest.approx(
            float(result.delays_us.mean()), rel=0.05
        )

    def test_std_underestimates_but_tracks(self):
        """Decoupling misses capture-induced burstiness: the model's
        std sits below the simulator's, within a factor of ~2."""
        prediction = DelayModel().solve(2)
        scenario = ScenarioConfig.homogeneous(
            num_stations=2, sim_time_us=2e7, seed=5
        )
        result = SlotSimulator(scenario, record_delays=True).run()
        sim_std = float(result.delays_us.std())
        assert prediction.std_us < sim_std
        assert prediction.std_us > 0.4 * sim_std


class TestScaling:
    def test_mean_increases_with_n(self):
        model = DelayModel()
        means = [model.solve(n).mean_us for n in (1, 3, 6, 12)]
        assert all(a < b for a, b in zip(means, means[1:]))

    def test_percentiles_ordered(self):
        prediction = DelayModel().solve(5)
        assert (
            prediction.p50_us
            < prediction.mean_us * 1.5
        )
        assert prediction.p50_us < prediction.p95_us < prediction.p99_us

    def test_custom_config(self):
        slow = DelayModel(CsmaConfig(cw=(256,), dc=(0,))).solve(2)
        fast = DelayModel(CsmaConfig(cw=(8,), dc=(0,))).solve(2)
        assert slow.mean_us > fast.mean_us
