"""Tests for the fixed-point machinery."""

import pytest

from repro.analysis.fixed_point import (
    ConvergenceError,
    damped_iteration,
    find_all_fixed_points,
    gamma_from_tau,
    solve_fixed_point,
)


class TestGammaFromTau:
    def test_single_station_no_coupling(self):
        assert gamma_from_tau(0.5, 1) == 0.0

    def test_two_stations(self):
        assert gamma_from_tau(0.3, 2) == pytest.approx(0.3)

    def test_many_stations(self):
        assert gamma_from_tau(0.1, 11) == pytest.approx(1 - 0.9**10)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            gamma_from_tau(1.5, 2)
        with pytest.raises(ValueError):
            gamma_from_tau(0.5, 0)

    def test_monotone_in_tau(self):
        values = [gamma_from_tau(t, 5) for t in (0.1, 0.2, 0.4)]
        assert values[0] < values[1] < values[2]


class TestSolveFixedPoint:
    def test_constant_map(self):
        # f(γ) = 0.2 regardless: τ* = 0.2.
        tau = solve_fixed_point(lambda g: 0.2, 5)
        assert tau == pytest.approx(0.2)

    def test_n_equals_one_shortcut(self):
        assert solve_fixed_point(lambda g: 0.7, 1) == 0.7

    def test_decreasing_map_unique_root(self):
        # f(γ) = 0.5·(1−γ): strictly decreasing, unique fixed point.
        tau = solve_fixed_point(lambda g: 0.5 * (1 - g), 2)
        # τ = 0.5(1−τ) → τ = 1/3.
        assert tau == pytest.approx(1 / 3, abs=1e-9)

    def test_agrees_with_damped_iteration(self):
        f = lambda g: 0.3 * (1 - g) ** 2
        brent = solve_fixed_point(f, 4)
        damped = damped_iteration(f, 4)
        assert brent == pytest.approx(damped, abs=1e-6)


class TestFindAllFixedPoints:
    def test_single_root_found(self):
        roots = find_all_fixed_points(lambda g: 0.5 * (1 - g), 2)
        assert len(roots) == 1
        assert roots[0] == pytest.approx(1 / 3, abs=1e-6)

    def test_multiple_roots_synthetic(self):
        # Craft a non-monotone map with three crossings for N=2
        # (γ == τ there): f(γ) = γ + 0.1·sin(3π·γ) has roots where
        # sin(3πγ) = 0, i.e. γ ∈ {1/3, 2/3} plus endpoints excluded.
        import math

        f = lambda g: min(max(g + 0.1 * math.sin(3 * math.pi * g), 0.0), 1.0)
        roots = find_all_fixed_points(f, 2)
        assert len(roots) >= 2

    def test_roots_are_fixed_points(self):
        f = lambda g: 0.4 * (1 - g) ** 3
        for root in find_all_fixed_points(f, 3):
            assert root == pytest.approx(
                f(gamma_from_tau(root, 3)), abs=1e-6
            )

    def test_1901_decoupling_fixed_point_is_unique(self):
        """τ(γ) is strictly decreasing for every (cw, dc) schedule, so
        the scalar decoupling fixed point is always unique — the
        multiple-equilibria phenomenon [5] discusses lives in the
        coupled dynamics (short-term capture), not in this map."""
        from repro.analysis.recursive import RecursiveModel
        from repro.core.config import CsmaConfig

        configs = [
            CsmaConfig.default_1901(),
            CsmaConfig(cw=(8, 16, 32, 64), dc=(15, 15, 15, 15)),
            CsmaConfig(cw=(2, 1024), dc=(0, 1023)),
            CsmaConfig(cw=(64,) * 4, dc=(0, 1, 3, 15)),
        ]
        for config in configs:
            model = RecursiveModel(config)
            for n in (2, 10, 50):
                roots = find_all_fixed_points(
                    model.tau, n, grid_points=300
                )
                assert len(roots) == 1, (config, n, roots)


class TestConvergenceError:
    """Non-convergence is a structured error, not a silent bad value."""

    # f(γ) = 1 − γ with damping 1 oscillates 0.1 ↔ 0.9 forever (N=2,
    # where γ == τ).
    @staticmethod
    def _flip(gamma):
        return 1.0 - gamma

    def test_damped_iteration_raises_with_evidence(self):
        with pytest.raises(ConvergenceError) as err:
            damped_iteration(self._flip, 2, damping=1.0, max_iter=50)
        exc = err.value
        assert exc.iterations == 50
        assert 0.0 <= exc.last_iterate <= 1.0
        assert exc.residual == pytest.approx(0.8)
        assert "50 iteration" in str(exc)
        assert "residual" in str(exc)
        assert isinstance(exc, RuntimeError)

    def test_damped_iteration_strict_false_returns_last_iterate(self):
        tau = damped_iteration(
            self._flip, 2, damping=1.0, max_iter=50, strict=False
        )
        assert tau in (pytest.approx(0.1), pytest.approx(0.9))

    def test_solve_fixed_point_threads_strict_to_fallback(self):
        # f ≡ 0 has the same residual sign at both bracket ends, so
        # solve_fixed_point falls back to damped iteration; τ halves
        # each step and cannot reach tol=1e-12 in 3 steps.
        with pytest.raises(ConvergenceError):
            solve_fixed_point(lambda g: 0.0, 2, max_iter=3)
        tau = solve_fixed_point(lambda g: 0.0, 2, max_iter=3, strict=False)
        assert tau == pytest.approx(0.1 * 0.5**3)
        # With the default budget the same fallback converges fine.
        assert solve_fixed_point(lambda g: 0.0, 2) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_find_all_fixed_points_raises_when_scan_finds_nothing(self):
        # f ≡ 1 only touches τ = 1 exactly, outside the open grid: the
        # residual τ − 1 never changes sign, so the scan comes up dry.
        with pytest.raises(ConvergenceError) as err:
            find_all_fixed_points(lambda g: 1.0, 3, grid_points=100)
        exc = err.value
        assert exc.iterations == 100
        # The best grid point hugs τ = 1 where |residual| is smallest.
        assert exc.last_iterate > 0.9
        assert exc.residual < 0.05

    def test_find_all_fixed_points_strict_false_returns_empty(self):
        roots = find_all_fixed_points(
            lambda g: 1.0, 3, grid_points=100, strict=False
        )
        assert roots == []

    def test_model_call_sites_annotate_the_error(self, monkeypatch):
        from repro.analysis import bianchi, delay, model
        from repro.analysis.bianchi import Bianchi80211Model
        from repro.analysis.delay import DelayModel
        from repro.analysis.model import Model1901

        def explode(*args, **kwargs):
            raise ConvergenceError(
                "damped Picard iteration did not converge",
                last_iterate=0.3,
                residual=0.01,
                iterations=10000,
            )

        for module, make in (
            (model, lambda: Model1901()),
            (bianchi, lambda: Bianchi80211Model()),
            (delay, lambda: DelayModel()),
        ):
            monkeypatch.setattr(module, "solve_fixed_point", explode)
            with pytest.raises(ConvergenceError, match="N=5") as err:
                make().solve(5)
            assert err.value.last_iterate == 0.3
            assert err.value.iterations == 10000
            assert isinstance(err.value.__cause__, ConvergenceError)
