"""Tests for the heterogeneous (multi-group) decoupling model."""

import pytest

from repro.analysis.heterogeneous import GroupSpec, HeterogeneousModel
from repro.analysis.model import Model1901
from repro.core.config import CsmaConfig

BOOSTED = CsmaConfig(cw=(32, 128, 512, 2048), dc=(7, 15, 31, 63))


class TestDegenerateCases:
    def test_single_group_matches_homogeneous_model(self):
        for n in (1, 3, 7):
            hetero = HeterogeneousModel(
                [GroupSpec(CsmaConfig.default_1901(), n)]
            ).solve()
            homo = Model1901(method="recursive").solve(n)
            assert hetero.total_throughput == pytest.approx(
                homo.normalized_throughput, abs=1e-9
            )
            assert hetero.groups[0].tau == pytest.approx(
                homo.tau, abs=1e-9
            )

    def test_two_identical_groups_match_one_big_group(self):
        config = CsmaConfig.default_1901()
        split = HeterogeneousModel(
            [GroupSpec(config, 3, "a"), GroupSpec(config, 3, "b")]
        ).solve()
        merged = HeterogeneousModel([GroupSpec(config, 6)]).solve()
        assert split.total_throughput == pytest.approx(
            merged.total_throughput, abs=1e-9
        )
        assert split.groups[0].tau == pytest.approx(
            split.groups[1].tau, abs=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousModel([])
        with pytest.raises(ValueError):
            GroupSpec(CsmaConfig.default_1901(), 0)


class TestMixedPopulations:
    def test_converges(self):
        prediction = HeterogeneousModel(
            [
                GroupSpec(BOOSTED, 5, "boosted"),
                GroupSpec(CsmaConfig.default_1901(), 5, "legacy"),
            ]
        ).solve()
        assert prediction.converged

    def test_politer_group_gets_less(self):
        prediction = HeterogeneousModel(
            [
                GroupSpec(BOOSTED, 5, "boosted"),
                GroupSpec(CsmaConfig.default_1901(), 5, "legacy"),
            ]
        ).solve()
        boosted, legacy = prediction.groups
        assert legacy.throughput_per_station > 2 * boosted.throughput_per_station
        assert boosted.tau < legacy.tau

    def test_group_throughputs_sum_to_total(self):
        prediction = HeterogeneousModel(
            [
                GroupSpec(BOOSTED, 2, "boosted"),
                GroupSpec(CsmaConfig.default_1901(), 8, "legacy"),
            ]
        ).solve()
        assert prediction.total_throughput == pytest.approx(
            sum(g.throughput for g in prediction.groups), abs=1e-12
        )

    def test_matches_heterogeneous_simulation(self):
        from repro.experiments.coexistence import coexistence_experiment

        prediction = HeterogeneousModel(
            [
                GroupSpec(BOOSTED, 5, "boosted"),
                GroupSpec(CsmaConfig.default_1901(), 5, "legacy"),
            ]
        ).solve()
        sim = coexistence_experiment(5, 5, sim_time_us=1e7, seed=3)
        assert prediction.total_throughput == pytest.approx(
            sim.total_throughput, rel=0.05
        )
        legacy = prediction.groups[1]
        assert legacy.throughput_per_station == pytest.approx(
            sim.per_legacy_station, rel=0.10
        )

    def test_three_groups(self):
        prediction = HeterogeneousModel(
            [
                GroupSpec(CsmaConfig.default_1901(), 2, "default"),
                GroupSpec(CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)), 2, "ca3"),
                GroupSpec(CsmaConfig.ieee80211(), 2, "wifi"),
            ]
        ).solve()
        assert prediction.converged
        assert len(prediction.groups) == 3
        assert prediction.total_throughput > 0.4

    def test_gamma_accounts_for_own_group(self):
        """A station's γ excludes itself but includes its group mates."""
        config = CsmaConfig.default_1901()
        solo = HeterogeneousModel([GroupSpec(config, 1)]).solve()
        assert solo.groups[0].collision_probability == 0.0
        pair = HeterogeneousModel([GroupSpec(config, 2)]).solve()
        assert pair.groups[0].collision_probability > 0.0