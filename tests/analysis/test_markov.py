"""Tests for the exact per-station Markov chain."""

import numpy as np
import pytest

from repro.analysis.markov import StationChain
from repro.core.config import CsmaConfig
from repro.core.station import SlotOutcome, Station


class TestChainStructure:
    def test_state_count(self):
        # A(s) per stage + sum_s (cw_s - 1) * (dc_s + 1) backoff states.
        config = CsmaConfig.default_1901()
        chain = StationChain(config)
        expected = 4 + sum(
            (w - 1) * (d + 1) for w, d in zip(config.cw, config.dc)
        )
        assert chain.num_states == expected

    def test_transition_matrix_is_stochastic(self):
        chain = StationChain(CsmaConfig.default_1901())
        for gamma in (0.0, 0.1, 0.5, 0.9):
            matrix = chain.transition_matrix(gamma)
            assert np.allclose(matrix.sum(axis=1), 1.0)
            assert (matrix >= 0).all()

    def test_bad_gamma_rejected(self):
        chain = StationChain(CsmaConfig.default_1901())
        with pytest.raises(ValueError):
            chain.transition_matrix(-0.1)

    def test_stationary_distribution_normalized(self):
        chain = StationChain(CsmaConfig.default_1901())
        pi = chain.stationary_distribution(0.2)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()


class TestTauValues:
    def test_tau_at_zero_gamma_single_stage(self):
        # Never busy -> station always transmits from stage 0:
        # E[events/frame] = (CW0+1)/2, so τ = 2/(CW0+1).
        chain = StationChain(CsmaConfig(cw=(8,), dc=(0,)))
        assert chain.tau(0.0) == pytest.approx(2 / 9)

    def test_tau_at_zero_gamma_default(self):
        # With γ=0 higher stages are never visited.
        chain = StationChain(CsmaConfig.default_1901())
        assert chain.tau(0.0) == pytest.approx(2 / 9)

    def test_tau_decreasing_in_gamma(self):
        chain = StationChain(CsmaConfig.default_1901())
        taus = [chain.tau(g) for g in (0.0, 0.2, 0.4, 0.6)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_solution_extras(self):
        chain = StationChain(CsmaConfig.default_1901())
        sol = chain.solve(0.3)
        assert sol.tau == pytest.approx(sum(sol.tau_per_stage))
        assert sum(sol.stage_occupancy) == pytest.approx(1.0)
        assert sol.jump_rate > 0

    def test_no_jumps_when_deferral_unreachable(self):
        chain = StationChain(CsmaConfig.ieee80211(cw_min=8, max_stage=2))
        # Exactly zero up to the linear solver's round-off: the j=0
        # states exist but are unreachable (b < cw busy events fit).
        assert chain.solve(0.4).jump_rate == pytest.approx(0.0, abs=1e-12)


class TestChainMatchesFsm:
    """The chain must agree with the Station FSM driven by i.i.d.
    busy slots — the decisive semantic cross-check."""

    @pytest.mark.parametrize("gamma", [0.1, 0.3])
    def test_tau_matches_monte_carlo(self, gamma):
        config = CsmaConfig.default_1901()
        chain = StationChain(config)
        station = Station(config, np.random.default_rng(1))
        medium = np.random.default_rng(2)
        attempts = events = 0
        for _ in range(200_000):
            attempted = station.step()
            events += 1
            if attempted:
                attempts += 1
                if medium.random() < gamma:
                    station.resolve(SlotOutcome.COLLISION)
                else:
                    station.resolve(SlotOutcome.SUCCESS, won=True)
                    station.reset_for_new_frame()
            elif medium.random() < gamma:
                station.resolve(SlotOutcome.COLLISION)
            else:
                station.resolve(SlotOutcome.IDLE)
        mc_tau = attempts / events
        assert chain.tau(gamma) == pytest.approx(mc_tau, rel=0.03)


class TestStageDistributionVsSimulation:
    def test_attempt_stage_split_shows_capture_bias(self):
        """Decoupling error, stage-resolved: both model and simulation
        put most attempts at stage 0 with monotonically decreasing
        shares over stages 0-2, but the *simulation* concentrates even
        more at stage 0 — the capture effect (a winner camps at stage
        0 while losers defer without attempting; cf. experiment X13).
        """
        from repro.analysis.fixed_point import gamma_from_tau, solve_fixed_point
        from repro.core import ScenarioConfig, SlotSimulator

        n = 3
        config = CsmaConfig.default_1901()
        chain = StationChain(config)
        tau = solve_fixed_point(chain.tau, n)
        solution = chain.solve(gamma_from_tau(tau, n))
        model_split = np.array(solution.tau_per_stage) / solution.tau

        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=2e7, seed=6
        )
        result = SlotSimulator(scenario, record_trace=True).run()
        histogram = np.array(
            result.trace.stage_at_attempt_counts(config.num_stages),
            dtype=float,
        )
        sim_split = histogram / histogram.sum()

        # Shared shape: stage 0 dominates, early stages decrease.
        for split in (model_split, sim_split):
            assert split[0] > 0.4
            assert split[0] > split[1] > split[2]
        # The capture bias: simulation overweights stage 0.
        assert sim_split[0] > model_split[0] + 0.05
