"""Tests for the high-level Model1901 and the throughput formulas."""

import math

import pytest

from repro.analysis.model import Model1901
from repro.analysis.throughput import network_prediction
from repro.core.config import CsmaConfig, TimingConfig


class TestNetworkPrediction:
    def test_tau_zero_all_idle(self):
        p = network_prediction(0.0, 5, TimingConfig())
        assert p.normalized_throughput == 0.0
        assert p.p_transmission == 0.0
        assert math.isinf(p.mean_access_delay_us)

    def test_tau_one_single_station_saturates(self):
        timing = TimingConfig()
        p = network_prediction(1.0, 1, timing)
        assert p.normalized_throughput == pytest.approx(
            timing.frame / timing.ts
        )
        assert p.collision_probability == 0.0

    def test_probability_identities(self):
        p = network_prediction(0.2, 4, TimingConfig())
        assert p.p_transmission == pytest.approx(1 - 0.8**4)
        assert p.p_success == pytest.approx(4 * 0.2 * 0.8**3)
        assert p.collision_probability == pytest.approx(1 - 0.8**3)

    def test_validation(self):
        with pytest.raises(ValueError):
            network_prediction(1.5, 2, TimingConfig())
        with pytest.raises(ValueError):
            network_prediction(0.2, 0, TimingConfig())

    def test_as_dict(self):
        p = network_prediction(0.1, 2, TimingConfig())
        d = p.as_dict()
        assert d["num_stations"] == 2
        assert d["tau"] == 0.1


class TestModel1901:
    def test_methods_agree(self):
        markov = Model1901(method="markov")
        recursive = Model1901(method="recursive")
        for n in (2, 5, 10):
            assert markov.collision_probability(n) == pytest.approx(
                recursive.collision_probability(n), abs=1e-8
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Model1901(method="magic")

    def test_single_station(self):
        model = Model1901()
        prediction = model.solve(1)
        assert prediction.collision_probability == 0.0
        # τ(γ=0) = 2/(CW0+1) = 2/9.
        assert prediction.tau == pytest.approx(2 / 9)

    def test_collision_probability_increases_with_n(self):
        model = Model1901()
        values = [model.collision_probability(n) for n in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_throughput_decreases_with_n(self):
        model = Model1901()
        values = [model.normalized_throughput(n) for n in (2, 5, 10, 30)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_delay_increases_with_n(self):
        model = Model1901()
        values = [model.mean_access_delay_us(n) for n in (1, 3, 9)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_figure2_range(self):
        """The analysis curve of Figure 2: ~0 at N=1 up to <0.35 at N=7."""
        model = Model1901()
        p7 = model.collision_probability(7)
        assert 0.2 < p7 < 0.35

    def test_fixed_points_contains_operating_point(self):
        model = Model1901()
        points = model.fixed_points(5)
        assert len(points) >= 1
        solved = model.solve(5)
        assert any(
            fp.tau == pytest.approx(solved.tau, abs=1e-6) for fp in points
        )

    def test_custom_config(self):
        model = Model1901(CsmaConfig(cw=(64,), dc=(0,)))
        # Large fixed window: low collision probability even at N=10.
        assert model.collision_probability(10) < 0.3


class TestModelVsSimulation:
    """Decoupling model vs simulator: shape agreement (Figure 2)."""

    @pytest.mark.parametrize("n,abs_tol", [(2, 0.05), (5, 0.04), (7, 0.04)])
    def test_collision_probability_close(self, n, abs_tol):
        from repro.core import ScenarioConfig, SlotSimulator

        model = Model1901()
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=2e7, seed=4
        )
        result = SlotSimulator(scenario).run()
        assert model.collision_probability(n) == pytest.approx(
            result.collision_probability, abs=abs_tol
        )

    def test_throughput_close(self):
        from repro.core import ScenarioConfig, SlotSimulator

        model = Model1901()
        for n in (2, 5):
            scenario = ScenarioConfig.homogeneous(
                num_stations=n, sim_time_us=2e7, seed=4
            )
            result = SlotSimulator(scenario).run()
            assert model.normalized_throughput(n) == pytest.approx(
                result.normalized_throughput, rel=0.05
            )
