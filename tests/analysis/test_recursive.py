"""Tests for the stage-recursion model and its agreement with the chain."""

import numpy as np
import pytest

from repro.analysis.markov import StationChain
from repro.analysis.recursive import RecursiveModel, stage_quantities
from repro.core.config import CsmaConfig


class TestStageQuantities:
    def test_never_busy(self):
        q = stage_quantities(8, 0, 0.0)
        assert q.attempt_probability == 1.0
        assert q.expected_events == pytest.approx(4.5)  # (w+1)/2

    def test_window_one_always_attempts(self):
        q = stage_quantities(1, 0, 0.7)
        assert q.attempt_probability == 1.0
        assert q.expected_events == pytest.approx(1.0)

    def test_unreachable_deferral_always_attempts(self):
        # d >= w-1: at most w-1 busy events fit before BC expiry.
        q = stage_quantities(8, 7, 0.9)
        assert q.attempt_probability == pytest.approx(1.0)
        assert q.expected_events == pytest.approx(4.5)

    def test_always_busy_zero_deferral(self):
        # p=1, d=0: any b >= 1 jumps at the first event; only the
        # immediate draw b=0 (probability 1/w) attempts.
        q = stage_quantities(8, 0, 1.0)
        assert q.attempt_probability == pytest.approx(1 / 8)
        # b=0 spends 1 event (attempt); b>=1 spends 1 event (jump).
        assert q.expected_events == pytest.approx(1.0)

    def test_attempt_probability_decreasing_in_p(self):
        values = [
            stage_quantities(16, 1, p).attempt_probability
            for p in (0.0, 0.2, 0.5, 0.8)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_probability_bounds(self):
        for w, d, p in [(8, 0, 0.3), (64, 15, 0.5), (32, 3, 0.95)]:
            q = stage_quantities(w, d, p)
            assert 0.0 <= q.attempt_probability <= 1.0
            assert q.expected_events >= (1.0 - 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_quantities(0, 0, 0.5)
        with pytest.raises(ValueError):
            stage_quantities(8, -1, 0.5)
        with pytest.raises(ValueError):
            stage_quantities(8, 0, 1.5)

    def test_monte_carlo_agreement(self):
        """Direct Monte-Carlo of one stage matches the formulas."""
        w, d, p = 16, 3, 0.35
        rng = np.random.default_rng(5)
        attempts = 0
        total_events = 0
        trials = 40_000
        for _ in range(trials):
            b = rng.integers(0, w)
            remaining_d = d
            events = 0
            transmitted = False
            while True:
                if b == 0:
                    events += 1  # the attempt event
                    transmitted = True
                    break
                events += 1
                if rng.random() < p:
                    if remaining_d == 0:
                        break  # jump at this event
                    remaining_d -= 1
                b -= 1
            attempts += transmitted
            total_events += events
        q = stage_quantities(w, d, p)
        assert q.attempt_probability == pytest.approx(
            attempts / trials, abs=0.01
        )
        assert q.expected_events == pytest.approx(
            total_events / trials, rel=0.02
        )


class TestRecursiveVsChain:
    """The two independent implementations must agree exactly."""

    @pytest.mark.parametrize(
        "config",
        [
            CsmaConfig.default_1901(),
            CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)),  # CA2/CA3
            CsmaConfig(cw=(4, 8), dc=(1, 2)),
            CsmaConfig(cw=(16,), dc=(0,)),
            CsmaConfig.ieee80211(cw_min=8, max_stage=3),
        ],
    )
    @pytest.mark.parametrize("gamma", [0.0, 0.1, 0.35, 0.7])
    def test_tau_agreement(self, config, gamma):
        chain_tau = StationChain(config).tau(gamma)
        recursive_tau = RecursiveModel(config).tau(gamma)
        assert recursive_tau == pytest.approx(chain_tau, abs=1e-10)

    def test_visit_frequencies_normalized(self):
        model = RecursiveModel(CsmaConfig.default_1901())
        v = model.visit_frequencies(0.3)
        assert v.sum() == pytest.approx(1.0)
        assert (v >= 0).all()

    def test_backoff_events_per_frame_increase_with_gamma(self):
        model = RecursiveModel(CsmaConfig.default_1901())
        values = [
            model.expected_backoff_events_per_frame(g)
            for g in (0.0, 0.3, 0.6)
        ]
        assert values[0] < values[1] < values[2]
