"""Tests for the model-vs-simulation comparison helper."""

import pytest

from repro.analysis.validation import compare_model_to_simulation


def test_comparison_rows_structure():
    rows = compare_model_to_simulation(
        [1, 3], sim_time_us=5e6, repetitions=2
    )
    assert [r.num_stations for r in rows] == [1, 3]
    for row in rows:
        assert 0.0 <= row.model_collision_probability <= 1.0
        assert 0.0 <= row.sim_collision_probability <= 1.0
        assert row.model_throughput > 0
        assert row.sim_throughput > 0


def test_errors_are_small_for_default_config():
    rows = compare_model_to_simulation(
        [2, 5], sim_time_us=1e7, repetitions=2
    )
    for row in rows:
        assert row.collision_probability_error < 0.06
        assert row.throughput_relative_error < 0.06


def test_single_station_error_zero():
    rows = compare_model_to_simulation([1], sim_time_us=5e6)
    assert rows[0].model_collision_probability == 0.0
    assert rows[0].sim_collision_probability == 0.0


def test_recursive_method_usable():
    rows = compare_model_to_simulation(
        [2], sim_time_us=2e6, method="recursive"
    )
    assert rows[0].model_collision_probability > 0
