"""Tests for the model-vs-simulation comparison helper."""

import math

import pytest

from repro.analysis.validation import (
    ComparisonRow,
    compare_model_to_simulation,
)


def test_comparison_rows_structure():
    rows = compare_model_to_simulation(
        [1, 3], sim_time_us=5e6, repetitions=2
    )
    assert [r.num_stations for r in rows] == [1, 3]
    for row in rows:
        assert 0.0 <= row.model_collision_probability <= 1.0
        assert 0.0 <= row.sim_collision_probability <= 1.0
        assert row.model_throughput > 0
        assert row.sim_throughput > 0


def test_errors_are_small_for_default_config():
    rows = compare_model_to_simulation(
        [2, 5], sim_time_us=1e7, repetitions=2
    )
    for row in rows:
        assert row.collision_probability_error < 0.06
        assert row.throughput_relative_error < 0.06


def test_single_station_error_zero():
    rows = compare_model_to_simulation([1], sim_time_us=5e6)
    assert rows[0].model_collision_probability == 0.0
    assert rows[0].sim_collision_probability == 0.0


def test_recursive_method_usable():
    rows = compare_model_to_simulation(
        [2], sim_time_us=2e6, method="recursive"
    )
    assert rows[0].model_collision_probability > 0


def test_zero_sim_throughput_is_nan_and_flagged():
    """Regression: zero sim throughput used to return ``inf``."""
    row = ComparisonRow(
        num_stations=2,
        model_collision_probability=0.1,
        sim_collision_probability=0.1,
        model_throughput=0.5,
        sim_throughput=0.0,
    )
    assert math.isnan(row.throughput_relative_error)
    assert row.flagged


def test_healthy_row_is_not_flagged():
    row = ComparisonRow(
        num_stations=2,
        model_collision_probability=0.1,
        sim_collision_probability=0.12,
        model_throughput=0.5,
        sim_throughput=0.48,
    )
    assert not row.flagged
    assert row.throughput_relative_error == pytest.approx(0.02 / 0.48)


def test_matches_direct_simulate_bit_for_bit():
    """Regression: routing through the runner must not change goldens."""
    from repro.core.config import CsmaConfig, ScenarioConfig, TimingConfig
    from repro.core.results import aggregate
    from repro.core.simulator import simulate

    counts, sim_time_us, repetitions, seed = [2, 4], 3e5, 2, 7
    rows = compare_model_to_simulation(
        counts, sim_time_us=sim_time_us, repetitions=repetitions, seed=seed
    )
    for n, row in zip(counts, rows):
        scenario = ScenarioConfig.homogeneous(
            num_stations=n,
            csma=CsmaConfig.default_1901(),
            timing=TimingConfig(),
            sim_time_us=sim_time_us,
            seed=seed,
        )
        agg = aggregate(simulate(scenario, repetitions=repetitions))
        assert row.sim_collision_probability == agg.collision_probability
        assert row.sim_throughput == agg.normalized_throughput


def test_routes_through_supplied_runner_and_caches(tmp_path):
    """Regression: the helper used to bypass the runner entirely."""
    from repro.runner.batch import BatchRunner

    runner = BatchRunner(cache_dir=tmp_path)
    kwargs = dict(sim_time_us=2e5, repetitions=2, seed=3, runner=runner)
    cold = compare_model_to_simulation([2, 3], **kwargs)
    assert runner.counters.executed == 4
    assert runner.counters.cache_hits == 0

    warm = compare_model_to_simulation([2, 3], **kwargs)
    assert runner.counters.executed == 4  # nothing recomputed
    assert runner.counters.cache_hits == 4
    assert warm == cold
