"""Batch-kernel checkpointing: bit-identical resumption at round edges."""

import pytest

from repro.batch import BatchSlotKernel
from repro.checkpoint import (
    CheckpointStore,
    restore_batch_kernel,
    run_batch_with_checkpoints,
    snapshot_batch_kernel,
)
from repro.core import ScenarioConfig
from repro.core.config import CsmaConfig


def _scenarios():
    return [
        ScenarioConfig.homogeneous(2, sim_time_us=1e5, seed=51),
        ScenarioConfig.homogeneous(4, sim_time_us=1e5, seed=52),
        ScenarioConfig.homogeneous(
            3,
            csma=CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)),
            sim_time_us=8e4,
            seed=53,
        ),
    ]


def test_checkpointed_run_equals_plain_run(tmp_path):
    scenarios = _scenarios()
    store = CheckpointStore(str(tmp_path))
    checkpointed = run_batch_with_checkpoints(
        BatchSlotKernel(scenarios), store, every_rounds=40
    )
    plain = BatchSlotKernel(scenarios).run()
    assert checkpointed == plain
    assert store.sequence_numbers(), "expected snapshots on disk"


def test_resume_from_snapshot_is_bit_identical(tmp_path):
    scenarios = _scenarios()

    # Interrupted run: advance partway, snapshot through the store.
    kernel = BatchSlotKernel(scenarios)
    assert kernel.advance(60) is False
    store = CheckpointStore(str(tmp_path))
    from repro.checkpoint import Checkpoint

    store.write(
        Checkpoint(
            kind="batch",
            seq=store.next_seq(),
            sim_time_us=0.0,
            meta={"points": len(scenarios)},
            state=snapshot_batch_kernel(kernel),
        )
    )

    # "Crash", then restore from the newest valid checkpoint.
    newest = store.latest_valid()
    assert newest is not None and newest.kind == "batch"
    resumed = restore_batch_kernel(scenarios, newest.state)
    assert resumed.rounds == 60
    resumed.advance(None)

    uninterrupted = BatchSlotKernel(scenarios)
    uninterrupted.advance(None)
    assert resumed.results() == uninterrupted.results()
    assert resumed.rounds == uninterrupted.rounds


def test_snapshot_midway_does_not_perturb_the_run():
    """Snapshotting writes back RNG state without changing the draws."""
    scenarios = _scenarios()
    kernel = BatchSlotKernel(scenarios)
    while not kernel.advance(25):
        snapshot_batch_kernel(kernel)
    plain = BatchSlotKernel(scenarios).run()
    assert kernel.results() == plain


def test_restore_rejects_mismatched_scenarios():
    scenarios = _scenarios()
    kernel = BatchSlotKernel(scenarios)
    kernel.advance(10)
    payload = snapshot_batch_kernel(kernel)
    # Same batch size, but a narrower widest point: the dynamic
    # arrays no longer line up.
    narrower = [
        scenarios[0],
        ScenarioConfig.homogeneous(2, sim_time_us=1e5, seed=52),
        scenarios[2],
    ]
    with pytest.raises(ValueError, match="shape"):
        restore_batch_kernel(narrower, payload)


def test_every_rounds_validated(tmp_path):
    store = CheckpointStore(str(tmp_path))
    kernel = BatchSlotKernel(_scenarios()[:1])
    with pytest.raises(ValueError, match="every_rounds"):
        run_batch_with_checkpoints(kernel, store, every_rounds=0)


def test_snapshot_pickles_through_store_format(tmp_path):
    """The payload survives the store's serialize/checksum round trip."""
    from repro.checkpoint import Checkpoint, read_file

    scenarios = _scenarios()[:2]
    kernel = BatchSlotKernel(scenarios)
    kernel.advance(30)
    store = CheckpointStore(str(tmp_path))
    path = store.write(
        Checkpoint(
            kind="batch",
            seq=1,
            sim_time_us=1.0,
            meta={},
            state=snapshot_batch_kernel(kernel),
        )
    )
    loaded = read_file(path)
    resumed = restore_batch_kernel(scenarios, loaded.state)
    resumed.advance(None)
    kernel.advance(None)
    assert resumed.results() == kernel.results()
