"""Property-based differential harness: kernel == FSM, round by round.

Hypothesis generates random (N, CW schedule, DC schedule, horizon,
seed, retry limit, per-station Poisson arrival rates, queue capacity)
scenarios, runs each through both the scalar ``SlotSimulator`` and
the vectorized ``BatchSlotKernel``, and asserts the per-round traces
and end-of-run results are bit-identical.  A divergence is shrunk by
hypothesis to a minimal scenario and reported as a ready-to-paste
regression test.
"""

import dataclasses
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    batch_simulate,
    compare_round_records,
    kernel_round_records,
    slotsim_round_records,
)
from repro.core import ScenarioConfig, SlotSimulator
from repro.core.config import CsmaConfig, StationConfig


@st.composite
def scenario_params(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    stages = draw(st.integers(min_value=1, max_value=4))
    cw = tuple(
        draw(st.integers(min_value=1, max_value=64))
        for _ in range(stages)
    )
    dc = tuple(
        draw(st.integers(min_value=0, max_value=15))
        for _ in range(stages)
    )
    sim_time_us = float(draw(st.integers(min_value=2_000, max_value=40_000)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    # PR 7's opened support matrix: finite retry limits and
    # unsaturated Poisson arrivals, per station.
    retry_limit = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=4))
    )
    arrivals = draw(
        st.lists(
            st.one_of(
                st.none(),
                st.floats(min_value=10.0, max_value=2_000.0),
            ),
            min_size=n,
            max_size=n,
        )
    )
    queue_capacity = draw(st.integers(min_value=1, max_value=4))
    return (
        n, cw, dc, sim_time_us, seed, retry_limit, arrivals,
        queue_capacity,
    )


def _build(
    n, cw, dc, sim_time_us, seed,
    retry_limit=None, arrivals=None, queue_capacity=64,
):
    csma = CsmaConfig(cw=cw, dc=dc, retry_limit=retry_limit)
    stations = tuple(
        StationConfig(
            csma=csma,
            arrival_rate_pps=(
                arrivals[i] if arrivals is not None else None
            ),
            queue_capacity=queue_capacity,
        )
        for i in range(n)
    )
    return ScenarioConfig(
        stations=stations,
        sim_time_us=sim_time_us,
        seed=seed,
    )


def _regression_snippet(params, problems):
    """A paste-ready regression test pinning the shrunk divergence."""
    n, cw, dc, sim_time_us, seed, retry_limit, arrivals, cap = params
    body = textwrap.dedent(
        f"""\
        def test_regression_kernel_divergence():
            scenario = _build(
                {n}, {cw!r}, {dc!r}, {sim_time_us!r}, {seed},
                retry_limit={retry_limit!r},
                arrivals={arrivals!r},
                queue_capacity={cap!r},
            )
            scalar, _ = slotsim_round_records(scenario)
            batch, _ = kernel_round_records([scenario])
            assert compare_round_records(scalar, batch[0]) == []
        """
    )
    divergences = "\n".join(f"  {p}" for p in problems)
    return (
        f"kernel diverged from SlotSimulator:\n{divergences}\n"
        f"minimal regression test (paste into tests/batch/):\n\n{body}"
    )


@settings(deadline=None, max_examples=40)
@given(scenario_params())
def test_kernel_round_trace_matches_fsm(params):
    scenario = _build(*params)
    scalar_records, scalar_result = slotsim_round_records(scenario)
    batch_records, batch_results = kernel_round_records([scenario])
    problems = compare_round_records(scalar_records, batch_records[0])
    assert not problems, _regression_snippet(params, problems)
    # The scalar run carried a trace for the adapter; strip it before
    # comparing the counters result.
    assert batch_results[0] == dataclasses.replace(
        scalar_result, trace=None
    )


@settings(deadline=None, max_examples=15)
@given(
    st.lists(scenario_params(), min_size=2, max_size=5),
)
def test_batched_points_do_not_interact(param_list):
    """Each point of a mixed batch equals its own standalone FSM run."""
    scenarios = [_build(*params) for params in param_list]
    batch = batch_simulate(scenarios)
    for scenario, got in zip(scenarios, batch):
        assert got == SlotSimulator(scenario).run()
