"""Batch kernel: support matrix, lifecycle, and FSM equivalence."""

import pytest

from repro.batch import (
    BatchSlotKernel,
    UnsupportedScenario,
    batch_simulate,
    check_supported,
    supports_scenario,
)
from repro.core import ScenarioConfig, SlotSimulator
from repro.core.config import CsmaConfig, StationConfig, TimingConfig
from repro.engine import RandomStreams

SIM_TIME_US = 2e5


def _grid():
    """A deliberately heterogeneous scenario mix (see tests below)."""
    return [
        ScenarioConfig.homogeneous(2, sim_time_us=SIM_TIME_US, seed=3),
        ScenarioConfig.homogeneous(5, sim_time_us=SIM_TIME_US, seed=4),
        # The boosted (CW, DC) shape from the paper's Table 2 regime.
        ScenarioConfig.homogeneous(
            3,
            csma=CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)),
            sim_time_us=SIM_TIME_US,
            seed=5,
        ),
        # Single-stage schedule (constant CW).
        ScenarioConfig.homogeneous(
            4,
            csma=CsmaConfig(cw=(32,), dc=(0,)),
            sim_time_us=SIM_TIME_US,
            seed=6,
        ),
        # 802.11-style BEB without deferral expiry.
        ScenarioConfig.homogeneous(
            3,
            csma=CsmaConfig.ieee80211(cw_min=16, max_stage=4),
            sim_time_us=SIM_TIME_US,
            seed=7,
        ),
        # Different timing and a shorter horizon.
        ScenarioConfig.homogeneous(
            2,
            timing=TimingConfig(ts=1500.0, tc=1200.0, frame=1000.0),
            sim_time_us=SIM_TIME_US / 2,
            seed=8,
        ),
        # Unsaturated Poisson arrivals (PR 7's opened support matrix).
        ScenarioConfig.homogeneous(
            3,
            sim_time_us=SIM_TIME_US,
            seed=9,
            arrival_rate_pps=150.0,
        ),
        # Finite retry limit, and a mixed saturated/unsaturated point.
        ScenarioConfig.homogeneous(
            2,
            csma=CsmaConfig(retry_limit=1),
            sim_time_us=SIM_TIME_US,
            seed=10,
        ),
        ScenarioConfig(
            stations=(
                StationConfig(),
                StationConfig(
                    csma=CsmaConfig(retry_limit=2),
                    arrival_rate_pps=400.0,
                    queue_capacity=2,
                ),
            ),
            sim_time_us=SIM_TIME_US,
            seed=11,
        ),
    ]


# -- support matrix ---------------------------------------------------------
def test_unsaturated_station_is_supported():
    """PR 7 opened the gate: arrivals run on the kernel, bit-exactly."""
    scenario = ScenarioConfig(
        stations=(
            StationConfig(),
            StationConfig(arrival_rate_pps=100.0),
        ),
        sim_time_us=1e5,
    )
    assert supports_scenario(scenario)
    check_supported(scenario)  # must not raise
    assert batch_simulate([scenario])[0] == SlotSimulator(scenario).run()


def test_retry_limit_is_supported():
    scenario = ScenarioConfig.homogeneous(
        2, csma=CsmaConfig(retry_limit=5), sim_time_us=1e5
    )
    assert supports_scenario(scenario)
    check_supported(scenario)  # must not raise
    assert batch_simulate([scenario])[0] == SlotSimulator(scenario).run()


def test_unsupported_scenario_stays_in_api():
    """The gate type remains importable/raisable for future features."""
    assert issubclass(UnsupportedScenario, ValueError)


def test_saturated_default_is_supported():
    assert supports_scenario(
        ScenarioConfig.homogeneous(3, sim_time_us=1e5)
    )


# -- constructor validation -------------------------------------------------
def test_empty_batch_rejected():
    with pytest.raises(ValueError, match="at least one"):
        BatchSlotKernel([])


def test_stream_count_mismatch_rejected():
    scenarios = _grid()[:2]
    with pytest.raises(ValueError, match="stream trees"):
        BatchSlotKernel(scenarios, streams=[RandomStreams(1)])


def test_results_before_completion_raises():
    kernel = BatchSlotKernel(_grid()[:1])
    with pytest.raises(RuntimeError, match="completion"):
        kernel.results()
    kernel.advance(3)
    with pytest.raises(RuntimeError):
        kernel.results()


# -- equivalence ------------------------------------------------------------
def test_batch_matches_slot_simulator_bit_exact():
    scenarios = _grid()
    batch = batch_simulate(scenarios)
    for scenario, got in zip(scenarios, batch):
        want = SlotSimulator(scenario).run()
        assert got == want


def test_mixed_station_counts_in_one_batch():
    """Points narrower than the widest lane array stay exact."""
    scenarios = [
        ScenarioConfig.homogeneous(1, sim_time_us=1e5, seed=21),
        ScenarioConfig.homogeneous(7, sim_time_us=1e5, seed=22),
        ScenarioConfig.homogeneous(3, sim_time_us=1e5, seed=23),
    ]
    batch = batch_simulate(scenarios)
    for scenario, got in zip(scenarios, batch):
        assert got == SlotSimulator(scenario).run()
        assert len(got.stations) == scenario.num_stations


def test_explicit_streams_match_slot_simulator():
    scenario = ScenarioConfig.homogeneous(3, sim_time_us=1e5, seed=None)
    streams = RandomStreams(99)
    got = batch_simulate([scenario], streams=[streams.clone()])[0]
    want = SlotSimulator(scenario, streams=streams.clone()).run()
    assert got == want


def test_scalar_draw_fallback_is_bit_exact(monkeypatch):
    """REPRO_BATCH_SCALAR_DRAWS=1 changes speed, never numbers."""
    monkeypatch.setenv("REPRO_BATCH_SCALAR_DRAWS", "1")
    scenarios = _grid()[:3]
    batch = batch_simulate(scenarios)
    for scenario, got in zip(scenarios, batch):
        assert got == SlotSimulator(scenario).run()


# -- lifecycle --------------------------------------------------------------
def test_advance_in_slices_equals_single_run():
    scenarios = _grid()[:3]
    sliced = BatchSlotKernel(scenarios)
    while not sliced.advance(17):
        pass
    plain = BatchSlotKernel(scenarios)
    assert plain.advance(None)
    assert sliced.results() == plain.results()
    assert sliced.rounds == plain.rounds


def test_advance_reports_completion():
    kernel = BatchSlotKernel(
        [ScenarioConfig.homogeneous(2, sim_time_us=5e4, seed=1)]
    )
    assert kernel.advance(0) is False
    assert kernel.advance(None) is True
    assert kernel.finished
    # Advancing a finished kernel is a no-op.
    rounds = kernel.rounds
    assert kernel.advance(10) is True
    assert kernel.rounds == rounds


def test_shorter_points_finish_early_and_go_inert():
    short = ScenarioConfig.homogeneous(2, sim_time_us=2e4, seed=31)
    long = ScenarioConfig.homogeneous(2, sim_time_us=2e5, seed=32)
    kernel = BatchSlotKernel([short, long])
    kernel.advance(None)
    results = kernel.results()
    assert results[0] == SlotSimulator(short).run()
    assert results[1] == SlotSimulator(long).run()
    assert results[0].duration_us < results[1].duration_us
