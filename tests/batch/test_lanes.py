"""Tests for the vectorized per-lane RNG (bit-exact PCG64 emulation)."""

import numpy as np
import pytest

from repro.batch.lanes import LaneRngs, vector_draws_available

WIDTHS = [1, 2, 7, 8, 16, 32, 33, 64, 100, 255, 1000, 2**16, 2**31]


def _generators(n, entropy=1234):
    return [
        np.random.default_rng(
            np.random.SeedSequence(entropy=entropy, spawn_key=(k,))
        )
        for k in range(n)
    ]


def test_selftest_passes_on_this_numpy():
    """The vector path must be proven safe on the pinned numpy."""
    assert vector_draws_available()


def test_vector_draws_match_real_generators():
    n = len(WIDTHS)
    lanes = LaneRngs(_generators(n), _force_vector=True)
    assert lanes.vectorized
    reference = _generators(n)
    rows = np.arange(n)
    cw = np.array(WIDTHS, dtype=np.int64)
    for _ in range(200):
        got = lanes.draw(rows, cw)
        want = [int(g.integers(0, w)) for g, w in zip(reference, WIDTHS)]
        assert got.tolist() == want


def test_cw_one_consumes_nothing():
    """``integers(0, 1)`` returns 0 without touching the stream."""
    gens = _generators(2)
    lanes = LaneRngs(gens, _force_vector=True)
    rows = np.array([0, 1])
    got = lanes.draw(rows, np.array([1, 1], dtype=np.int64))
    assert got.tolist() == [0, 0]
    # The streams are untouched: the next wide draw matches a fresh
    # generator pair that never drew at all.
    lanes.write_back(gens)
    fresh = _generators(2)
    assert [int(g.integers(0, 1000)) for g in gens] == [
        int(g.integers(0, 1000)) for g in fresh
    ]


def test_write_back_continues_streams():
    n = len(WIDTHS)
    gens = _generators(n)
    lanes = LaneRngs(gens, _force_vector=True)
    reference = _generators(n)
    rows = np.arange(n)
    cw = np.array(WIDTHS, dtype=np.int64)
    for _ in range(37):
        lanes.draw(rows, cw)
        for g, w in zip(reference, WIDTHS):
            g.integers(0, w)
    lanes.write_back(gens)
    # Scalar calls on the written-back generators continue exactly
    # where the batched draws left off.
    for _ in range(10):
        got = [int(g.integers(0, w)) for g, w in zip(gens, WIDTHS)]
        want = [int(g.integers(0, w)) for g, w in zip(reference, WIDTHS)]
        assert got == want


def test_scalar_path_matches_vector_path():
    n = len(WIDTHS)
    vec = LaneRngs(_generators(n), _force_vector=True)
    scalar = LaneRngs(_generators(n), _force_vector=False)
    assert vec.vectorized and not scalar.vectorized
    rows = np.arange(n)
    cw = np.array(WIDTHS, dtype=np.int64)
    for _ in range(100):
        assert vec.draw(rows, cw).tolist() == scalar.draw(rows, cw).tolist()


def test_none_lanes_stay_inert():
    gens = _generators(3)
    lanes = LaneRngs([gens[0], None, gens[2]], _force_vector=True)
    reference = _generators(3)
    rows = np.array([0, 2])
    cw = np.array([32, 64], dtype=np.int64)
    got = lanes.draw(rows, cw)
    assert got.tolist() == [
        int(reference[0].integers(0, 32)),
        int(reference[2].integers(0, 64)),
    ]
    # write_back over a sequence containing the None entry is safe.
    lanes.write_back([gens[0], None, gens[2]])


def test_non_pcg64_backend_falls_back_to_scalar():
    mt = np.random.Generator(np.random.MT19937(5))
    lanes = LaneRngs([mt], _force_vector=True)
    assert not lanes.vectorized
    reference = np.random.Generator(np.random.MT19937(5))
    rows = np.array([0])
    cw = np.array([100], dtype=np.int64)
    for _ in range(20):
        assert lanes.draw(rows, cw).tolist() == [
            int(reference.integers(0, 100))
        ]


def test_env_knob_forces_scalar(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_SCALAR_DRAWS", "1")
    assert not vector_draws_available()
    lanes = LaneRngs(_generators(2))
    assert not lanes.vectorized


def test_subset_rows_per_call():
    """Draw patterns with different lane subsets per call stay exact."""
    n = 8
    lanes = LaneRngs(_generators(n), _force_vector=True)
    reference = _generators(n)
    pattern = [
        ([0, 3, 5], [8, 16, 32]),
        ([1], [64]),
        ([0, 1, 2, 3, 4, 5, 6, 7], [8] * 8),
        ([7, 2], [33, 1]),
        ([5], [2**31]),
    ]
    for _ in range(50):
        for rows, widths in pattern:
            got = lanes.draw(
                np.array(rows), np.array(widths, dtype=np.int64)
            )
            want = [
                int(reference[j].integers(0, w))
                for j, w in zip(rows, widths)
            ]
            assert got.tolist() == want


def test_lanes_pickle_roundtrip():
    import pickle

    n = 4
    lanes = LaneRngs(_generators(n), _force_vector=True)
    rows = np.arange(n)
    cw = np.array([8, 16, 32, 64], dtype=np.int64)
    lanes.draw(rows, cw)
    clone = pickle.loads(pickle.dumps(lanes))
    assert clone.draw(rows, cw).tolist() == lanes.draw(rows, cw).tolist()
