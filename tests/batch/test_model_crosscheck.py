"""Cross-check: batch kernel vs the paper's analytical 1901 model.

Reuses the accuracy tolerances of ``benchmarks/bench_analysis_accuracy``
(collision-probability absolute error < 0.055, throughput relative
error < 0.06): if the kernel satisfies them wherever the FSM simulator
does, the two engines agree not just bit-wise on shared seeds but also
distributionally against an independent reference.
"""

import pytest

from repro.analysis import Model1901
from repro.batch import batch_simulate
from repro.core import ScenarioConfig
from repro.core.config import CsmaConfig, TimingConfig
from repro.core.results import aggregate
from repro.engine import RandomStreams

#: Same tolerances bench_analysis_accuracy enforces for the FSM.
COLLISION_ABS_TOL = 0.055
THROUGHPUT_REL_TOL = 0.06

SIM_TIME_US = 1e7
REPETITIONS = 2
SEED = 1


def _kernel_aggregate(n, config, timing):
    """Aggregate kernel reps seeded exactly like ``simulate()``."""
    scenario = ScenarioConfig.homogeneous(
        num_stations=n,
        csma=config,
        timing=timing,
        sim_time_us=SIM_TIME_US,
        seed=SEED,
    )
    root = RandomStreams(scenario.seed)
    streams = [root.spawn("rep", rep) for rep in range(REPETITIONS)]
    runs = batch_simulate([scenario] * REPETITIONS, streams=streams)
    return aggregate(runs)


@pytest.mark.parametrize("n", [2, 5, 10])
def test_kernel_matches_1901_model(n):
    config = CsmaConfig.default_1901()
    timing = TimingConfig()
    prediction = Model1901(config, timing).solve(n)
    agg = _kernel_aggregate(n, config, timing)
    assert agg.collision_probability == pytest.approx(
        prediction.collision_probability, abs=COLLISION_ABS_TOL
    )
    assert agg.normalized_throughput == pytest.approx(
        prediction.normalized_throughput, rel=THROUGHPUT_REL_TOL
    )


@pytest.mark.parametrize("n", [2, 5])
def test_kernel_matches_model_on_boosted_schedule(n):
    """The CA2/CA3-shaped boosted schedule from the paper's Table 1."""
    config = CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15))
    timing = TimingConfig()
    prediction = Model1901(config, timing).solve(n)
    agg = _kernel_aggregate(n, config, timing)
    assert agg.collision_probability == pytest.approx(
        prediction.collision_probability, abs=COLLISION_ABS_TOL
    )
    assert agg.normalized_throughput == pytest.approx(
        prediction.normalized_throughput, rel=THROUGHPUT_REL_TOL
    )
