"""BatchRunner: bit-equality with ExperimentRunner and cache interop."""

import pytest

from repro.core import ScenarioConfig
from repro.core.config import CsmaConfig, StationConfig
from repro.runner import (
    BatchRunner,
    ExperimentRunner,
    SeedSpec,
    Task,
    TaskKind,
)
from repro.runner.tasks import execute_task
from repro.runner.serialize import scenario_to_jsonable

SIM_TIME_US = 1e5


def _scenarios():
    return [
        ScenarioConfig.homogeneous(2, sim_time_us=SIM_TIME_US),
        ScenarioConfig.homogeneous(5, sim_time_us=SIM_TIME_US),
        ScenarioConfig.homogeneous(
            3,
            csma=CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)),
            sim_time_us=SIM_TIME_US,
        ),
    ]


def _unsupported():
    """A point the kernel refuses (unsaturated station)."""
    return ScenarioConfig(
        stations=(
            StationConfig(),
            StationConfig(arrival_rate_pps=50.0),
        ),
        sim_time_us=SIM_TIME_US,
    )


def test_batch_runner_matches_experiment_runner():
    scenarios = _scenarios()
    batch = BatchRunner().run_scenarios(
        scenarios, root_seed=5, repetitions=2
    )
    scalar = ExperimentRunner(max_workers=1).run_scenarios(
        scenarios, root_seed=5, repetitions=2
    )
    assert [
        [p.result for p in group] for group in batch
    ] == [
        [p.result for p in group] for group in scalar
    ]


def test_unsupported_points_fall_back_per_point():
    scenarios = _scenarios()[:1] + [_unsupported()]
    runner = BatchRunner()
    batch = runner.run_scenarios(scenarios, root_seed=2, repetitions=1)
    scalar = ExperimentRunner(max_workers=1).run_scenarios(
        scenarios, root_seed=2, repetitions=1
    )
    assert [
        [p.result for p in group] for group in batch
    ] == [
        [p.result for p in group] for group in scalar
    ]
    assert runner.counters.executed == 2


def test_cache_written_by_batch_serves_scalar(tmp_path):
    scenarios = _scenarios()
    batch = BatchRunner(cache_dir=tmp_path)
    batch.run_scenarios(scenarios, root_seed=9, repetitions=2)
    assert batch.counters.executed == 6

    warm = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
    warm.run_scenarios(scenarios, root_seed=9, repetitions=2)
    assert warm.counters.executed == 0
    assert warm.counters.cache_hits == 6


def test_cache_written_by_scalar_serves_batch(tmp_path):
    scenarios = _scenarios()
    scalar = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
    scalar.run_scenarios(scenarios, root_seed=9, repetitions=1)

    warm = BatchRunner(cache_dir=tmp_path)
    results = warm.run_scenarios(scenarios, root_seed=9, repetitions=1)
    assert warm.counters.executed == 0
    assert warm.counters.cache_hits == 3
    cold = BatchRunner().run_scenarios(scenarios, root_seed=9)
    assert [
        [p.result for p in group] for group in results
    ] == [
        [p.result for p in group] for group in cold
    ]


def test_partial_cache_mixes_hits_and_kernel_points(tmp_path):
    scenarios = _scenarios()
    first = BatchRunner(cache_dir=tmp_path)
    first.run_scenarios(scenarios[:1], root_seed=4, repetitions=1)

    second = BatchRunner(cache_dir=tmp_path)
    second.run_scenarios(scenarios, root_seed=4, repetitions=1)
    assert second.counters.cache_hits == 1
    assert second.counters.executed == 2


def test_chunking_does_not_change_results():
    scenarios = _scenarios()
    one = BatchRunner(chunk_size=1).run_scenarios(scenarios, root_seed=3)
    big = BatchRunner(chunk_size=1024).run_scenarios(scenarios, root_seed=3)
    assert [
        [p.result for p in group] for group in one
    ] == [
        [p.result for p in group] for group in big
    ]


def test_chunk_size_validated():
    with pytest.raises(ValueError, match="chunk_size"):
        BatchRunner(chunk_size=0)


def test_counters_track_totals():
    runner = BatchRunner()
    runner.run_scenarios(_scenarios(), root_seed=1, repetitions=2)
    assert runner.counters.points_total == 6
    assert runner.counters.executed == 6


# -- the SIMULATE_BATCH task kind ------------------------------------------
def test_simulate_batch_task_matches_scalar_tasks():
    scenarios = _scenarios()[:2]
    points = [
        {
            "scenario": scenario_to_jsonable(scenario),
            "seed": SeedSpec(
                root_seed=7, point_index=i, repetition=0
            ).as_jsonable(),
        }
        for i, scenario in enumerate(scenarios)
    ]
    batch_out = execute_task(
        Task(kind=TaskKind.SIMULATE_BATCH, payload={"points": points})
    )
    for point, got in zip(points, batch_out["points"]):
        want = execute_task(
            Task(
                kind=TaskKind.SIMULATE,
                payload={
                    "scenario": point["scenario"],
                    "record_winners": False,
                },
                seed=SeedSpec.from_jsonable(point["seed"]),
            )
        )
        assert got == want


def test_simulate_batch_rejects_record_winners():
    scenario = _scenarios()[0]
    with pytest.raises(ValueError, match="record_winners"):
        execute_task(
            Task(
                kind=TaskKind.SIMULATE_BATCH,
                payload={
                    "points": [
                        {
                            "scenario": scenario_to_jsonable(scenario),
                            "seed": SeedSpec().as_jsonable(),
                            "record_winners": True,
                        }
                    ]
                },
            )
        )
