"""The support-matrix property: what the gate admits, the kernel runs.

``check_supported`` / ``supports_scenario`` are the routing contract
between :class:`~repro.runner.batch.BatchRunner` and the kernel: every
scenario the gate admits must run on the kernel *bit-exactly* against
``SlotSimulator`` — including the retry-limit and unsaturated-arrival
families the gate admits since PR 7.  This suite locks the gate to the
kernel's actual capabilities, so reopening (or re-narrowing) the
matrix without updating the other side fails loudly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    batch_simulate,
    compare_round_records,
    kernel_round_records,
    slotsim_round_records,
    supports_scenario,
)
from repro.core import ScenarioConfig, SlotSimulator
from repro.core.config import CsmaConfig, StationConfig


@st.composite
def admitted_scenarios(draw):
    """Random scenarios drawn from the full ScenarioConfig space.

    Spans every family the gate rules on: saturated/unsaturated
    (homogeneous and mixed), finite/infinite retry limits,
    single/multi-stage schedules.
    """
    n = draw(st.integers(min_value=1, max_value=5))
    stations = []
    for _ in range(n):
        stages = draw(st.integers(min_value=1, max_value=3))
        cw = tuple(
            draw(st.integers(min_value=1, max_value=32))
            for _ in range(stages)
        )
        dc = tuple(
            draw(st.integers(min_value=0, max_value=7))
            for _ in range(stages)
        )
        retry_limit = draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=3))
        )
        rate = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=20.0, max_value=1_500.0),
            )
        )
        stations.append(
            StationConfig(
                csma=CsmaConfig(cw=cw, dc=dc, retry_limit=retry_limit),
                arrival_rate_pps=rate,
                queue_capacity=draw(st.integers(min_value=1, max_value=3)),
            )
        )
    sim_time_us = float(
        draw(st.integers(min_value=2_000, max_value=25_000))
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return ScenarioConfig(
        stations=tuple(stations), sim_time_us=sim_time_us, seed=seed
    )


@settings(deadline=None, max_examples=30)
@given(admitted_scenarios())
def test_every_admitted_scenario_is_bit_exact(scenario):
    """Gate admission implies per-round kernel/FSM bit-exactness."""
    assert supports_scenario(scenario), (
        "the gate rejected a scenario family this suite expects it to "
        "admit — update the support matrix docs/tests together"
    )
    scalar_records, _ = slotsim_round_records(scenario)
    batch_records, batch_results = kernel_round_records([scenario])
    assert compare_round_records(scalar_records, batch_records[0]) == []


@settings(deadline=None, max_examples=10)
@given(st.lists(admitted_scenarios(), min_size=2, max_size=4))
def test_admitted_mixed_batches_match_standalone_runs(scenarios):
    """Mixed support-matrix families in one batch stay independent."""
    batch = batch_simulate(scenarios)
    for scenario, got in zip(scenarios, batch):
        assert got == SlotSimulator(scenario).run()


def test_gate_admits_the_documented_matrix():
    """The docs' support-matrix rows, as executable claims."""
    rows = [
        # saturated, 1901 defaults
        ScenarioConfig.homogeneous(3, sim_time_us=1e5),
        # 802.11 schedule
        ScenarioConfig.homogeneous(
            2,
            csma=CsmaConfig.ieee80211(cw_min=16, max_stage=3),
            sim_time_us=1e5,
        ),
        # unsaturated Poisson arrivals
        ScenarioConfig.homogeneous(
            2, sim_time_us=1e5, arrival_rate_pps=100.0
        ),
        # finite retry limit
        ScenarioConfig.homogeneous(
            2, csma=CsmaConfig(retry_limit=3), sim_time_us=1e5
        ),
        # heterogeneous mix of all of the above
        ScenarioConfig(
            stations=(
                StationConfig(),
                StationConfig(
                    csma=CsmaConfig(retry_limit=2),
                    arrival_rate_pps=250.0,
                ),
            ),
            sim_time_us=1e5,
        ),
    ]
    for scenario in rows:
        assert supports_scenario(scenario)
