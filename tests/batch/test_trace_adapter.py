"""Per-round trace adapter: kernel and FSM speak the same language."""

import dataclasses

from repro.batch import (
    RoundRecord,
    compare_round_records,
    kernel_round_records,
    slotsim_round_records,
)
from repro.core import ScenarioConfig
from repro.core.config import CsmaConfig

SCENARIOS = [
    ScenarioConfig.homogeneous(2, sim_time_us=1e5, seed=41),
    ScenarioConfig.homogeneous(4, sim_time_us=1e5, seed=42),
    ScenarioConfig.homogeneous(
        3,
        csma=CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)),
        sim_time_us=1e5,
        seed=43,
    ),
]


def test_round_records_bit_exact_per_point():
    batch_records, batch_results = kernel_round_records(SCENARIOS)
    for b, scenario in enumerate(SCENARIOS):
        scalar_records, scalar_result = slotsim_round_records(scenario)
        problems = compare_round_records(scalar_records, batch_records[b])
        assert problems == [], "\n".join(problems)
        assert batch_results[b].successes == scalar_result.successes
        assert batch_results[b].collisions == scalar_result.collisions


def test_record_fields_are_consistent():
    records, _ = slotsim_round_records(SCENARIOS[1])
    assert records, "expected at least one round"
    outcomes = {r.outcome for r in records}
    assert outcomes <= {"idle", "success", "collision"}
    for r in records:
        if r.outcome == "idle":
            assert r.stations == () and r.winner is None
        elif r.outcome == "success":
            assert len(r.stations) == 1 and r.winner == r.stations[0]
        else:
            assert len(r.stations) >= 2 and r.winner is None
        assert len(r.per_station) == SCENARIOS[1].num_stations
        assert r.stages == tuple(
            r.per_station[i][0] for i in r.stations
        )
    # Every outcome class actually occurs on this horizon.
    assert outcomes == {"idle", "success", "collision"}


def test_compare_reports_first_differing_field():
    records, _ = slotsim_round_records(SCENARIOS[0])
    mutated = list(records)
    mutated[3] = dataclasses.replace(mutated[3], outcome="collision")
    problems = compare_round_records(records, mutated)
    assert len(problems) == 1
    assert problems[0].startswith("round 3: outcome")


def test_compare_reports_length_mismatch():
    records, _ = slotsim_round_records(SCENARIOS[0])
    problems = compare_round_records(records, records[:-2])
    assert any("round count" in p for p in problems)


def test_compare_truncates_at_limit():
    records, _ = slotsim_round_records(SCENARIOS[0])
    mutated = [
        dataclasses.replace(r, time_us=r.time_us + 1.0) for r in records
    ]
    problems = compare_round_records(records, mutated, limit=3)
    assert problems[-1] == "..."
    assert len(problems) == 4


def test_identical_sequences_compare_clean():
    records, _ = slotsim_round_records(SCENARIOS[2])
    assert compare_round_records(records, list(records)) == []


def test_round_record_is_hashable_value_object():
    r = RoundRecord(
        time_us=0.0,
        outcome="idle",
        stations=(),
        winner=None,
        stages=(),
        per_station=((0, 8, 0, 3),),
    )
    assert r == dataclasses.replace(r)
    assert hash(r) == hash(dataclasses.replace(r))
