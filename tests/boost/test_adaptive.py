"""Tests for recommendations and the boost report."""

import pytest

from repro.boost.adaptive import boost_report, recommend_for_n, recommend_robust
from repro.boost.search import single_stage_family
from repro.core.config import CsmaConfig


def test_recommend_for_n_beats_default():
    from repro.analysis.model import Model1901

    n = 20
    best = recommend_for_n(n, candidates=single_stage_family())
    default = Model1901().normalized_throughput(n)
    assert best.throughput_curve[0] > default


def test_recommend_robust_returns_candidate():
    best = recommend_robust([2, 10], candidates=single_stage_family())
    assert best.config.cw  # a real config
    assert best.score > 0


def test_boost_report_structure():
    boosted, rows = boost_report(
        [2, 10], boosted=CsmaConfig(cw=(32,), dc=(0,))
    )
    assert boosted.cw == (32,)
    assert [r.num_stations for r in rows] == [2, 10]
    for row in rows:
        assert row.upper_bound >= row.boosted_throughput - 1e-9
        assert row.upper_bound >= row.default_throughput - 1e-9


def test_boost_report_gain_positive_at_large_n():
    _boosted, rows = boost_report([20], boosted=CsmaConfig(cw=(64,), dc=(0,)))
    assert rows[0].gain_percent > 0


def test_gain_percent_definition():
    _boosted, rows = boost_report([5], boosted=CsmaConfig.default_1901())
    # Boosting with the default itself: zero gain.
    assert rows[0].gain_percent == pytest.approx(0.0, abs=1e-9)
