"""Tests for the closed-form window-sizing asymptotics."""

import pytest

from repro.analysis.model import Model1901
from repro.boost.asymptotics import (
    collision_cost_slots,
    optimal_single_stage_cw,
    optimal_tau_asymptotic,
)
from repro.boost.objectives import optimal_tau
from repro.core.config import CsmaConfig, TimingConfig


class TestAsymptoticTau:
    def test_matches_numeric_optimum_at_large_n(self):
        timing = TimingConfig()
        for n in (10, 20, 40):
            asymptotic = optimal_tau_asymptotic(n, timing)
            numeric = optimal_tau(n, timing)
            assert asymptotic == pytest.approx(numeric, rel=0.15)

    def test_scales_as_inverse_n(self):
        timing = TimingConfig()
        assert optimal_tau_asymptotic(10, timing) == pytest.approx(
            2 * optimal_tau_asymptotic(20, timing)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_tau_asymptotic(0, TimingConfig())


class TestOptimalWindow:
    def test_grows_linearly_with_n(self):
        timing = TimingConfig()
        w10 = optimal_single_stage_cw(10, timing)
        w20 = optimal_single_stage_cw(20, timing)
        assert w20 == pytest.approx(2 * w10, rel=0.1)

    def test_formula_window_is_near_optimal(self):
        """A fixed-window protocol (non-expiring DC, so τ = 2/(W+1))
        at W*(N) must come within 1% of the best such protocol found
        numerically."""
        timing = TimingConfig()
        n = 15
        w_star = optimal_single_stage_cw(n, timing)

        def throughput(w):
            model = Model1901(
                CsmaConfig(cw=(w,), dc=(w,)), timing, method="recursive"
            )
            return model.normalized_throughput(n)

        best = max(
            throughput(w) for w in range(max(2, w_star // 2), w_star * 2, 8)
        )
        assert throughput(w_star) > 0.99 * best

    def test_redraw_on_busy_lowers_attempt_rate(self):
        """The documented subtlety: dc=0 single-stage schedules redraw
        BC on busy slots, discarding countdown progress, and therefore
        attempt *less* under load than the frozen-DC variant."""
        from repro.analysis.recursive import RecursiveModel

        redraw = RecursiveModel(CsmaConfig(cw=(64,), dc=(0,)))
        frozen = RecursiveModel(CsmaConfig(cw=(64,), dc=(64,)))
        assert redraw.tau(0.0) == pytest.approx(frozen.tau(0.0))
        assert redraw.tau(0.5) < frozen.tau(0.5)
        # Frozen-DC τ is load independent: exactly 2/(W+1).
        assert frozen.tau(0.5) == pytest.approx(2 / 65)

    def test_collision_cost_slots(self):
        timing = TimingConfig()
        assert collision_cost_slots(timing) == pytest.approx(
            2542.64 / 35.84
        )

    def test_minimum_window(self):
        # Even at N=1 the formula returns a usable window.
        assert optimal_single_stage_cw(1, TimingConfig()) >= 2
