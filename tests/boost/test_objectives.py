"""Tests for boosting objectives and the throughput upper bound."""

import numpy as np
import pytest

from repro.analysis.throughput import network_prediction
from repro.boost.objectives import (
    mean_throughput,
    optimal_tau,
    throughput_at_n,
    throughput_upper_bound,
    worst_case_throughput,
)
from repro.core.config import TimingConfig


class TestOptimalTau:
    def test_is_a_maximum(self):
        timing = TimingConfig()
        n = 10
        tau_star = optimal_tau(n, timing)
        best = network_prediction(tau_star, n, timing).normalized_throughput
        for delta in (-0.01, 0.01):
            tau = min(max(tau_star + delta, 1e-6), 1 - 1e-6)
            other = network_prediction(tau, n, timing).normalized_throughput
            assert best >= other - 1e-9

    def test_decreases_with_n(self):
        timing = TimingConfig()
        taus = [optimal_tau(n, timing) for n in (2, 5, 10, 20)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_scales_roughly_as_inverse_n(self):
        timing = TimingConfig()
        t10, t20 = optimal_tau(10, timing), optimal_tau(20, timing)
        assert t10 / t20 == pytest.approx(2.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_tau(0, TimingConfig())


class TestUpperBound:
    def test_bound_dominates_default_protocol(self):
        from repro.analysis.model import Model1901

        timing = TimingConfig()
        model = Model1901()
        for n in (2, 5, 15):
            bound = throughput_upper_bound(n, timing)
            assert bound >= model.normalized_throughput(n) - 1e-9

    def test_bound_nearly_flat_in_n(self):
        timing = TimingConfig()
        bounds = [throughput_upper_bound(n, timing) for n in (5, 10, 30)]
        assert max(bounds) - min(bounds) < 0.02


class TestObjectives:
    def test_throughput_at_n(self):
        objective = throughput_at_n(5)
        assert objective.station_counts == (5,)
        assert objective.evaluate(np.array([0.6])) == pytest.approx(0.6)

    def test_worst_case(self):
        objective = worst_case_throughput([2, 5, 10])
        assert objective.evaluate(np.array([0.6, 0.5, 0.55])) == 0.5

    def test_mean(self):
        objective = mean_throughput([2, 5])
        assert objective.evaluate(np.array([0.6, 0.4])) == pytest.approx(0.5)
