"""Tests for candidate families and the configuration search."""

import pytest

from repro.boost.objectives import throughput_at_n, worst_case_throughput
from repro.boost.search import (
    default_candidates,
    deferral_family,
    evaluate_candidate,
    search,
    single_stage_family,
    standard_family,
    validate_by_simulation,
)
from repro.core.config import CsmaConfig


class TestFamilies:
    def test_standard_family_shapes(self):
        configs = standard_family()
        assert configs
        for config in configs:
            assert config.num_stages == 4
            assert len(config.cw) == len(config.dc)

    def test_single_stage_family(self):
        configs = single_stage_family((8, 16))
        assert [c.cw for c in configs] == [(8,), (16,)]
        assert all(c.dc == (0,) for c in configs)

    def test_deferral_family_constant_windows(self):
        for config in deferral_family(cw_values=(8,)):
            assert len(set(config.cw)) == 1

    def test_default_candidates_unique(self):
        configs = default_candidates()
        keys = [(c.cw, c.dc) for c in configs]
        assert len(keys) == len(set(keys))
        assert any(
            c.cw == (8, 16, 32, 64) and c.dc == (0, 1, 3, 15)
            for c in configs
        )  # the standard config is always in the pool


class TestSearch:
    def test_evaluate_candidate_fields(self):
        score = evaluate_candidate(
            CsmaConfig.default_1901(), throughput_at_n(5)
        )
        assert len(score.throughput_curve) == 1
        assert len(score.collision_curve) == 1
        assert score.score == pytest.approx(score.throughput_curve[0])

    def test_search_returns_sorted(self):
        candidates = single_stage_family((4, 16, 64, 256))
        scores = search(candidates, throughput_at_n(10), top=4)
        values = [s.score for s in scores]
        assert values == sorted(values, reverse=True)

    def test_search_top_limits(self):
        candidates = single_stage_family((4, 16, 64))
        assert len(search(candidates, throughput_at_n(5), top=2)) == 2

    def test_best_single_stage_tracks_n(self):
        """At large N a larger fixed CW must win; at tiny N a small one."""
        candidates = single_stage_family((4, 8, 16, 32, 64, 128, 256))
        best_small = search(candidates, throughput_at_n(2), top=1)[0]
        best_large = search(candidates, throughput_at_n(30), top=1)[0]
        assert best_large.config.cw[0] > best_small.config.cw[0]

    def test_robust_search_beats_default_at_large_n(self):
        counts = (5, 10, 20)
        best = search(
            default_candidates(), worst_case_throughput(counts), top=1
        )[0]
        default = evaluate_candidate(
            CsmaConfig.default_1901(), worst_case_throughput(counts)
        )
        assert best.score > default.score


class TestSimulationValidation:
    def test_validate_by_simulation_rows(self):
        score = evaluate_candidate(
            CsmaConfig.default_1901(), throughput_at_n(3)
        )
        rows = validate_by_simulation(
            score, [3], sim_time_us=5e6, repetitions=2
        )
        assert len(rows) == 1
        n, throughput, collision_pr = rows[0]
        assert n == 3
        assert throughput == pytest.approx(
            score.throughput_curve[0], rel=0.08
        )
        assert 0 <= collision_pr <= 1
