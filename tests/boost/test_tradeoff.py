"""Tests for the CW/DC tradeoff ablations."""

import pytest

from repro.boost.tradeoff import (
    cw_sweep,
    dc_sweep,
    deferral_ablation,
    disable_deferral,
    scale_deferral,
)
from repro.core.config import CsmaConfig


class TestScaleDeferral:
    def test_identity_factor(self):
        config = CsmaConfig.default_1901()
        assert scale_deferral(config, 1.0).dc == config.dc

    def test_zero_factor_all_zero(self):
        assert scale_deferral(CsmaConfig.default_1901(), 0.0).dc == (
            0, 0, 0, 0,
        )

    def test_doubling(self):
        assert scale_deferral(CsmaConfig.default_1901(), 2.0).dc == (
            0, 2, 6, 30,
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            scale_deferral(CsmaConfig.default_1901(), -1.0)

    def test_windows_untouched(self):
        config = CsmaConfig.default_1901()
        assert scale_deferral(config, 3.0).cw == config.cw


class TestDisableDeferral:
    def test_counters_unreachable(self):
        config = disable_deferral(CsmaConfig.default_1901())
        assert config.dc == config.cw

    def test_simulation_shows_no_jumps(self):
        from repro.core import ScenarioConfig, SlotSimulator

        scenario = ScenarioConfig.homogeneous(
            num_stations=4,
            csma=disable_deferral(CsmaConfig.default_1901()),
            sim_time_us=5e6,
            seed=2,
        )
        result = SlotSimulator(scenario).run()
        assert sum(s.jumps for s in result.stations) == 0

    def test_default_config_does_jump(self):
        from repro.core import ScenarioConfig, SlotSimulator

        scenario = ScenarioConfig.homogeneous(
            num_stations=4, sim_time_us=5e6, seed=2
        )
        result = SlotSimulator(scenario).run()
        assert sum(s.jumps for s in result.stations) > 0


class TestSweeps:
    def test_cw_sweep_tradeoff_direction(self):
        points = cw_sweep(station_counts=(10,), cw_values=(4, 256))
        small, large = points[0], points[1]
        assert small.collision_probability > large.collision_probability

    def test_cw_sweep_has_interior_optimum(self):
        points = cw_sweep(
            station_counts=(10,), cw_values=(4, 8, 16, 32, 64, 128, 256)
        )
        throughputs = [p.normalized_throughput for p in points]
        best = max(range(len(throughputs)), key=throughputs.__getitem__)
        assert 0 < best < len(throughputs) - 1  # not at either extreme

    def test_dc_sweep_labels_and_sizes(self):
        points = dc_sweep(station_counts=(2, 5), factors=(0.0, 1.0))
        assert len(points) == 4
        assert {p.label for p in points} == {"dc×0", "dc×1"}

    def test_deferral_ablation_shows_dc_helps_at_large_n(self):
        points = deferral_ablation(station_counts=(20,))
        with_dc = next(p for p in points if "with DC" in p.label)
        without = next(p for p in points if "no DC" in p.label)
        # The deferral counter reduces collisions markedly.
        assert (
            with_dc.collision_probability < without.collision_probability
        )
