"""Station churn edge cases (under the invariant checker, always green).

The three scenarios the issue calls out:

- the **last** contending station leaves gracefully mid-run — the
  coordinator must idle cleanly instead of resolving PRS with zero
  contenders;
- a station **joins while another is transmitting** — association and
  first contention happen against a busy medium;
- a station **crash-leaves while it may hold the medium** — saturated
  traffic keeps the air occupied, so the yank lands mid-round and the
  coordinator's detached guards must absorb the in-flight state.
"""

from repro.chaos.experiment import attach_chaos
from repro.chaos.plan import ChaosPlan
from repro.experiments.testbed import build_testbed
from repro.traffic.packets import mac_address

WARMUP_US = 0.5e6
EVENT_US = 1.5e6
END_US = 3.0e6


def _run(num_stations, churn, seed=2):
    testbed = build_testbed(num_stations, seed=seed)
    plan = ChaosPlan(churn=churn, invariants="raise")
    injector, checker, _probe = attach_chaos(testbed, plan)
    testbed.run_until(WARMUP_US)
    assert testbed.avln.all_associated
    testbed.run_until(END_US)
    injector.flush()
    return testbed, injector, checker


class TestLastStationLeaves:
    def test_graceful_leave_of_only_station(self):
        testbed, injector, checker = _run(
            1, ({"time_us": EVENT_US, "action": "leave"},)
        )
        assert injector.leaves == 1
        assert testbed.stations == []
        # Only the destination/CCo remains attached.
        assert [d.mac_addr for d in testbed.avln.devices] == [
            testbed.destination.mac_addr
        ]
        # The engine ran to the end with zero contenders and the MAC
        # state stayed legal throughout.
        assert testbed.env.now >= END_US
        assert checker.finalize()["green"]

    def test_medium_usable_after_rejoin(self):
        """The coordinator survives an empty-AVLN phase: a later join
        contends and delivers as if the network were fresh."""
        testbed, injector, checker = _run(
            1,
            (
                {"time_us": 1.0e6, "action": "leave"},
                {"time_us": 2.0e6, "action": "join"},
            ),
        )
        assert injector.leaves == 1
        assert injector.joins == 1
        assert len(testbed.stations) == 1
        testbed.reset_data_stats()
        testbed.run_until(END_US + 1.0e6)
        (mac, acked, _collided), = testbed.read_data_stats()
        assert mac == mac_address(200)
        assert acked > 0
        assert checker.finalize()["green"]


class TestJoinDuringTransmission:
    def test_join_against_saturated_medium(self):
        testbed, injector, checker = _run(
            2, ({"time_us": EVENT_US, "action": "join"},), seed=3
        )
        assert injector.joins == 1
        assert len(testbed.stations) == 3
        # The joiner associated and moved real data to D.
        rows = {mac: acked for mac, acked, _ in testbed.read_data_stats()}
        assert rows[mac_address(200)] > 0
        assert checker.finalize()["green"]


class TestCrashLeave:
    def test_crash_leave_under_saturation(self):
        testbed, injector, checker = _run(
            2, ({"time_us": EVENT_US, "action": "crash_leave"},), seed=4
        )
        assert injector.crash_leaves == 1
        assert len(testbed.stations) == 1
        # The survivor keeps delivering after the yank.
        testbed.reset_data_stats()
        testbed.run_until(END_US + 1.0e6)
        (_mac, acked, _collided), = testbed.read_data_stats()
        assert acked > 0
        assert checker.finalize()["green"]

    def test_churned_membership_reflected_in_ledger(self):
        testbed, injector, checker = _run(
            2,
            (
                {
                    "time_us": 1.0e6,
                    "action": "join",
                    "crash": True,
                    "leave_at_us": 2.0e6,
                },
            ),
            seed=5,
        )
        assert injector.joins == 1
        assert injector.crash_leaves == 1
        assert len(testbed.stations) == 2
        assert checker.finalize()["green"]
