"""Channel impairment models: statistics, windows, composition."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.impairments import (
    AsymmetricLinkQuality,
    ComposedErrorModel,
    GilbertElliottPbErrors,
    ImpulsiveNoiseBursts,
)
from repro.core.parameters import PriorityClass
from repro.phy.channel import BernoulliPbErrors
from repro.phy.framing import Mpdu, PhysicalBlock


def _mpdu(num_blocks=4, source_tei=1):
    return Mpdu(
        source_tei=source_tei,
        dest_tei=2,
        priority=PriorityClass.CA1,
        blocks=tuple(
            PhysicalBlock(frame_id=0, offset=i * 512, fill=512)
            for i in range(num_blocks)
        ),
    )


class TestGilbertElliott:
    def test_stationary_rate_closed_form(self):
        model = GilbertElliottPbErrors(
            0.1, 0.3, 0.0, 1.0, np.random.default_rng(0)
        )
        assert model.stationary_bad_probability == pytest.approx(0.25)
        assert model.stationary_error_rate == pytest.approx(0.25)
        assert model.correlation == pytest.approx(0.6)

    @given(
        p_gb=st.floats(0.05, 0.5),
        p_bg=st.floats(0.05, 0.5),
        error_bad=st.floats(0.2, 1.0),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_empirical_rate_matches_stationary_distribution(
        self, p_gb, p_bg, error_bad, seed
    ):
        """The long-run PB error rate is pinned to π_g·e_g + π_b·e_b.

        The tolerance accounts for the burstiness: over n blocks the
        empirical rate has variance ≈ r(1−r)·(1+ρ)/(1−ρ)/n, inflated
        relative to i.i.d. sampling by the lag-1 state correlation ρ.
        Six standard deviations keeps the test deterministic-grade
        (false-failure odds ≈ 1e-9 per example).
        """
        model = GilbertElliottPbErrors(
            p_gb, p_bg, 0.0, error_bad, np.random.default_rng(seed)
        )
        n = 40_000
        flags = model.sample_flags(n)
        empirical = sum(flags) / n
        rate = model.stationary_error_rate
        rho = model.correlation
        sigma = math.sqrt(rate * (1 - rate) * (1 + rho) / (1 - rho) / n)
        # Small absolute floor absorbs the burn-in bias of starting in
        # the good state (mixing time ≤ 1/(p_gb+p_bg) ≤ 10 blocks).
        assert abs(empirical - rate) < 6 * sigma + 1e-3

    def test_window_gating_freezes_state_and_errors(self):
        model = GilbertElliottPbErrors(
            0.5, 0.5, 1.0, 1.0, np.random.default_rng(0),
            start_us=100.0, end_us=200.0,
        )
        before = model.pb_error_flags(_mpdu(), time_us=50.0)
        assert before == [False] * 4
        assert model.pbs_seen == 0

        inside = model.pb_error_flags(_mpdu(), time_us=150.0)
        assert inside == [True] * 4
        assert model.pbs_seen == 4
        assert model.pbs_errored == 4

        after = model.pb_error_flags(_mpdu(), time_us=200.0)
        assert after == [False] * 4
        assert model.pbs_seen == 4

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="p_good_to_bad"):
            GilbertElliottPbErrors(1.5, 0.5, 0.0, 1.0, rng)
        with pytest.raises(ValueError, match="absorbing"):
            GilbertElliottPbErrors(0.0, 0.0, 0.0, 1.0, rng)
        with pytest.raises(ValueError, match="error_bad"):
            GilbertElliottPbErrors(0.1, 0.1, 0.0, -0.2, rng)

    def test_seeded_replay_is_bit_identical(self):
        a = GilbertElliottPbErrors(
            0.1, 0.3, 0.05, 0.8, np.random.default_rng(7)
        )
        b = GilbertElliottPbErrors(
            0.1, 0.3, 0.05, 0.8, np.random.default_rng(7)
        )
        assert a.sample_flags(500) == b.sample_flags(500)


class TestImpulsiveNoise:
    def test_window_probability_combines_by_max(self):
        model = ImpulsiveNoiseBursts(
            [(100.0, 50.0, 0.2), (120.0, 100.0, 0.9)],
            np.random.default_rng(0),
        )
        assert model.error_probability_at(50.0) == 0.0
        assert model.error_probability_at(110.0) == 0.2
        assert model.error_probability_at(130.0) == 0.9
        assert model.error_probability_at(180.0) == 0.9
        assert model.error_probability_at(220.0) == 0.0

    def test_certain_window_errors_every_block(self):
        model = ImpulsiveNoiseBursts(
            [(0.0, 100.0, 1.0)], np.random.default_rng(0)
        )
        assert model.pb_error_flags(_mpdu(6), time_us=10.0) == [True] * 6
        assert model.pbs_errored == 6
        assert model.pb_error_flags(_mpdu(6), time_us=200.0) == [False] * 6

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duration"):
            ImpulsiveNoiseBursts([(0.0, 0.0, 0.5)], rng)
        with pytest.raises(ValueError, match="error_probability"):
            ImpulsiveNoiseBursts([(0.0, 10.0, 1.5)], rng)


class TestAsymmetricLinks:
    def test_mapping_targets_one_source(self):
        model = AsymmetricLinkQuality({1: 1.0}, np.random.default_rng(0))
        assert model.pb_error_flags(_mpdu(source_tei=1)) == [True] * 4
        assert model.pb_error_flags(_mpdu(source_tei=2)) == [False] * 4

    def test_callable_resolves_per_lookup(self):
        table = {}
        model = AsymmetricLinkQuality(
            lambda tei: table.get(tei, 0.0), np.random.default_rng(0)
        )
        assert model.pb_error_flags(_mpdu(source_tei=3)) == [False] * 4
        table[3] = 1.0  # late assignment, as TEIs are at association
        assert model.pb_error_flags(_mpdu(source_tei=3)) == [True] * 4

    def test_validation(self):
        with pytest.raises(ValueError, match="link error probability"):
            AsymmetricLinkQuality({1: 2.0}, np.random.default_rng(0))


class TestComposedModel:
    def test_or_composition(self):
        clean = ImpulsiveNoiseBursts([], np.random.default_rng(0))
        noisy = ImpulsiveNoiseBursts(
            [(0.0, 100.0, 1.0)], np.random.default_rng(0)
        )
        model = ComposedErrorModel([clean, noisy])
        assert model.pb_error_flags(_mpdu(), time_us=10.0) == [True] * 4
        assert model.pb_error_flags(_mpdu(), time_us=500.0) == [False] * 4

    def test_composes_with_stock_time_blind_models(self):
        stock = BernoulliPbErrors(1.0, rng=np.random.default_rng(0))
        model = ComposedErrorModel(
            [stock, ImpulsiveNoiseBursts([], np.random.default_rng(0))]
        )
        assert model.pb_error_flags(_mpdu(), time_us=0.0) == [True] * 4

    def test_every_component_consulted(self):
        """Stateful components keep evolving even when another already
        errored the block (determinism across compositions)."""
        ge = GilbertElliottPbErrors(
            0.5, 0.5, 0.0, 0.5, np.random.default_rng(1)
        )
        always = ImpulsiveNoiseBursts(
            [(0.0, 1e9, 1.0)], np.random.default_rng(0)
        )
        model = ComposedErrorModel([always, ge])
        model.pb_error_flags(_mpdu(8), time_us=0.0)
        assert ge.pbs_seen == 8

    def test_needs_at_least_one_model(self):
        with pytest.raises(ValueError):
            ComposedErrorModel([])
