"""InvariantChecker: policies, per-event checks, deep sweeps, airtime."""

import pytest

from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.obs.registry import MetricsRegistry


class _FakeLog:
    def __init__(self):
        self.airtime_by_source = {}


class _FakeCoordinator:
    def __init__(self):
        self.log = _FakeLog()


class _FakeStation:
    def __init__(self, problems=()):
        self.problems = list(problems)

    def check_invariants(self):
        return list(self.problems)


class _FakeNode:
    def __init__(self, stations=None):
        self._stations = dict(stations or {})

    def stations(self):
        return self._stations


def _stage_event(cw=8, bc=3, dc=1, t=10.0, station=0):
    return {
        "event": "backoff_stage",
        "t_us": t,
        "station": station,
        "cw": cw,
        "bc": bc,
        "dc": dc,
    }


class TestPolicies:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            InvariantChecker(policy="ignore")
        with pytest.raises(ValueError, match="deep_every"):
            InvariantChecker(deep_every=-1)

    def test_raise_aborts_with_context(self):
        checker = InvariantChecker(policy="raise", deep_every=0)
        with pytest.raises(InvariantViolation) as excinfo:
            checker(_stage_event(cw=8, bc=9, t=42.0))
        assert excinfo.value.check == "backoff_bc"
        assert excinfo.value.time_us == 42.0
        assert not checker.green

    def test_log_stores_descriptions_and_continues(self):
        checker = InvariantChecker(policy="log", deep_every=0)
        checker(_stage_event(bc=-1))
        checker(_stage_event())  # healthy event after the violation
        assert checker.violation_count == 1
        assert len(checker.violations) == 1
        assert "backoff_bc" in checker.violations[0]
        assert not checker.green

    def test_count_only_counts(self):
        checker = InvariantChecker(policy="count", deep_every=0)
        checker(_stage_event(dc=-2))
        assert checker.violation_count == 1
        assert checker.violations == []

    def test_registry_counter_labelled_by_check(self):
        registry = MetricsRegistry()
        checker = InvariantChecker(
            policy="count", deep_every=0, registry=registry
        )
        checker(_stage_event(bc=-1))
        checker(_stage_event(cw=0, bc=0))
        counter = registry.counter(
            "chaos_invariant_violations_total", labelnames=("check",)
        )
        assert counter.value(check="backoff_bc") == 1.0
        assert counter.value(check="backoff_cw") == 1.0


class TestPerEventChecks:
    def _violations(self, *events):
        checker = InvariantChecker(policy="count", deep_every=0)
        for event in events:
            checker(event)
        return checker.violation_count

    def test_healthy_stream_stays_green(self):
        checker = InvariantChecker(policy="raise", deep_every=0)
        checker(_stage_event())
        checker({"event": "defer", "t_us": 1.0, "bc": 2, "dc": 0})
        checker({"event": "dc_jump", "t_us": 2.0, "bpc": 1, "bc": 3})
        checker(
            {
                "event": "slot",
                "t_us": 3.0,
                "outcome": "success",
                "sources": (1,),
            }
        )
        checker(
            {
                "event": "slot",
                "t_us": 4.0,
                "outcome": "collision",
                "sources": (1, 2),
            }
        )
        checker(
            {
                "event": "airtime",
                "t_us": 5.0,
                "source_tei": 1,
                "airtime_us": 100.0,
            }
        )
        assert checker.green
        assert checker.events_seen == 6

    def test_negative_defer_counters(self):
        assert (
            self._violations({"event": "defer", "bc": -1, "dc": 0}) == 1
        )

    def test_dc_jump_requires_bpc_and_live_bc(self):
        assert self._violations({"event": "dc_jump", "bpc": 0, "bc": 3}) == 1
        assert self._violations({"event": "dc_jump", "bpc": 2, "bc": 0}) == 1

    def test_two_winners_is_a_violation(self):
        assert (
            self._violations(
                {"event": "slot", "outcome": "success", "sources": (1, 2)}
            )
            == 1
        )

    def test_single_source_collision_is_a_violation(self):
        assert (
            self._violations(
                {"event": "slot", "outcome": "collision", "sources": (1,)}
            )
            == 1
        )

    def test_nonpositive_airtime(self):
        assert (
            self._violations(
                {"event": "airtime", "source_tei": 1, "airtime_us": 0.0}
            )
            == 1
        )


class TestDeepSweep:
    def test_periodic_sweep_cadence(self):
        checker = InvariantChecker(policy="raise", deep_every=4)
        for _ in range(12):
            checker(_stage_event())
        assert checker.deep_sweeps == 3

    def test_station_fsm_problems_surface(self):
        checker = InvariantChecker(policy="count", deep_every=0)
        checker.watch(
            nodes=[_FakeNode({1: _FakeStation(["BC went negative"])})]
        )
        checker.deep_sweep()
        assert checker.violation_count == 1

    def test_finalize_always_sweeps_once(self):
        checker = InvariantChecker(policy="raise", deep_every=0)
        summary = checker.finalize()
        assert summary["deep_sweeps"] == 1
        assert summary["green"]


class TestAirtimeConservation:
    def _airtime(self, tei, amount, t=1.0):
        return {
            "event": "airtime",
            "t_us": t,
            "source_tei": tei,
            "airtime_us": amount,
        }

    def test_matching_ledger_is_green(self):
        coordinator = _FakeCoordinator()
        coordinator.log.airtime_by_source = {1: 500.0}  # pre-watch history
        checker = InvariantChecker(policy="raise", deep_every=0)
        checker.watch(coordinator=coordinator)
        checker(self._airtime(1, 100.0))
        coordinator.log.airtime_by_source[1] = 600.0
        checker.deep_sweep()
        assert checker.green

    def test_ledger_drift_detected(self):
        coordinator = _FakeCoordinator()
        checker = InvariantChecker(policy="count", deep_every=0)
        checker.watch(coordinator=coordinator)
        checker(self._airtime(2, 100.0))
        coordinator.log.airtime_by_source[2] = 250.0  # duplicated booking
        checker.deep_sweep()
        assert checker.violation_count == 1

    def test_ledger_reset_reanchors_instead_of_phantom_violation(self):
        coordinator = _FakeCoordinator()
        coordinator.log.airtime_by_source = {1: 900.0}
        checker = InvariantChecker(policy="raise", deep_every=0)
        checker.watch(coordinator=coordinator)
        checker(self._airtime(1, 50.0))
        # Warmup cut: the RoundLog restarts from the post-reset booking.
        coordinator.log.airtime_by_source = {1: 50.0}
        checker.deep_sweep()
        assert checker.green
        # Accounting continues against the new anchor.
        checker(self._airtime(1, 25.0))
        coordinator.log.airtime_by_source[1] = 75.0
        checker.deep_sweep()
        assert checker.green
