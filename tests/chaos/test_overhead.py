"""Locks in the invariant checker's <10 % overhead on a fixed point.

Direct with/without wall-clock comparison is noisy on shared CI
hardware, so (following ``tests/obs/test_overhead.py``) the bound is
established deterministically:

1. run the fixed point uninstrumented and time it (the baseline);
2. run it again instrumented, recording every probe event the checker
   would see;
3. *replay* the recorded stream through a fresh checker (deep sweeps
   included, at the production cadence) and time exactly that — the
   replay time IS the checker's added cost, with zero simulation noise
   mixed in;
4. assert replay < 10 % of baseline.

The instrumented run doubles as a perturbation check: subscribing the
checker must not change the simulated outcome at all.
"""

import time

from repro.chaos.invariants import InvariantChecker
from repro.experiments.procedures import run_collision_test
from repro.experiments.testbed import build_testbed
from repro.obs import instrument_testbed

STATIONS = 3
DURATION_US = 2e6
SEED = 1
DEEP_EVERY = 256


def _run_point(recording: bool):
    testbed = build_testbed(STATIONS, seed=SEED)
    events = []
    if recording:
        probe = instrument_testbed(testbed)
        probe.subscribe(lambda event: events.append(dict(event)))
    started = time.perf_counter()
    test = run_collision_test(
        STATIONS, duration_us=DURATION_US, seed=SEED, testbed=testbed
    )
    return time.perf_counter() - started, events, test, testbed


def test_checker_overhead_under_10_percent():
    baseline_s, _, bare, _ = _run_point(recording=False)
    _, events, observed, testbed = _run_point(recording=True)
    assert len(events) > 1000, "fixed point emitted suspiciously few events"

    # Watching the real station FSMs makes the deep sweeps representative;
    # the coordinator ledger is left unwatched because a post-hoc replay
    # has no live ledger to conserve against.
    checker = InvariantChecker(policy="count", deep_every=DEEP_EVERY)
    checker.watch(nodes=[device.node for device in testbed.avln.devices])
    started = time.perf_counter()
    for event in events:
        checker(event)
    replay_s = time.perf_counter() - started

    assert checker.events_seen == len(events)
    assert checker.deep_sweeps == len(events) // DEEP_EVERY
    assert replay_s < 0.10 * baseline_s, (
        f"checker took {replay_s*1e3:.1f} ms over {len(events)} events "
        f"({checker.deep_sweeps} deep sweeps), which exceeds 10% of the "
        f"{baseline_s*1e3:.0f} ms baseline"
    )

    # Checking must never perturb the simulation itself.
    assert observed.per_station == bare.per_station
    assert observed.collision_probability == bare.collision_probability
    assert observed.goodput_mbps == bare.goodput_mbps


def test_checker_subscription_does_not_perturb_results():
    """End-to-end variant: an inert plan + live checker on the probe bus
    leaves the §3.2 numbers bit-identical."""
    from repro.chaos.experiment import chaos_collision_test
    from repro.chaos.plan import ChaosPlan

    bare = run_collision_test(STATIONS, duration_us=DURATION_US, seed=SEED)
    checked, report = chaos_collision_test(
        STATIONS,
        ChaosPlan(),  # no faults: only the checker rides along
        duration_us=DURATION_US,
        seed=SEED,
    )
    assert report["invariants"]["green"]
    assert checked.per_station == bare.per_station
    assert checked.collision_probability == bare.collision_probability
    assert checked.goodput_mbps == bare.goodput_mbps
