"""ChaosPlan: JSON round-trip, per-fault streams, presets, validation."""

import json

import pytest

from repro.chaos.plan import FAULT_IDS, PRESETS, ChaosPlan, preset_plan


class TestRoundTrip:
    def test_full_plan_survives_json(self):
        plan = preset_plan("full", 8e6, seed=5, invariants="log")
        wire = json.loads(json.dumps(plan.as_jsonable()))
        assert ChaosPlan.from_jsonable(wire) == plan

    def test_from_jsonable_passes_through_instances(self):
        plan = ChaosPlan(seed=3)
        assert ChaosPlan.from_jsonable(plan) is plan

    def test_defaults_are_inert(self):
        plan = ChaosPlan()
        assert not plan.any_channel_impairment
        assert plan.churn == ()
        assert plan.invariants == "raise"


class TestStreams:
    def test_same_family_same_substream(self):
        plan = ChaosPlan(seed=11)
        assert plan.stream("churn").random() == plan.stream("churn").random()

    def test_families_are_independent(self):
        plan = ChaosPlan(seed=11)
        draws = {
            family: plan.stream(family).random() for family in FAULT_IDS
        }
        assert len(set(draws.values())) == len(FAULT_IDS)

    def test_seed_changes_every_family(self):
        a, b = ChaosPlan(seed=1), ChaosPlan(seed=2)
        for family in FAULT_IDS:
            assert a.stream(family).random() != b.stream(family).random()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fault family"):
            ChaosPlan().stream("cosmic_rays")

    def test_fault_ids_append_only_guard(self):
        """Reordering or reusing an id silently changes existing plans'
        draws; lock the current assignment in place."""
        assert FAULT_IDS == {
            "gilbert_elliott": 1,
            "impulse_noise": 2,
            "link_quality": 3,
            "sack_loss": 4,
            "sack_corruption": 5,
            "churn": 6,
            "firmware_glitches": 7,
            "sniffer": 8,
        }


class TestValidation:
    def test_bad_invariants_policy(self):
        with pytest.raises(ValueError, match="invariants policy"):
            ChaosPlan(invariants="panic")

    def test_gilbert_elliott_needs_transition_probabilities(self):
        with pytest.raises(ValueError, match="p_bad_to_good"):
            ChaosPlan(gilbert_elliott={"p_good_to_bad": 0.1})
        with pytest.raises(ValueError, match="error_bad"):
            ChaosPlan(
                gilbert_elliott={
                    "p_good_to_bad": 0.1,
                    "p_bad_to_good": 0.1,
                    "error_bad": 1.7,
                }
            )

    def test_churn_event_shape(self):
        with pytest.raises(ValueError, match="churn action"):
            ChaosPlan(churn=({"time_us": 0.0, "action": "reboot"},))
        with pytest.raises(ValueError, match="time_us"):
            ChaosPlan(churn=({"action": "join"},))

    def test_glitch_shape(self):
        with pytest.raises(ValueError, match="glitch kind"):
            ChaosPlan(
                firmware_glitches=({"time_us": 0.0, "kind": "explode"},)
            )

    def test_probability_fields(self):
        with pytest.raises(ValueError, match="sack_loss"):
            ChaosPlan(sack_loss={"probability": -0.1})
        with pytest.raises(ValueError, match="sniffer.drop_probability"):
            ChaosPlan(sniffer={"drop_probability": 2.0})
        with pytest.raises(ValueError, match="link_quality"):
            ChaosPlan(link_quality={"02:00:00:00:00:00": 1.1})


class TestPresets:
    @pytest.mark.parametrize("name", PRESETS)
    def test_presets_validate_and_round_trip(self, name):
        plan = preset_plan(name, 10e6, seed=2)
        wire = json.loads(json.dumps(plan.as_jsonable()))
        assert ChaosPlan.from_jsonable(wire) == plan

    def test_preset_windows_scale_with_duration(self):
        plan = preset_plan("ge", 40e6)
        assert plan.gilbert_elliott["start_us"] == 10e6
        assert plan.gilbert_elliott["end_us"] == 30e6

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset_plan("entropy", 1e6)

    def test_cli_choices_cover_presets(self):
        """The CLI hardcodes the preset names; keep them in sync."""
        from repro.tools.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["chaos", "--preset", PRESETS[0]])
        assert args.preset == PRESETS[0]
        for name in PRESETS:
            parser.parse_args(["chaos", "--preset", name])
