"""Recovery harness: the MAC re-converges once faults clear."""

import json

import pytest

from repro.chaos.recovery import (
    default_recovery_plan,
    run_recovery_experiment,
)

WINDOW_US = 6e6
SETTLE_US = 2e6


@pytest.fixture(scope="module")
def result():
    return run_recovery_experiment(
        3, seed=1, window_us=WINDOW_US, settle_us=SETTLE_US
    )


def test_collision_probability_reconverges(result):
    """The acceptance criterion: after the faults clear, the §3.2
    metric returns to within tolerance of the fault-free baseline."""
    assert result.converged
    assert result.deviation <= result.allowed_deviation


def test_fault_window_actually_hurts(result):
    """The episode must be a real perturbation (an extra contender +
    burst errors push collisions up), or the test proves nothing."""
    assert result.faulty > result.baseline


def test_invariants_green_throughout(result):
    assert result.invariants["green"]
    assert result.invariants["policy"] == "raise"
    assert result.invariants["events_seen"] > 1000


def test_fault_episode_was_injected(result):
    assert result.injection["joins"] == 1
    assert result.injection["crash_leaves"] == 1
    assert result.injection["gilbert_elliott"]["pbs_errored"] > 0


def test_result_serializes(result):
    wire = json.loads(json.dumps(result.as_dict()))
    assert wire["converged"] is True
    assert wire["baseline"] == result.baseline


def test_default_plan_times_the_episode():
    plan = default_recovery_plan(10.0, 20.0, seed=4, invariants="count")
    assert plan.seed == 4
    assert plan.invariants == "count"
    assert plan.gilbert_elliott["start_us"] == 10.0
    assert plan.gilbert_elliott["end_us"] == 20.0
    (event,) = plan.churn
    assert event["time_us"] == 10.0
    assert event["leave_at_us"] == 20.0
    assert event["crash"] is True


def test_allowed_deviation_floor_guards_small_baselines():
    from repro.chaos.recovery import RecoveryResult

    result = RecoveryResult(
        num_stations=1,
        window_us=1.0,
        baseline=0.001,
        faulty=0.1,
        recovered=0.01,
        tolerance=0.05,
        floor=0.02,
        invariants={"green": True},
        injection={},
    )
    assert result.allowed_deviation == 0.02
    assert result.converged
