"""Chaos plans through the runner: cache keying + bit-identity."""

from repro.chaos.plan import preset_plan
from repro.runner import ExperimentRunner, Task, TaskKind
from repro.runner.cache import cache_key
from repro.runner.tasks import execute_task

STATIONS = 2
DURATION_US = 1.2e6
WARMUP_US = 0.2e6


def _payload(chaos=None, seed=1):
    payload = {
        "num_stations": STATIONS,
        "duration_us": DURATION_US,
        "warmup_us": WARMUP_US,
        "seed": seed,
        "testbed_kwargs": {},
    }
    if chaos is not None:
        payload["chaos"] = chaos.as_jsonable()
    return payload


def _tasks(plan_seeds=(0, 1)):
    return [
        Task(
            kind=TaskKind.COLLISION_TEST,
            payload=_payload(
                preset_plan("full", DURATION_US, seed=plan_seed)
            ),
        )
        for plan_seed in plan_seeds
    ]


class TestTaskExecution:
    def test_chaos_report_rides_in_the_result(self):
        plan = preset_plan("full", DURATION_US, seed=3)
        result = execute_task(
            Task(kind=TaskKind.COLLISION_TEST, payload=_payload(plan))
        )
        assert result["chaos"]["invariants"]["green"]
        assert result["chaos"]["plan"] == plan.as_jsonable()
        assert result["chaos"]["injection"]["joins"] == 1
        assert "obs" not in result

    def test_without_chaos_no_key(self):
        result = execute_task(
            Task(kind=TaskKind.COLLISION_TEST, payload=_payload())
        )
        assert "chaos" not in result

    def test_plan_is_part_of_cache_key(self):
        bare = Task(kind=TaskKind.COLLISION_TEST, payload=_payload())
        chaotic = Task(
            kind=TaskKind.COLLISION_TEST,
            payload=_payload(preset_plan("ge", DURATION_US)),
        )
        other = Task(
            kind=TaskKind.COLLISION_TEST,
            payload=_payload(preset_plan("ge", DURATION_US, seed=9)),
        )
        keys = {
            cache_key(task.describe()) for task in (bare, chaotic, other)
        }
        assert len(keys) == 3


class TestBitIdentity:
    def test_serial_equals_parallel_equals_cached(self, tmp_path):
        """The acceptance criterion: identical (scenario, plan, seed)
        yields bit-identical results on the serial and parallel runner
        paths, and again from a warm cache."""
        serial = ExperimentRunner(max_workers=1).run(_tasks())
        parallel = ExperimentRunner(max_workers=2).run(_tasks())
        assert serial == parallel

        warmer = ExperimentRunner(max_workers=2, cache_dir=tmp_path)
        warmer.run(_tasks())
        warm = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
        cached = warm.run(_tasks())
        assert cached == serial
        assert warm.counters.executed == 0
        assert warm.counters.cache_hits == warm.counters.points_total

    def test_plan_seed_changes_the_injection(self):
        a, b = ExperimentRunner(max_workers=1).run(_tasks((0, 7)))
        assert a["chaos"]["injection"] != b["chaos"]["injection"]
