"""The on-disk checkpoint container: atomicity, integrity, recovery."""

import os

import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    inspect_file,
    read_file,
    write_file,
)


def _checkpoint(seq=1, **meta):
    return Checkpoint(
        kind="testbed",
        seq=seq,
        sim_time_us=1.5e6 + seq,
        meta={"num_stations": 3, **meta},
        state={"counters": [seq, 2, 3], "nested": {"pi": 3.14159}},
    )


class TestRoundtrip:
    def test_write_read_preserves_everything(self, tmp_path):
        path = str(tmp_path / "ckpt-00000001.ckpt")
        original = _checkpoint()
        write_file(path, original)
        loaded = read_file(path)
        assert loaded.kind == original.kind
        assert loaded.seq == original.seq
        assert loaded.sim_time_us == original.sim_time_us
        assert loaded.meta == original.meta
        assert loaded.state == original.state

    def test_inspect_reads_header_only(self, tmp_path):
        path = str(tmp_path / "ckpt-00000001.ckpt")
        write_file(path, _checkpoint())
        header = inspect_file(path)
        assert header["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert header["kind"] == "testbed"
        assert header["seq"] == 1
        assert header["meta"]["num_stations"] == 3
        assert header["payload_bytes"] > 0
        assert len(header["payload_sha256"]) == 64

    def test_no_temp_files_left_behind(self, tmp_path):
        write_file(str(tmp_path / "ckpt-00000001.ckpt"), _checkpoint())
        assert sorted(os.listdir(tmp_path)) == ["ckpt-00000001.ckpt"]


class TestCorruptionDetection:
    def test_flipped_payload_byte_is_detected(self, tmp_path):
        path = str(tmp_path / "ckpt-00000001.ckpt")
        write_file(path, _checkpoint())
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="sha256|checksum"):
            read_file(path)

    def test_truncated_file_is_detected(self, tmp_path):
        path = str(tmp_path / "ckpt-00000001.ckpt")
        write_file(path, _checkpoint())
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            read_file(path)

    def test_foreign_file_is_detected(self, tmp_path):
        path = str(tmp_path / "ckpt-00000001.ckpt")
        open(path, "wb").write(b"not a checkpoint at all\n")
        with pytest.raises(CheckpointError):
            read_file(path)

    def test_empty_file_is_detected(self, tmp_path):
        path = str(tmp_path / "ckpt-00000001.ckpt")
        open(path, "wb").close()
        with pytest.raises(CheckpointError):
            read_file(path)


class TestStore:
    def test_sequences_and_next_seq(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.sequence_numbers() == []
        assert store.next_seq() == 1
        store.write(_checkpoint(seq=1))
        store.write(_checkpoint(seq=2))
        assert store.sequence_numbers() == [1, 2]
        assert store.next_seq() == 3

    def test_latest_valid_prefers_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(seq=1))
        store.write(_checkpoint(seq=2))
        assert store.latest_valid().seq == 2

    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        """A crash mid-write falls back to the previous snapshot."""
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(seq=1))
        store.write(_checkpoint(seq=2))
        blob = bytearray(open(store.path_for(2), "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(store.path_for(2), "wb").write(bytes(blob))
        loaded = store.latest_valid()
        assert loaded.seq == 1
        # The corrupt file is evidence: never deleted.
        assert os.path.exists(store.path_for(2))

    def test_latest_valid_empty_store(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).latest_valid() is None

    def test_entries_report_validity(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(seq=1))
        store.write(_checkpoint(seq=2))
        open(store.path_for(2), "wb").write(b"garbage")
        rows = store.entries()
        assert [row["seq"] for row in rows] == [1, 2]
        assert rows[0]["valid"] is True
        assert rows[0]["header"]["kind"] == "testbed"
        assert rows[1]["valid"] is False
        assert "error" in rows[1]

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for seq in range(1, 6):
            store.write(_checkpoint(seq=seq))
        removed = store.prune(keep_last=2)
        assert removed == 3
        assert store.sequence_numbers() == [4, 5]
