"""The chaos recovery harness reuses checkpoints.

A recovery experiment snapshots its full state at the first safe point
of the settle gap (fault episode over, backoff draining);
``resume_recovery_experiment`` re-enters from that snapshot and
re-measures only the recovery window — bit-identical to the
straight-through experiment.
"""

import pytest

from repro.chaos.recovery import (
    resume_recovery_experiment,
    run_recovery_experiment,
)
from repro.checkpoint import Checkpoint, CheckpointError, CheckpointStore

WINDOW_US = 6e6
SETTLE_US = 2e6


@pytest.fixture(scope="module")
def plain():
    return run_recovery_experiment(
        3, seed=1, window_us=WINDOW_US, settle_us=SETTLE_US
    )


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("recovery-ckpt"))
    result = run_recovery_experiment(
        3,
        seed=1,
        window_us=WINDOW_US,
        settle_us=SETTLE_US,
        checkpoint_store=CheckpointStore(directory),
    )
    return CheckpointStore(directory), result


def test_checkpointing_does_not_perturb_the_experiment(plain, checkpointed):
    _store, result = checkpointed
    assert result.as_dict() == plain.as_dict()


def test_snapshot_lands_inside_the_settle_gap(checkpointed):
    store, _result = checkpointed
    ckpt = store.latest_valid()
    assert ckpt is not None
    assert ckpt.kind == "testbed"
    assert ckpt.meta["experiment"] == "recovery"
    settle_stop = ckpt.meta["settle_stop_us"]
    assert settle_stop - ckpt.meta["settle_us"] <= ckpt.sim_time_us
    assert ckpt.sim_time_us < settle_stop
    # The snapshot already carries the two measured windows.
    assert ckpt.meta["faulty"] > ckpt.meta["baseline"]


def test_resume_is_bit_identical(plain, checkpointed):
    store, _result = checkpointed
    resumed = resume_recovery_experiment(store)
    assert resumed.as_dict() == plain.as_dict()


def test_resume_rejects_empty_store(tmp_path):
    with pytest.raises(CheckpointError, match="no valid checkpoint"):
        resume_recovery_experiment(CheckpointStore(str(tmp_path)))


def test_resume_rejects_foreign_checkpoint(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(
        Checkpoint(
            kind="testbed",
            seq=1,
            sim_time_us=1.0,
            meta={"num_stations": 3},  # a collision test, not recovery
            state={},
        )
    )
    with pytest.raises(CheckpointError, match="recovery"):
        resume_recovery_experiment(store)
