"""Crash-safe sweep resumption through the parallel runner.

The end-to-end robustness story: a pool worker is killed abruptly
(``os._exit`` — indistinguishable from SIGKILL to the pool) *between*
checkpoints of a long point, the runner rebuilds the pool and retries,
and the retried attempt resumes from the newest valid checkpoint
instead of recomputing from t=0 — with results bit-identical to a
sweep that was never interrupted, for plain and chaos points alike.

The kill is injected via ``REPRO_CHECKPOINT_KILL=<seq>``: the worker
durably writes checkpoint ``<seq>`` and then dies, so the crash always
leaves a valid newest snapshot behind and fires exactly once per store
(the resumed attempt starts at ``<seq>+1``).
"""

import glob
import os

import pytest

from repro.checkpoint.format import KILL_ENV
from repro.core.config import ScenarioConfig
from repro.runner.runner import ExperimentRunner
from repro.runner.seeding import SeedSpec
from repro.runner.serialize import scenario_to_jsonable
from repro.runner.tasks import Task, TaskKind

DURATION_US = 2e6
WARMUP_US = 2e6

CHAOS_PLAN = {
    "seed": 42,
    "invariants": "log",
    "sack_loss": {"probability": 0.02},
    "gilbert_elliott": {
        "p_good_to_bad": 0.002,
        "p_bad_to_good": 0.2,
        "error_good": 0.0,
        "error_bad": 0.4,
    },
    "churn": [
        {"time_us": WARMUP_US + 0.4e6, "action": "join"},
        {"time_us": WARMUP_US + 1.3e6, "action": "leave"},
    ],
}


def _collision_tasks(chaos=None):
    tasks = []
    for seed in (3, 4):
        payload = {
            "num_stations": 3,
            "duration_us": DURATION_US,
            "warmup_us": WARMUP_US,
            "seed": seed,
            "testbed_kwargs": {},
        }
        if chaos is not None:
            payload["chaos"] = chaos
        tasks.append(Task(kind=TaskKind.COLLISION_TEST, payload=payload))
    return tasks


def _simulate_tasks():
    scenario = scenario_to_jsonable(
        ScenarioConfig.homogeneous(num_stations=4, sim_time_us=2e6, seed=1)
    )
    return [
        Task(
            kind=TaskKind.SIMULATE,
            payload={"scenario": scenario, "record_winners": False},
            seed=SeedSpec(root_seed=1, point_index=i, repetition=0),
        )
        for i in range(2)
    ]


def _reference(tasks):
    """The uninterrupted sweep: serial, no checkpointing, no cache."""
    return ExperimentRunner(max_workers=1).run(tasks)


def _run_killed_sweep(tasks, tmp_path, monkeypatch, kill_seq, every_us):
    """Run ``tasks`` in a pool whose workers die after checkpoint N."""
    monkeypatch.setenv(KILL_ENV, str(kill_seq))
    runner = ExperimentRunner(
        max_workers=2,
        retries=3,
        max_pool_rebuilds=6,
        checkpoint_dir=tmp_path / "ckpt",
        checkpoint_every_us=every_us,
    )
    results = runner.run(tasks)
    monkeypatch.delenv(KILL_ENV)
    return runner, results


def _assert_crash_recovery_worked(runner, tmp_path):
    # The kill fired (a dead worker breaks its pool), the pool was
    # rebuilt, and at least one retried attempt resumed mid-simulation.
    assert runner.counters.pool_rebuilds >= 1
    assert runner.counters.retried >= 1
    assert runner.trace.of_kind("checkpoint_resume")
    assert not runner.failures
    # Every point got its own per-cache-key store with real snapshots.
    stores = glob.glob(str(tmp_path / "ckpt" / "*" / "ckpt-*.ckpt"))
    assert stores


class TestKilledWorkerResumes:
    def test_collision_sweep_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        tasks = _collision_tasks()
        expected = _reference(tasks)
        runner, results = _run_killed_sweep(
            tasks, tmp_path, monkeypatch, kill_seq=1, every_us=0.5e6
        )
        assert results == expected
        _assert_crash_recovery_worked(runner, tmp_path)

    def test_chaos_sweep_resumes_bit_identical(self, tmp_path, monkeypatch):
        tasks = _collision_tasks(chaos=CHAOS_PLAN)
        expected = _reference(tasks)
        assert all("chaos" in r for r in expected)
        runner, results = _run_killed_sweep(
            tasks, tmp_path, monkeypatch, kill_seq=1, every_us=0.5e6
        )
        assert results == expected
        _assert_crash_recovery_worked(runner, tmp_path)

    def test_simulate_sweep_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        tasks = _simulate_tasks()
        expected = _reference(tasks)
        runner, results = _run_killed_sweep(
            tasks, tmp_path, monkeypatch, kill_seq=2, every_us=0.25e6
        )
        assert results == expected
        _assert_crash_recovery_worked(runner, tmp_path)


class TestCheckpointedSweepWithoutCrash:
    """Checkpointing on, nothing killed: pure overhead, same numbers."""

    def test_serial_checkpointed_equals_plain(self, tmp_path):
        tasks = _collision_tasks()
        expected = _reference(tasks)
        runner = ExperimentRunner(
            max_workers=1,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every_us=1e6,
        )
        assert runner.run(tasks) == expected
        # Snapshots were taken even though nothing went wrong.
        assert glob.glob(str(tmp_path / "ckpt" / "*" / "ckpt-*.ckpt"))
        # A second run resumes from the final checkpoint (cheap) and
        # still reproduces the sweep exactly.
        rerun = ExperimentRunner(
            max_workers=1,
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert rerun.run(tasks) == expected
        assert rerun.trace.of_kind("checkpoint_resume")

    def test_resume_false_ignores_existing_snapshots(self, tmp_path):
        tasks = _simulate_tasks()[:1]
        expected = _reference(tasks)
        first = ExperimentRunner(
            max_workers=1,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every_us=0.5e6,
        )
        assert first.run(tasks) == expected
        recompute = ExperimentRunner(
            max_workers=1,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every_us=0.5e6,
            resume=False,
        )
        assert recompute.run(tasks) == expected
        assert not recompute.trace.of_kind("checkpoint_resume")

    def test_failure_record_carries_checkpoint_info(self, tmp_path):
        # A point that dies permanently still reports where a re-run
        # would pick it up.
        task = _collision_tasks()[0]
        runner = ExperimentRunner(
            max_workers=1,
            on_failure="partial",
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every_us=1e6,
        )
        bad = Task(
            kind=TaskKind.COLLISION_TEST,
            payload=dict(task.payload, num_stations=0),
        )
        results = runner.run([bad])
        assert results == [None]
        (failure,) = runner.failures
        assert failure.checkpoint is not None
        assert failure.checkpoint["dir"].startswith(str(tmp_path / "ckpt"))
        assert failure.checkpoint["valid_checkpoints"] == 0
        assert "checkpoint" in failure.as_jsonable()
