"""Bit-identity of checkpointed slot-simulator runs.

The headline invariant: run-to-T equals run-to-T/2 → checkpoint →
restore → run-to-T, bit-identical in every result field including the
slot-level trace.
"""

import numpy as np

from repro.checkpoint import (
    CheckpointStore,
    read_file,
    run_simulate_with_checkpoints,
)
from repro.checkpoint.slotsim import (
    restore_slot_simulator,
    snapshot_slot_simulator,
)
from repro.core.config import ScenarioConfig
from repro.core.simulator import SlotSimulator

SIM_TIME_US = 2e6


def _scenario(seed=5, sim_time_us=SIM_TIME_US):
    return ScenarioConfig.homogeneous(
        num_stations=4, sim_time_us=sim_time_us, seed=seed
    )


def _assert_results_identical(a, b):
    assert a.successes == b.successes
    assert a.collisions == b.collisions
    assert a.collision_events == b.collision_events
    assert a.idle_slots == b.idle_slots
    if a.trace is None:
        assert b.trace is None
    else:
        assert a.trace.transmissions == b.trace.transmissions
        assert a.trace.slots == b.trace.slots
    assert a.stations == b.stations
    if a.delays_us is None:
        assert b.delays_us is None
    else:
        assert np.array_equal(a.delays_us, b.delays_us)
    assert a.collision_probability == b.collision_probability


class TestSlotSimBitIdentity:
    def test_checkpointed_run_equals_straight_run(self, tmp_path):
        straight = SlotSimulator(_scenario(), record_trace=True).run()
        store = CheckpointStore(str(tmp_path))
        checkpointed = run_simulate_with_checkpoints(
            SlotSimulator(_scenario(), record_trace=True),
            store,
            every_us=0.25e6,
        )
        _assert_results_identical(straight, checkpointed)
        assert len(store.sequence_numbers()) >= 4

    def test_restore_midway_and_finish(self, tmp_path):
        straight = SlotSimulator(_scenario(), record_trace=True).run()
        store = CheckpointStore(str(tmp_path))
        run_simulate_with_checkpoints(
            SlotSimulator(_scenario(), record_trace=True),
            store,
            every_us=0.25e6,
        )
        # Resume from a mid-run snapshot (not the newest): real slots
        # are re-executed, and the result must still match bitwise.
        middle = read_file(store.path_for(store.sequence_numbers()[2]))
        assert 0 < middle.sim_time_us < SIM_TIME_US
        sim = restore_slot_simulator(_scenario(), middle.state)
        resumed = run_simulate_with_checkpoints(
            sim, CheckpointStore(str(tmp_path / "resumed")), every_us=0.25e6
        )
        _assert_results_identical(straight, resumed)

    def test_restore_roundtrips_through_disk(self, tmp_path):
        """The snapshot survives pickling to disk, not just in memory."""
        store = CheckpointStore(str(tmp_path))
        sim = SlotSimulator(_scenario(), record_trace=True)
        sim.advance(1e6)
        snapshot_slot_simulator(sim)  # snapshot of a live sim works
        run_simulate_with_checkpoints(sim, store, every_us=0.5e6)
        newest = store.latest_valid()
        restored = restore_slot_simulator(_scenario(), newest.state)
        assert restored.record_trace is True
        assert restored._state["t"] == newest.sim_time_us

    def test_delay_recording_is_preserved(self, tmp_path):
        straight = SlotSimulator(
            _scenario(seed=9), record_delays=True
        ).run()
        store = CheckpointStore(str(tmp_path))
        checkpointed = run_simulate_with_checkpoints(
            SlotSimulator(_scenario(seed=9), record_delays=True),
            store,
            every_us=0.5e6,
        )
        _assert_results_identical(straight, checkpointed)
        middle = read_file(store.path_for(store.sequence_numbers()[0]))
        resumed = restore_slot_simulator(_scenario(seed=9), middle.state)
        result = run_simulate_with_checkpoints(
            resumed,
            CheckpointStore(str(tmp_path / "resumed")),
            every_us=0.5e6,
        )
        _assert_results_identical(straight, result)
