"""Bit-identity of checkpointed event-testbed runs (plain and chaos).

The tentpole invariant: for any scenario, run-to-T equals
run-to-T/2 → checkpoint → restore → run-to-T, bit-identical in the
measurement rows, the goodput float, the coordinator RoundLog, the
wire counters and the sniffer captures.
"""

import pickle

from repro.chaos.experiment import attach_chaos, chaos_collision_test
from repro.checkpoint import CheckpointStore, read_file
from repro.checkpoint.testbed import (
    capture_testbed,
    checkpointed_collision_test,
    restore_testbed_state,
    resume_collision_test,
)
from repro.experiments.procedures import run_collision_test
from repro.experiments.testbed import build_testbed

# Short but non-trivial: a few thousand contention rounds, beacons,
# association, channel estimation and (in the chaos case) every fault
# family all land inside the window.
DURATION_US = 3e6
WARMUP_US = 2e6
EVERY_US = 1e6

CHAOS_PLAN = {
    "seed": 42,
    "invariants": "log",
    "sack_loss": {"probability": 0.02},
    "sack_corruption": {"probability": 0.01},
    "gilbert_elliott": {
        "p_good_to_bad": 0.002,
        "p_bad_to_good": 0.2,
        "error_good": 0.0,
        "error_bad": 0.4,
    },
    "churn": (
        {"time_us": WARMUP_US + 0.4e6, "action": "join"},
        {"time_us": WARMUP_US + 1.3e6, "action": "leave"},
    ),
    "firmware_glitches": (
        {"time_us": WARMUP_US + 1.7e6, "kind": "inflate_acked"},
    ),
}


def _fingerprint(testbed):
    return {
        "now": testbed.env.now,
        "round_log": testbed.avln.coordinator.log.as_dict(),
        "sof_count": testbed.avln.strip.sof_count,
        "delivered_mpdus": testbed.avln.strip.delivered_mpdus,
        "rows": testbed.read_data_stats(),
        "rx_bytes": testbed.destination.received_bytes,
        "beacons": [d.beacons_seen for d in testbed.avln.devices],
        "chanest": [d.channel_est_seen for d in testbed.avln.devices],
        "mmes": [d.mmes_sent for d in testbed.avln.devices],
        "captures": (
            list(testbed.faifa.captures) if testbed.faifa else None
        ),
    }


def _capture_at_round_boundary(testbed, not_before_us, injector=None,
                               checker=None):
    """Arm a one-shot snapshot at the first safe point past a time."""
    captured = {}

    def hook():
        env = testbed.env
        if captured or env.now < not_before_us or env.peek() == env.now:
            return
        captured["state"] = capture_testbed(
            testbed, injector=injector, checker=checker
        )
        captured["at"] = env.now

    testbed.avln.coordinator.checkpoint_hook = hook
    return captured


class TestPlainBitIdentity:
    def test_restore_midway_matches_straight_run(self):
        kwargs = dict(seed=11, enable_sniffer=True)
        end_us = 5e6

        reference = build_testbed(3, **kwargs)
        captured = _capture_at_round_boundary(reference, 2.5e6)
        reference.run_until(3e6)
        assert captured, "no round boundary between 2.5e6 and 3e6?"
        reference.avln.coordinator.checkpoint_hook = None
        reference.run_until(end_us)
        want = _fingerprint(reference)

        resumed = build_testbed(3, **kwargs)
        # Disk roundtrip: the restored state is a pickle copy, proving
        # no hidden aliasing into the original testbed survives.
        state = pickle.loads(pickle.dumps(captured["state"]))
        restore_testbed_state(resumed, state)
        assert resumed.env.now == captured["at"]
        resumed.env.run_until_at(3e6)
        resumed.env.run_until_at(end_us)
        assert _fingerprint(resumed) == want

    def test_checkpointed_procedure_matches_plain_procedure(
        self, tmp_path
    ):
        plain = run_collision_test(
            3, duration_us=DURATION_US, warmup_us=WARMUP_US, seed=7
        )
        store = CheckpointStore(str(tmp_path))
        checkpointed = checkpointed_collision_test(
            3,
            store,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=7,
            checkpoint_every_us=EVERY_US,
        )
        assert checkpointed == plain
        assert len(store.sequence_numbers()) >= 2

        # Resume from an *early* snapshot: most of the measurement
        # window is re-executed, and every field still matches.
        earliest = read_file(store.path_for(store.sequence_numbers()[0]))
        resumed = resume_collision_test(
            CheckpointStore(str(tmp_path)), checkpoint=earliest
        )
        assert resumed == plain

        # Resume from the newest snapshot too (the crash-recovery path).
        assert resume_collision_test(store) == plain


class TestChaosBitIdentity:
    def test_restore_midway_matches_straight_run(self):
        end_us = WARMUP_US + DURATION_US

        reference = build_testbed(3, seed=21)
        ref_injector, ref_checker, _ = attach_chaos(
            reference, CHAOS_PLAN, deep_every=64
        )
        captured = _capture_at_round_boundary(
            reference,
            WARMUP_US + 1.5e6,  # after join, leave and GE onset
            injector=ref_injector,
            checker=ref_checker,
        )
        reference.run_until(WARMUP_US + 2e6)
        assert captured
        reference.avln.coordinator.checkpoint_hook = None
        reference.run_until(end_us)
        ref_injector.flush()
        want = _fingerprint(reference)
        want_report = ref_injector.report()
        want_invariants = ref_checker.finalize()

        resumed = build_testbed(3, seed=21)
        injector, checker, _ = attach_chaos(
            resumed, CHAOS_PLAN, deep_every=64
        )
        state = pickle.loads(pickle.dumps(captured["state"]))
        restore_testbed_state(
            resumed, state, injector=injector, checker=checker
        )
        resumed.env.run_until_at(WARMUP_US + 2e6)
        resumed.env.run_until_at(end_us)
        injector.flush()
        assert _fingerprint(resumed) == want
        assert injector.report() == want_report
        assert checker.finalize() == want_invariants

    def test_checkpointed_procedure_matches_chaos_procedure(
        self, tmp_path
    ):
        plain_test, plain_report = chaos_collision_test(
            3,
            CHAOS_PLAN,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=42,
        )
        store = CheckpointStore(str(tmp_path))
        ckpt_test, ckpt_report = checkpointed_collision_test(
            3,
            store,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=42,
            checkpoint_every_us=EVERY_US,
            plan=CHAOS_PLAN,
        )
        assert ckpt_test == plain_test
        assert ckpt_report == plain_report
        assert len(store.sequence_numbers()) >= 2

        resumed_test, resumed_report = resume_collision_test(store)
        assert resumed_test == plain_test
        assert resumed_report == plain_report

        # And from the earliest snapshot, which replays the glitch and
        # part of the churn window.
        earliest = read_file(store.path_for(store.sequence_numbers()[0]))
        early_test, early_report = resume_collision_test(
            CheckpointStore(str(tmp_path)), checkpoint=earliest
        )
        assert early_test == plain_test
        assert early_report == plain_report
