"""Configuration dataclasses (Table 3's inputs, experiment T3)."""

import dataclasses

import pytest

from repro.core.config import (
    CsmaConfig,
    Protocol,
    ScenarioConfig,
    StationConfig,
    TimingConfig,
)
from repro.core.parameters import PriorityClass


class TestCsmaConfig:
    def test_default_is_table1_ca1(self):
        config = CsmaConfig.default_1901()
        assert config.cw == (8, 16, 32, 64)
        assert config.dc == (0, 1, 3, 15)
        assert config.protocol == Protocol.IEEE_1901
        assert config.retry_limit is None

    def test_for_priority_high_group(self):
        config = CsmaConfig.for_priority(PriorityClass.CA3)
        assert config.cw == (8, 16, 16, 32)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            CsmaConfig(cw=(8, 16), dc=(0,))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            CsmaConfig(protocol="ethernet")

    def test_bad_retry_limit_rejected(self):
        with pytest.raises(ValueError):
            CsmaConfig(retry_limit=0)

    def test_stage_cw_clamps_beyond_last(self):
        config = CsmaConfig.default_1901()
        assert config.stage_cw(0) == 8
        assert config.stage_cw(3) == 64
        assert config.stage_cw(99) == 64  # BPC >= 3 row of Table 1

    def test_stage_dc_clamps(self):
        config = CsmaConfig.default_1901()
        assert config.stage_dc(0) == 0
        assert config.stage_dc(10) == 15

    def test_ieee80211_windows_double(self):
        config = CsmaConfig.ieee80211(cw_min=16, max_stage=3)
        assert config.cw == (16, 32, 64, 128)
        assert config.protocol == Protocol.IEEE_80211

    def test_ieee80211_deferral_unreachable(self):
        config = CsmaConfig.ieee80211(cw_min=8, max_stage=1)
        # dc == cw: at most cw-1 busy events can occur before BC expiry.
        assert all(d >= w for d, w in zip(config.dc, config.cw))

    def test_ieee80211_validation(self):
        with pytest.raises(ValueError):
            CsmaConfig.ieee80211(cw_min=0)

    def test_values_coerced_to_int(self):
        config = CsmaConfig(cw=(8.0, 16.0), dc=(1.0, 2.0))
        assert config.cw == (8, 16)
        assert isinstance(config.cw[0], int)

    def test_describe_mentions_parameters(self):
        text = CsmaConfig.default_1901().describe()
        assert "1901" in text and "[8, 16, 32, 64]" in text

    def test_frozen(self):
        config = CsmaConfig.default_1901()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.cw = (4,)


class TestTimingConfig:
    def test_defaults_are_paper_values(self):
        timing = TimingConfig.paper_defaults()
        assert timing.slot == 35.84
        assert timing.ts == 2920.64
        assert timing.tc == 2542.64
        assert timing.frame == 2050.0

    @pytest.mark.parametrize(
        "field,value",
        [("slot", 0.0), ("ts", -1.0), ("tc", 0.0), ("frame", float("inf"))],
    )
    def test_positive_finite_required(self, field, value):
        with pytest.raises(ValueError):
            TimingConfig(**{field: value})

    def test_frame_cannot_exceed_ts(self):
        with pytest.raises(ValueError):
            TimingConfig(ts=1000.0, tc=900.0, frame=1500.0)

    def test_scaled_to_frame_keeps_overheads(self):
        timing = TimingConfig()
        scaled = timing.scaled_to_frame(1000.0)
        assert scaled.frame == 1000.0
        assert scaled.ts - scaled.frame == pytest.approx(
            timing.ts - timing.frame
        )
        assert scaled.tc - scaled.frame == pytest.approx(
            timing.tc - timing.frame
        )


class TestStationConfig:
    def test_saturated_by_default(self):
        assert StationConfig().saturated

    def test_arrival_rate_makes_unsaturated(self):
        config = StationConfig(arrival_rate_pps=100.0)
        assert not config.saturated

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            StationConfig(arrival_rate_pps=0.0)

    def test_bad_queue_rejected(self):
        with pytest.raises(ValueError):
            StationConfig(queue_capacity=0)


class TestScenarioConfig:
    def test_homogeneous_builds_n_stations(self):
        scenario = ScenarioConfig.homogeneous(num_stations=5)
        assert scenario.num_stations == 5
        assert len({s.csma for s in scenario.stations}) == 1
        assert scenario.stations[2].name == "sta2"

    def test_paper_example_matches_table3(self):
        scenario = ScenarioConfig.paper_example()
        assert scenario.num_stations == 2
        assert scenario.sim_time_us == 5e8
        assert scenario.timing.ts == 2920.64
        assert scenario.stations[0].csma.cw == (8, 16, 32, 64)

    def test_zero_stations_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig.homogeneous(num_stations=0)

    def test_empty_station_list_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(stations=())

    def test_bad_sim_time_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig.homogeneous(num_stations=1, sim_time_us=0.0)

    def test_priority_propagates_to_csma(self):
        scenario = ScenarioConfig.homogeneous(
            num_stations=2, priority=PriorityClass.CA3
        )
        assert scenario.stations[0].csma.cw == (8, 16, 16, 32)
