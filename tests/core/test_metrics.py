"""Tests for the metrics module."""

import math

import numpy as np
import pytest

from repro.core import metrics as M


class TestCollisionProbability:
    def test_basic_ratio(self):
        assert M.collision_probability(12012, 162020) == pytest.approx(
            0.0741, abs=1e-4
        )  # Table 2's N=2 row

    def test_zero_acked(self):
        assert M.collision_probability(0, 0) == 0.0


class TestNormalizedThroughput:
    def test_formula(self):
        assert M.normalized_throughput(100, 2050.0, 1e6) == pytest.approx(
            0.205
        )

    def test_zero_duration(self):
        assert M.normalized_throughput(5, 2050.0, 0.0) == 0.0


class TestJain:
    def test_perfectly_fair(self):
        assert M.jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        assert M.jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_lower_bound_is_one_over_n(self):
        n = 7
        assert M.jain_index([1] + [0] * (n - 1)) == pytest.approx(1 / n)

    def test_scale_invariant(self):
        assert M.jain_index([1, 2, 3]) == pytest.approx(
            M.jain_index([10, 20, 30])
        )

    def test_all_zero_defined_as_fair(self):
        assert M.jain_index([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            M.jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            M.jain_index([1, -1])


class TestWindowedJain:
    def test_matches_naive_computation(self):
        winners = [0, 1, 0, 0, 1, 1, 0, 1, 1, 1, 0, 0]
        window = 4
        fast = M.windowed_jain(winners, 2, window)
        naive = []
        for start in range(len(winners) - window + 1):
            counts = np.bincount(
                winners[start : start + window], minlength=2
            )
            naive.append(M.jain_index(counts))
        assert fast == pytest.approx(naive)

    def test_too_short_sequence_empty(self):
        assert M.windowed_jain([0, 1], 2, 5).size == 0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            M.windowed_jain([0, 1], 2, 0)

    def test_alternating_is_fair(self):
        values = M.windowed_jain([0, 1] * 20, 2, 4)
        assert np.all(values == pytest.approx(1.0))

    def test_blocky_is_unfair(self):
        values = M.windowed_jain([0] * 20 + [1] * 20, 2, 10)
        assert values.min() == pytest.approx(0.5)  # single-owner windows


class TestShortTermFairness:
    def test_default_window_is_10n(self):
        winners = list(range(2)) * 50
        explicit = M.short_term_fairness(winners, 2, window=20)
        default = M.short_term_fairness(winners, 2)
        assert explicit == default

    def test_nan_when_too_short(self):
        assert math.isnan(M.short_term_fairness([0], 2))


class TestRunLengths:
    def test_basic(self):
        assert M.win_run_lengths([0, 0, 1, 1, 1, 0]) == [2, 3, 1]

    def test_empty(self):
        assert M.win_run_lengths([]) == []

    def test_single(self):
        assert M.win_run_lengths([3]) == [1]

    def test_sum_equals_length(self):
        winners = [0, 1, 1, 2, 2, 2, 0, 0]
        assert sum(M.win_run_lengths(winners)) == len(winners)


class TestCaptureProbability:
    def test_alternating_zero(self):
        assert M.capture_probability([0, 1, 0, 1]) == 0.0

    def test_constant_one(self):
        assert M.capture_probability([2, 2, 2, 2]) == 1.0

    def test_half(self):
        assert M.capture_probability([0, 0, 1, 1]) == pytest.approx(2 / 3)

    def test_nan_for_short(self):
        assert math.isnan(M.capture_probability([0]))


class TestDelayStats:
    def test_summary_fields(self):
        stats = M.delay_stats([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.maximum == 4.0
        assert stats.count == 4
        assert stats.p95 <= stats.p99 <= stats.maximum

    def test_empty_gives_nans_with_zero_count(self):
        stats = M.delay_stats([])
        assert stats.count == 0
        for field in ("mean", "std", "median", "p95", "p99", "maximum"):
            assert math.isnan(getattr(stats, field))

    def test_as_dict_roundtrip(self):
        stats = M.delay_stats([5.0])
        d = stats.as_dict()
        assert d["mean"] == 5.0
        assert set(d) == {
            "mean", "std", "median", "p95", "p99", "maximum", "count",
        }


class TestInterSuccessTimes:
    def test_basic_gaps(self):
        gaps = M.inter_success_times([0.0, 10.0, 25.0, 26.0])
        assert list(gaps) == [10.0, 15.0, 1.0]

    def test_too_short_empty(self):
        assert M.inter_success_times([5.0]).size == 0
        assert M.inter_success_times([]).size == 0

    def test_unordered_rejected(self):
        with pytest.raises(ValueError):
            M.inter_success_times([5.0, 1.0])

    def test_capture_shows_in_per_station_gaps(self):
        """A station's inter-success spread is wider under 1901 than
        802.11 at N=2 (the capture effect)."""
        from repro.core import CsmaConfig, ScenarioConfig, SlotSimulator

        def spread(config):
            scenario = ScenarioConfig.homogeneous(
                num_stations=2, csma=config, sim_time_us=1e7, seed=4
            )
            result = SlotSimulator(scenario, record_trace=True).run()
            gaps = M.inter_success_times(
                result.trace.success_times(station=0)
            )
            return float(np.std(gaps) / np.mean(gaps))  # CoV

        assert spread(CsmaConfig.default_1901()) > spread(
            CsmaConfig.ieee80211()
        )
