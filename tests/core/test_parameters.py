"""Table 1 and timing constants (experiment T1)."""

import pytest

from repro.core import parameters as P


def test_table1_ca0_ca1_contention_windows():
    assert P.CW_CA0_CA1 == (8, 16, 32, 64)


def test_table1_ca2_ca3_contention_windows():
    assert P.CW_CA2_CA3 == (8, 16, 16, 32)


def test_table1_deferral_counters_same_for_both_groups():
    assert P.DC_CA0_CA1 == (0, 1, 3, 15)
    assert P.DC_CA2_CA3 == (0, 1, 3, 15)


def test_four_backoff_stages():
    assert P.NUM_BACKOFF_STAGES == 4
    assert len(P.CW_CA0_CA1) == 4
    assert len(P.DC_CA0_CA1) == 4


def test_slot_duration_from_reference_listing():
    assert P.SLOT_DURATION_US == 35.84


def test_default_durations_match_table3_example():
    # sim_1901(2, 5*10^8, 2920.64, 2542.64, 2050, ...)
    assert P.DEFAULT_TS_US == 2920.64
    assert P.DEFAULT_TC_US == 2542.64
    assert P.DEFAULT_FRAME_US == 2050.0
    assert P.DEFAULT_SIM_TIME_US == 5e8


def test_priority_groups():
    assert not P.PriorityClass.CA0.is_high_group
    assert not P.PriorityClass.CA1.is_high_group
    assert P.PriorityClass.CA2.is_high_group
    assert P.PriorityClass.CA3.is_high_group


def test_priority_ordering():
    assert P.PriorityClass.CA3 > P.PriorityClass.CA2 > P.PriorityClass.CA1


def test_cw_schedule_selects_group():
    assert P.cw_schedule(P.PriorityClass.CA1) == P.CW_CA0_CA1
    assert P.cw_schedule(P.PriorityClass.CA2) == P.CW_CA2_CA3


def test_dc_schedule_selects_group():
    assert P.dc_schedule(P.PriorityClass.CA0) == P.DC_CA0_CA1
    assert P.dc_schedule(P.PriorityClass.CA3) == P.DC_CA2_CA3


def test_framing_constants():
    assert P.PB_SIZE_BYTES == 512
    assert P.MAX_MPDUS_PER_BURST == 4
    assert P.DEFAULT_MPDUS_PER_BURST == 2


def test_priority_resolution_is_two_slots():
    assert P.PRIORITY_RESOLUTION_US == pytest.approx(2 * 35.84)


@pytest.mark.parametrize(
    "cw,dc",
    [((8,), (0, 1)), ((), ()), ((8, 0), (0, 0)), ((8,), (-1,)), ((7.5,), (0,))],
)
def test_validate_schedules_rejects_bad_inputs(cw, dc):
    with pytest.raises(ValueError):
        P.validate_schedules(cw, dc)


def test_validate_schedules_accepts_table1():
    P.validate_schedules(P.CW_CA0_CA1, P.DC_CA0_CA1)
    P.validate_schedules(P.CW_CA2_CA3, P.DC_CA2_CA3)
