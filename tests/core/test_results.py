"""Tests for result containers and aggregation."""

import pytest

from repro.core import (
    AggregateResult,
    ScenarioConfig,
    SimulationResult,
    StationStats,
    aggregate,
)


def make_result(successes=100, collisions=10, events=5, idle=50, n=2):
    scenario = ScenarioConfig.homogeneous(num_stations=n, sim_time_us=1e6)
    timing = scenario.timing
    duration = idle * timing.slot + successes * timing.ts + events * timing.tc
    per_station = successes // n
    return SimulationResult(
        scenario=scenario,
        duration_us=duration,
        successes=successes,
        collisions=collisions,
        collision_events=events,
        idle_slots=idle,
        stations=[
            StationStats(
                index=i,
                successes=per_station,
                collisions=collisions // n,
                drops=0,
                jumps=0,
            )
            for i in range(n)
        ],
    )


class TestSimulationResult:
    def test_collision_probability_definition(self):
        result = make_result(successes=90, collisions=10)
        assert result.collision_probability == pytest.approx(0.1)

    def test_collision_probability_empty(self):
        result = make_result(successes=0, collisions=0, events=0)
        assert result.collision_probability == 0.0

    def test_normalized_throughput_definition(self):
        result = make_result()
        expected = 100 * result.scenario.timing.frame / result.duration_us
        assert result.normalized_throughput == pytest.approx(expected)

    def test_airtime_breakdown_sums_to_one(self):
        result = make_result()
        assert sum(result.airtime_breakdown.values()) == pytest.approx(1.0)

    def test_airtime_breakdown_empty_run(self):
        result = make_result(successes=0, collisions=0, events=0, idle=0)
        assert result.airtime_breakdown == {
            "idle": 0.0, "success": 0.0, "collision": 0.0,
        }

    def test_jain_perfect_split(self):
        result = make_result(successes=100, n=2)
        assert result.jain_fairness() == pytest.approx(1.0)

    def test_per_station_throughput_sums_to_total(self):
        result = make_result(successes=100, n=2)
        assert result.per_station_throughput.sum() == pytest.approx(
            result.normalized_throughput
        )

    def test_attempts(self):
        result = make_result(successes=90, collisions=10)
        assert result.attempts == 100


class TestStationStats:
    def test_attempts_property(self):
        stats = StationStats(
            index=0, successes=7, collisions=3, drops=0, jumps=1
        )
        assert stats.attempts == 10


class TestAggregateResult:
    def test_requires_runs(self):
        with pytest.raises(ValueError):
            AggregateResult(runs=[])

    def test_mean_and_std(self):
        runs = [make_result(successes=90, collisions=10),
                make_result(successes=80, collisions=20)]
        agg = aggregate(runs)
        assert agg.collision_probability == pytest.approx((0.1 + 0.2) / 2)
        assert agg.collision_probability_std > 0
        assert agg.num_runs == 2

    def test_confidence_interval_single_run(self):
        agg = aggregate([make_result()])
        mean, half = agg.confidence_interval()
        assert half == 0.0

    def test_confidence_interval_width_positive(self):
        runs = [make_result(successes=s, collisions=10) for s in (80, 90, 100)]
        mean, half = aggregate(runs).confidence_interval(
            "normalized_throughput"
        )
        assert half > 0
        assert mean > 0
