"""Tests for the slot-synchronous simulator (§4.2 port)."""

import numpy as np
import pytest

from repro.core import (
    CsmaConfig,
    ScenarioConfig,
    SlotSimulator,
    StationConfig,
    TimingConfig,
    aggregate,
    sim_1901,
    simulate,
)


def short_scenario(n, sim_time_us=2e6, seed=1, **kwargs):
    return ScenarioConfig.homogeneous(
        num_stations=n, sim_time_us=sim_time_us, seed=seed, **kwargs
    )


class TestSingleStation:
    def test_never_collides(self):
        result = SlotSimulator(short_scenario(1)).run()
        assert result.collisions == 0
        assert result.collision_probability == 0.0

    def test_throughput_matches_counts(self):
        result = SlotSimulator(short_scenario(1)).run()
        expected = (
            result.successes * result.scenario.timing.frame
            / result.duration_us
        )
        assert result.normalized_throughput == pytest.approx(expected)

    def test_time_accounting_is_exact(self):
        result = SlotSimulator(short_scenario(1)).run()
        timing = result.scenario.timing
        reconstructed = (
            result.idle_slots * timing.slot
            + result.successes * timing.ts
            + result.collision_events * timing.tc
        )
        assert result.duration_us == pytest.approx(reconstructed)

    def test_single_station_throughput_near_expected(self):
        # One saturated station: cycle = E[BC] slots + Ts where the
        # expected per-frame backoff is (CW0+1)/2 events including the
        # attempt event = 4.5 -> 3.5 idle slots.
        result = SlotSimulator(short_scenario(1, sim_time_us=2e7)).run()
        timing = result.scenario.timing
        expected = timing.frame / (3.5 * timing.slot + timing.ts)
        assert result.normalized_throughput == pytest.approx(expected, rel=0.02)


class TestMultiStation:
    def test_time_accounting_many_stations(self):
        result = SlotSimulator(short_scenario(4)).run()
        timing = result.scenario.timing
        reconstructed = (
            result.idle_slots * timing.slot
            + result.successes * timing.ts
            + result.collision_events * timing.tc
        )
        assert result.duration_us == pytest.approx(reconstructed)

    def test_collision_probability_increases_with_n(self):
        values = []
        for n in (2, 4, 7):
            agg = aggregate(
                simulate(short_scenario(n, sim_time_us=1e7), repetitions=3)
            )
            values.append(agg.collision_probability)
        assert values[0] < values[1] < values[2]

    def test_station_counters_sum_to_totals(self):
        result = SlotSimulator(short_scenario(3)).run()
        assert sum(s.successes for s in result.stations) == result.successes
        assert sum(s.collisions for s in result.stations) == result.collisions

    def test_collision_counts_one_per_collided_station(self):
        # The reference listing does `collisions += counter`.
        result = SlotSimulator(short_scenario(5, sim_time_us=5e6)).run()
        assert result.collisions >= 2 * result.collision_events

    def test_reproducible_with_same_seed(self):
        a = SlotSimulator(short_scenario(3, seed=77)).run()
        b = SlotSimulator(short_scenario(3, seed=77)).run()
        assert a.successes == b.successes
        assert a.collisions == b.collisions
        assert [s.successes for s in a.stations] == [
            s.successes for s in b.stations
        ]

    def test_different_seed_differs(self):
        a = SlotSimulator(short_scenario(3, seed=1)).run()
        b = SlotSimulator(short_scenario(3, seed=2)).run()
        assert (a.successes, a.collisions) != (b.successes, b.collisions)


class TestTraces:
    def test_trace_successes_match_counters(self):
        sim = SlotSimulator(short_scenario(3), record_trace=True)
        result = sim.run()
        assert len(result.trace.success_times()) == result.successes
        assert len(result.trace.collision_times()) == result.collision_events

    def test_winner_indices_valid(self):
        result = SlotSimulator(short_scenario(3), record_trace=True).run()
        assert all(0 <= w < 3 for w in result.trace.winners())

    def test_per_station_success_times(self):
        result = SlotSimulator(short_scenario(2), record_trace=True).run()
        total = sum(
            len(result.trace.success_times(station=i)) for i in range(2)
        )
        assert total == result.successes

    def test_slot_records_when_enabled(self):
        result = SlotSimulator(
            short_scenario(2, sim_time_us=1e5), record_slots=True
        ).run()
        assert result.trace.slots
        for record in result.trace.slots:
            assert len(record.per_station) == 2
            for stage, cw, dc, bc in record.per_station:
                assert 0 <= stage <= 3
                assert cw in (8, 16, 32, 64)
                assert bc >= 0

    def test_no_trace_by_default(self):
        result = SlotSimulator(short_scenario(2)).run()
        assert result.trace is None

    def test_stage_histogram_counts_attempts(self):
        result = SlotSimulator(short_scenario(3), record_trace=True).run()
        histogram = result.trace.stage_at_attempt_counts(4)
        assert sum(histogram) == result.successes + result.collisions


class TestDelays:
    def test_delays_recorded_for_each_success(self):
        result = SlotSimulator(
            short_scenario(2), record_delays=True
        ).run()
        assert result.delays_us is not None
        assert len(result.delays_us) == result.successes
        assert np.all(result.delays_us > 0)

    def test_delay_at_least_transmission_time(self):
        result = SlotSimulator(short_scenario(1), record_delays=True).run()
        # >= Ts up to float accumulation error over the long run.
        assert result.delays_us.min() >= result.scenario.timing.ts - 1e-6


class TestRetryLimit:
    def test_drops_counted(self):
        config = CsmaConfig(
            cw=(2, 2), dc=(2, 2), retry_limit=1
        )  # tiny CW, 1 attempt: drops guaranteed
        scenario = ScenarioConfig.homogeneous(
            num_stations=4, csma=config, sim_time_us=2e6, seed=3
        )
        result = SlotSimulator(scenario).run()
        assert sum(s.drops for s in result.stations) > 0


class TestUnsaturated:
    def test_low_rate_single_station_no_loss(self):
        scenario = ScenarioConfig.homogeneous(
            num_stations=1, arrival_rate_pps=10.0, sim_time_us=2e7, seed=5
        )
        result = SlotSimulator(scenario).run()
        stats = result.stations[0]
        assert stats.arrivals > 0
        assert stats.queue_losses == 0
        # Deliveries track arrivals closely (queue drains fast).
        assert abs(stats.successes - stats.arrivals) <= 2

    def test_throughput_tracks_offered_load(self):
        rate = 20.0  # frames/s, far below saturation
        scenario = ScenarioConfig.homogeneous(
            num_stations=2, arrival_rate_pps=rate, sim_time_us=2e7, seed=5
        )
        result = SlotSimulator(scenario).run()
        offered = 2 * rate * result.duration_us / 1e6
        assert result.successes == pytest.approx(offered, rel=0.25)

    def test_overload_fills_queue(self):
        scenario = ScenarioConfig.homogeneous(
            num_stations=2, arrival_rate_pps=100000.0, sim_time_us=2e6, seed=5
        )
        result = SlotSimulator(scenario).run()
        assert sum(s.queue_losses for s in result.stations) > 0


class TestHeterogeneous:
    def test_mixed_configs_run(self):
        aggressive = StationConfig(csma=CsmaConfig(cw=(4,), dc=(0,)))
        standard = StationConfig(csma=CsmaConfig.default_1901())
        scenario = ScenarioConfig(
            stations=(aggressive, standard),
            sim_time_us=5e6,
            seed=1,
        )
        result = SlotSimulator(scenario).run()
        # The single-stage CW=4 station should dominate.
        assert result.stations[0].successes > result.stations[1].successes


class TestSim1901Wrapper:
    def test_signature_matches_matlab_order(self):
        # (N, sim_time, Tc, Ts, frame, cw, dc): Tc comes *before* Ts.
        p, s = sim_1901(
            1, 1e6, 2542.64, 2920.64, 2050.0, [8, 16, 32, 64], [0, 1, 3, 15]
        )
        assert p == 0.0
        assert 0 < s < 1

    def test_returns_collision_pr_then_throughput(self):
        p, s = sim_1901(
            5, 5e6, 2542.64, 2920.64, 2050.0, [8, 16, 32, 64], [0, 1, 3, 15],
            seed=2,
        )
        assert 0.1 < p < 0.35  # collision probability range at N=5
        assert 0.5 < s < 0.7

    def test_mismatched_vectors_raise(self):
        # The MATLAB listing silently returns; we raise instead.
        with pytest.raises(ValueError):
            sim_1901(2, 1e6, 2542.64, 2920.64, 2050.0, [8, 16], [0])

    def test_seed_reproducibility(self):
        a = sim_1901(3, 2e6, 2542.64, 2920.64, 2050.0, [8, 16], [0, 1], seed=9)
        b = sim_1901(3, 2e6, 2542.64, 2920.64, 2050.0, [8, 16], [0, 1], seed=9)
        assert a == b


class TestSimulateHelper:
    def test_repetitions_are_independent(self):
        results = simulate(short_scenario(2), repetitions=3)
        assert len(results) == 3
        assert len({r.successes for r in results}) > 1

    def test_aggregate_means(self):
        agg = aggregate(simulate(short_scenario(2), repetitions=4))
        values = [r.collision_probability for r in agg.runs]
        assert agg.collision_probability == pytest.approx(np.mean(values))
        assert agg.num_runs == 4
