"""FSM tests for the 1901 station (exact reference-listing semantics).

A scripted fake RNG makes every backoff draw deterministic, so each
test walks the station through a known slot-event sequence and checks
the counters against the rules of the MATLAB listing in §4.2.
"""

import numpy as np
import pytest

from repro.core.config import CsmaConfig
from repro.core.station import SlotOutcome, Station, StationState


class ScriptedRng:
    """Returns pre-programmed values for ``integers(0, cw)`` calls."""

    def __init__(self, draws):
        self.draws = list(draws)
        self.calls = []

    def integers(self, low, high):
        self.calls.append((low, high))
        if not self.draws:
            raise AssertionError("scripted RNG exhausted")
        value = self.draws.pop(0)
        assert low <= value < high, f"scripted draw {value} out of [{low},{high})"
        return value


def make_station(draws, cw=(8, 16, 32, 64), dc=(0, 1, 3, 15), **kwargs):
    config = CsmaConfig(cw=cw, dc=dc, **kwargs)
    return Station(config, ScriptedRng(draws), index=0)


def drain_idle(station, n):
    """Feed ``n`` idle slots; returns list of attempt flags."""
    flags = []
    for _ in range(n):
        flags.append(station.step())
        station.resolve(SlotOutcome.IDLE)
    return flags


def test_initial_redraw_uses_stage_zero():
    station = make_station([5])
    station.step()
    assert station.cw == 8
    assert station.bc == 5
    assert station.bpc == 1
    assert station.dc == 0  # d_0 = 0


def test_draw_zero_means_immediate_attempt():
    station = make_station([0])
    assert station.step() is True
    assert station.attempting


def test_bc_counts_down_on_idle_slots():
    station = make_station([3])
    flags = drain_idle(station, 3)
    assert flags == [False, False, False]  # redraw(3), 2, 1
    assert station.bc == 1
    assert station.step() is True  # 1 -> 0: attempt


def test_busy_slot_decrements_bc_and_dc():
    station = make_station([5, 7], cw=(8, 16), dc=(2, 3))
    station.step()  # redraw: bc=5, dc=2
    station.resolve(SlotOutcome.SUCCESS)  # someone else transmitted
    assert station.state == StationState.INIT
    station.step()  # INIT branch: bc 5->4, dc 2->1
    assert station.bc == 4
    assert station.dc == 1


def test_jump_fires_on_deferral_expiry_before_bc():
    # d_0 = 0: the *second* busy event in stage 0 triggers the jump
    # (first busy decrements nothing since DC is checked before
    # decrementing: DC==0 already -> jump at the first busy).
    station = make_station([5, 11])
    station.step()  # redraw stage 0: bc=5, dc=0
    station.resolve(SlotOutcome.COLLISION)  # other stations collided
    attempted = station.step()  # INIT: dc==0 -> jump to stage 1
    assert not attempted
    assert station.cw == 16
    assert station.bc == 11
    assert station.bpc == 2
    assert station.jumps == 1
    assert station.dc == 1  # d_1


def test_jump_does_not_count_attempt():
    station = make_station([5, 11])
    station.step()
    station.resolve(SlotOutcome.SUCCESS)
    station.step()
    assert station.attempts_this_frame == 0
    assert station.collisions == 0


def test_dc_greater_zero_survives_busy_events():
    station = make_station([4, 9], cw=(8, 16), dc=(2, 5))
    station.step()  # bc=4, dc=2
    for expected_bc, expected_dc in ((3, 1), (2, 0)):
        station.resolve(SlotOutcome.SUCCESS)
        station.step()
        assert (station.bc, station.dc) == (expected_bc, expected_dc)
    # Third busy event: dc==0 checked before decrement -> jump.
    station.resolve(SlotOutcome.SUCCESS)
    station.step()
    assert station.cw == 16
    assert station.bc == 9


def test_winner_resets_to_stage_zero():
    station = make_station([0, 3])
    station.step()  # immediate attempt
    done = station.resolve(SlotOutcome.SUCCESS, won=True)
    assert done is True
    assert station.successes == 1
    assert station.bpc == 0
    station.reset_for_new_frame()
    station.step()  # fresh frame redraw at stage 0
    assert station.cw == 8
    assert station.bc == 3


def test_collision_escalates_stage():
    station = make_station([0, 9])
    station.step()
    done = station.resolve(SlotOutcome.COLLISION)
    assert done is False
    assert station.collisions == 1
    station.step()  # INIT with bc==0 -> redraw at stage 1
    assert station.cw == 16
    assert station.bc == 9
    assert station.bpc == 2


def test_stage_clamps_at_last():
    draws = [0] * 8
    station = make_station(draws)
    for expected_cw in (8, 16, 32, 64, 64, 64):
        station.step()
        assert station.cw == expected_cw
        station.resolve(SlotOutcome.COLLISION)


def test_stage_property_clamped():
    station = make_station([0, 0, 0, 0, 0, 0])
    for _ in range(6):
        station.step()
        station.resolve(SlotOutcome.COLLISION)
    assert station.stage == 3  # num_stages - 1


def test_retry_limit_drops_frame():
    station = make_station([0, 0, 0], retry_limit=3)
    for attempt in range(3):
        station.step()
        done = station.resolve(SlotOutcome.COLLISION)
    assert done is True
    assert station.drops == 1
    assert station.collisions == 3
    assert station.bpc == 0  # fresh frame


def test_infinite_retries_never_drop():
    station = make_station([0] * 50)
    for _ in range(50):
        station.step()
        assert station.resolve(SlotOutcome.COLLISION) is False
    assert station.drops == 0


def test_dormant_station_never_attempts():
    station = make_station([])
    station.sleep()
    assert station.step() is False
    assert station.resolve(SlotOutcome.SUCCESS) is False
    assert station.dormant


def test_wake_from_dormant_starts_stage_zero():
    station = make_station([2])
    station.sleep()
    station.reset_for_new_frame()
    assert not station.dormant
    station.step()
    assert station.cw == 8
    assert station.bpc == 1


def test_idle_after_busy_returns_to_countdown():
    station = make_station([3])
    station.step()  # bc=3
    station.resolve(SlotOutcome.IDLE)
    assert station.state == StationState.IDLE
    station.step()  # idle branch: bc 3->2
    assert station.bc == 2


def test_attempts_counter_per_frame():
    station = make_station([0, 0, 5])
    station.step()
    station.resolve(SlotOutcome.COLLISION)
    station.step()  # redraw 0 -> immediate attempt again
    assert station.attempts_this_frame == 2
    station.resolve(SlotOutcome.SUCCESS, won=True)
    assert station.attempts_this_frame == 0


def test_bpc_counts_redraws_since_success():
    station = make_station([4, 9, 0])
    station.step()  # redraw 1 (stage 0)
    assert station.bpc == 1
    station.resolve(SlotOutcome.COLLISION)
    station.step()  # jump: redraw 2 (stage 1)
    assert station.bpc == 2


def test_80211_config_never_jumps():
    config = CsmaConfig.ieee80211(cw_min=4, max_stage=2)
    station = Station(config, ScriptedRng([3, 3, 3, 3]), index=0)
    station.step()  # bc=3, dc=4 (== cw, unreachable)
    for _ in range(3):
        station.resolve(SlotOutcome.SUCCESS)
        station.step()
    assert station.jumps == 0
    # After 3 busy decrements bc reached 0 -> attempt.
    assert station.attempting


def test_repr_mentions_state():
    station = make_station([2])
    assert "Station" in repr(station)
    assert "INIT" in repr(station)


def test_real_rng_draws_within_window():
    config = CsmaConfig.default_1901()
    station = Station(config, np.random.default_rng(0))
    for _ in range(200):
        station.step()
        assert 0 <= station.bc < station.cw
        station.resolve(SlotOutcome.COLLISION)
