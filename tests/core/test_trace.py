"""Direct tests for the trace containers."""

import pytest

from repro.core.trace import SlotRecord, Trace, TransmissionRecord


def tx(time, winner=None, stations=(0, 1), stages=(0, 1)):
    return TransmissionRecord(
        time_us=time,
        outcome="success" if winner is not None else "collision",
        stations=tuple(stations),
        winner=winner,
        stages=tuple(stages),
    )


class TestTransmissionRecord:
    def test_collision_flag(self):
        assert tx(1.0).is_collision
        assert not tx(1.0, winner=0, stations=(0,), stages=(0,)).is_collision


class TestTrace:
    def test_len_counts_transmissions(self):
        trace = Trace()
        trace.add_transmission(tx(1.0, winner=0, stations=(0,), stages=(0,)))
        trace.add_transmission(tx(2.0))
        assert len(trace) == 2

    def test_success_times_filtering(self):
        trace = Trace()
        trace.add_transmission(tx(1.0, winner=0, stations=(0,), stages=(0,)))
        trace.add_transmission(tx(2.0))  # collision
        trace.add_transmission(tx(3.0, winner=1, stations=(1,), stages=(2,)))
        assert trace.success_times() == [1.0, 3.0]
        assert trace.success_times(station=1) == [3.0]
        assert trace.collision_times() == [2.0]

    def test_winners_in_order(self):
        trace = Trace()
        for t, w in ((1.0, 1), (2.0, 0), (3.0, 1)):
            trace.add_transmission(tx(t, winner=w, stations=(w,), stages=(0,)))
        assert trace.winners() == [1, 0, 1]

    def test_slot_records_gated_by_flag(self):
        trace = Trace(record_slots=False)
        trace.add_slot(SlotRecord(time_us=0.0, outcome="idle",
                                  per_station=((0, 8, 0, 3),)))
        assert trace.slots == []
        trace = Trace(record_slots=True)
        trace.add_slot(SlotRecord(time_us=0.0, outcome="idle",
                                  per_station=((0, 8, 0, 3),)))
        assert len(trace.slots) == 1

    def test_stage_histogram_counts_all_attempters(self):
        trace = Trace()
        trace.add_transmission(tx(1.0, stations=(0, 1, 2), stages=(0, 1, 3)))
        trace.add_transmission(
            tx(2.0, winner=0, stations=(0,), stages=(2,))
        )
        histogram = trace.stage_at_attempt_counts(4)
        assert histogram == [1, 1, 1, 1]

    def test_stage_histogram_clamps_overflow(self):
        trace = Trace()
        trace.add_transmission(
            tx(1.0, winner=0, stations=(0,), stages=(9,))
        )
        assert trace.stage_at_attempt_counts(4) == [0, 0, 0, 1]
