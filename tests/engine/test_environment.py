"""Tests for the discrete-event Environment (scheduler/clock)."""

import pytest

from repro.engine import EmptySchedule, Environment


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_configurable():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(10.0)
    env.run()
    assert env.now == 10.0


def test_run_until_time_stops_exactly():
    env = Environment()
    env.timeout(100.0)
    env.run(until=40.0)
    assert env.now == 40.0


def test_run_until_past_time_raises():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "done"

    process = env.process(proc(env))
    assert env.run(until=process) == "done"
    assert env.now == 3.0


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(ValueError):
        env.process([1, 2, 3])


def test_run_until_processed_event_returns_immediately():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    process = env.process(proc(env))
    env.run()
    # Process already finished; run(until=...) returns its value.
    assert env.run(until=process) == 42


def test_step_raises_on_empty_schedule():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_peek_empty_is_infinite():
    import math

    assert math.isinf(Environment().peek())


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 5.0, "b"))
    env.process(proc(env, 2.0, "a"))
    env.process(proc(env, 9.0, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_run_without_until_drains_everything():
    env = Environment()
    ticks = []

    def proc(env):
        for _ in range(5):
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(proc(env))
    env.run()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_until_event_never_triggered_raises():
    env = Environment()
    pending = env.event()  # never succeeds
    env.timeout(1.0)
    with pytest.raises(RuntimeError):
        env.run(until=pending)


def test_failed_unhandled_event_propagates():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_nested_process_start():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1.0)
        return "child-done"

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == ["child-done"]
