"""Tests for Event, Timeout and condition composition."""

import pytest

from repro.engine import AllOf, AnyOf, Environment, Event, Timeout


def test_event_starts_untriggered():
    env = Environment()
    event = env.event()
    assert not event.triggered
    assert not event.processed


def test_value_unavailable_before_trigger():
    env = Environment()
    event = env.event()
    with pytest.raises(AttributeError):
        _ = event.value
    with pytest.raises(AttributeError):
        _ = event.ok


def test_succeed_sets_value_and_ok():
    env = Environment()
    event = env.event().succeed("payload")
    assert event.triggered
    assert event.ok
    assert event.value == "payload"


def test_double_succeed_raises():
    env = Environment()
    event = env.event().succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_fail_sets_not_ok():
    env = Environment()
    event = env.event().fail(ValueError("x"))
    event.defused = True
    assert event.triggered
    assert not event.ok
    env.run()


def test_negative_timeout_raises():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_value_passthrough():
    env = Environment()
    captured = []

    def proc(env):
        value = yield env.timeout(1.0, value="tick")
        captured.append(value)

    env.process(proc(env))
    env.run()
    assert captured == ["tick"]


def test_timeout_delay_property():
    env = Environment()
    assert Timeout(env, 4.2).delay == 4.2
    env.run()


def test_callbacks_fire_on_processing():
    env = Environment()
    seen = []
    event = env.timeout(1.0)
    event.callbacks.append(lambda e: seen.append(e))
    env.run()
    assert seen == [event]
    assert event.processed


def test_any_of_triggers_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        condition = yield AnyOf(env, [t1, t2])
        results.append(dict(condition.items()))

    env.process(proc(env))
    env.run()
    assert len(results) == 1
    assert list(results[0].values()) == ["fast"]


def test_all_of_waits_for_all():
    env = Environment()
    done_at = []

    def proc(env):
        t1 = env.timeout(1.0)
        t2 = env.timeout(5.0)
        yield AllOf(env, [t1, t2])
        done_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert done_at == [5.0]


def test_or_operator_builds_any_condition():
    env = Environment()
    t_at = []

    def proc(env):
        yield env.timeout(1.0) | env.timeout(9.0)
        t_at.append(env.now)

    env.process(proc(env))
    env.run(until=2.0)
    assert t_at == [1.0]


def test_and_operator_builds_all_condition():
    env = Environment()
    t_at = []

    def proc(env):
        yield env.timeout(1.0) & env.timeout(3.0)
        t_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert t_at == [3.0]


def test_empty_any_of_triggers_immediately():
    env = Environment()
    condition = AnyOf(env, [])
    assert condition.triggered


def test_condition_rejects_foreign_environment():
    env_a, env_b = Environment(), Environment()
    t = env_b.timeout(1.0)
    with pytest.raises(ValueError):
        AnyOf(env_a, [t])
    env_b.run()


def test_failed_subevent_fails_condition():
    env = Environment()
    caught = []

    def proc(env):
        bad = env.event()
        good = env.timeout(10.0)
        env.process(_failer(env, bad))
        try:
            yield bad | good
        except RuntimeError as exc:
            caught.append(str(exc))

    def _failer(env, event):
        yield env.timeout(1.0)
        event.fail(RuntimeError("sub-failure"))

    env.process(proc(env))
    env.run()
    assert caught == ["sub-failure"]
