"""Tests for generator-based processes and interrupts."""

import pytest

from repro.engine import Environment, Interrupt


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    process = env.process(proc(env))
    env.run()
    assert process.value == 99


def test_process_is_alive_until_done():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)

    def attacker(env, victim_process):
        yield env.timeout(1.0)
        victim_process.interrupt(cause="stop it")

    victim_process = env.process(victim(env))
    env.process(attacker(env, victim_process))
    env.run()
    assert causes == ["stop it"]


def test_interrupt_unsubscribes_from_target():
    env = Environment()
    resumed = []

    def victim(env):
        try:
            yield env.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            yield env.timeout(1.0)
            resumed.append("recovered")

    def attacker(env, victim_process):
        yield env.timeout(2.0)
        victim_process.interrupt()

    victim_process = env.process(victim(env))
    env.process(attacker(env, victim_process))
    env.run()
    # The interrupted timeout must not also resume the process later.
    assert resumed == ["recovered"]
    assert env.now == 10.0  # the original timeout still fired, unheard


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_self_interrupt_forbidden():
    env = Environment()
    errors = []

    def proc(env):
        me = env.active_process
        try:
            me.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert len(errors) == 1


def test_uncaught_interrupt_kills_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100.0)

    def attacker(env, victim_process):
        yield env.timeout(1.0)
        victim_process.interrupt("bang")

    victim_process = env.process(victim(env))
    env.process(attacker(env, victim_process))
    with pytest.raises(Interrupt):
        env.run()
    assert not victim_process.is_alive


def test_process_exception_propagates_if_unhandled():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("broken")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_waiting_process_receives_failure():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child died")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["child died"]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_process_target_tracks_waited_event():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    process = env.process(proc(env))
    env.run(until=1.0)
    assert process.target is not None
    env.run()


def test_immediately_returning_process():
    env = Environment()

    def instant(env):
        return 7
        yield  # pragma: no cover - makes it a generator

    process = env.process(instant(env))
    env.run()
    assert process.value == 7
