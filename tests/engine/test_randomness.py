"""Tests for seeded random substreams."""

import numpy as np
import pytest

from repro.engine import RandomStreams, uniform_backoff


def test_same_seed_same_draws():
    a = RandomStreams(42).stream("station", 0)
    b = RandomStreams(42).stream("station", 0)
    assert list(a.integers(0, 100, size=10)) == list(
        b.integers(0, 100, size=10)
    )


def test_different_keys_independent():
    streams = RandomStreams(42)
    a = list(streams.stream("station", 0).integers(0, 1000, size=20))
    b = list(streams.stream("station", 1).integers(0, 1000, size=20))
    assert a != b


def test_key_order_does_not_matter():
    s1 = RandomStreams(7)
    s1.stream("x")  # create another stream first
    first = list(s1.stream("station", 3).integers(0, 1000, size=5))
    s2 = RandomStreams(7)
    second = list(s2.stream("station", 3).integers(0, 1000, size=5))
    assert first == second


def test_stream_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_string_and_int_keys_mix():
    streams = RandomStreams(5)
    rng = streams.stream("backoff", "02:00:00:00:00:01", 1)
    assert isinstance(rng, np.random.Generator)


def test_spawn_is_independent_and_deterministic():
    parent = RandomStreams(9)
    child_a = parent.spawn("rep", 0)
    child_b = parent.spawn("rep", 1)
    again = RandomStreams(9).spawn("rep", 0)
    draws_a = list(child_a.stream("s").integers(0, 10**6, size=8))
    draws_b = list(child_b.stream("s").integers(0, 10**6, size=8))
    draws_again = list(again.stream("s").integers(0, 10**6, size=8))
    assert draws_a == draws_again
    assert draws_a != draws_b


def test_spawn_differs_from_parent_stream():
    parent = RandomStreams(9)
    direct = list(parent.stream("rep", 0).integers(0, 10**6, size=8))
    spawned = list(
        parent.spawn("rep", 0).stream("rep", 0).integers(0, 10**6, size=8)
    )
    assert direct != spawned


def test_clone_is_equivalent_but_independent():
    original = RandomStreams(13)
    consumed = list(original.stream("station", 0).integers(0, 10**6, size=5))
    clone = original.clone()
    # The clone re-derives the same substreams from scratch...
    assert list(
        clone.stream("station", 0).integers(0, 10**6, size=5)
    ) == consumed
    # ...without sharing generator state with the original: the
    # original's stream has advanced past those draws, the clone's is
    # a distinct object.
    assert clone.stream("station", 0) is not original.stream("station", 0)
    fresh = RandomStreams(13)
    assert list(
        original.stream("station", 0).integers(0, 10**6, size=5)
    ) != list(fresh.stream("station", 0).integers(0, 10**6, size=5))


def test_clone_preserves_seed_attribute():
    assert RandomStreams(21).clone().seed == 21


def test_one_stream_per_point_rep_station():
    """The runner's seeding hands every (point, rep, station) its own
    stream: same triple -> same draws, any differing coordinate ->
    different draws."""
    from repro.runner import SeedSpec, streams_for

    def first_draws(point, rep, station):
        streams = streams_for(
            SeedSpec(root_seed=3, point_index=point, repetition=rep)
        )
        return tuple(
            streams.stream("station", station).integers(0, 10**9, size=4)
        )

    grid = [
        (p, r, s) for p in (0, 1) for r in (0, 1) for s in (0, 1)
    ]
    draws = {key: first_draws(*key) for key in grid}
    # Deterministic per triple.
    for key in grid:
        assert first_draws(*key) == draws[key]
    # Pairwise distinct across the grid.
    assert len(set(draws.values())) == len(grid)


def test_repeated_scenario_reps_are_reseeded():
    """Reusing one scenario config across repetitions must not repeat
    draws: ``simulate`` spawns a fresh per-rep tree."""
    from repro.core import ScenarioConfig
    from repro.core.simulator import simulate

    scenario = ScenarioConfig.homogeneous(3, sim_time_us=5e4, seed=2)
    runs = simulate(scenario, repetitions=3)
    counters = [
        (r.successes, r.collisions, r.idle_slots) for r in runs
    ]
    assert len(set(counters)) == len(counters), (
        "identical repetition results suggest re-seeded reps share "
        "a stream"
    )
    # And the whole repetition set is itself reproducible.
    again = simulate(scenario, repetitions=3)
    assert [
        (r.successes, r.collisions, r.idle_slots) for r in again
    ] == counters


def test_uniform_backoff_bounds():
    rng = np.random.default_rng(0)
    draws = [uniform_backoff(rng, 8) for _ in range(1000)]
    assert min(draws) == 0
    assert max(draws) == 7
    assert set(draws) == set(range(8))


def test_uniform_backoff_cw_one_always_zero():
    rng = np.random.default_rng(0)
    assert all(uniform_backoff(rng, 1) == 0 for _ in range(10))


def test_uniform_backoff_rejects_bad_cw():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        uniform_backoff(rng, 0)


def test_uniform_backoff_matches_unidrnd_semantics():
    """The reference simulator draws unidrnd(CW)-1 ∈ {0..CW-1}."""
    rng = np.random.default_rng(123)
    counts = np.bincount(
        [uniform_backoff(rng, 4) for _ in range(8000)], minlength=4
    )
    # Roughly uniform over the 4 values.
    assert counts.min() > 1700
    assert counts.max() < 2300
