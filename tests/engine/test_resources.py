"""Tests for Resource and Store."""

import pytest

from repro.engine import Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    r1, r2, r3 = resource.request(), resource.request(), resource.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert resource.count == 2
    assert len(resource.queue) == 1
    env.run()


def test_release_grants_next_waiter():
    env = Environment()
    resource = Resource(env, capacity=1)
    r1 = resource.request()
    r2 = resource.request()
    assert not r2.triggered
    resource.release(r1)
    assert r2.triggered
    env.run()


def test_request_context_manager_releases():
    env = Environment()
    resource = Resource(env, capacity=1)
    hold_times = []

    def user(env, resource, tag, hold):
        with resource.request() as req:
            yield req
            yield env.timeout(hold)
            hold_times.append((tag, env.now))

    env.process(user(env, resource, "a", 2.0))
    env.process(user(env, resource, "b", 3.0))
    env.run()
    assert hold_times == [("a", 2.0), ("b", 5.0)]


def test_cancel_pending_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    resource.request()
    r2 = resource.request()
    r2.cancel()
    assert len(resource.queue) == 0
    env.run()


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    store.put("x")
    store.put("y")
    got = []

    def getter(env, store):
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(getter(env, store))
    env.run()
    assert got == ["x", "y"]


def test_store_get_waits_for_item():
    env = Environment()
    store = Store(env)
    got_at = []

    def getter(env, store):
        yield store.get()
        got_at.append(env.now)

    def putter(env, store):
        yield env.timeout(4.0)
        store.put("late")

    env.process(getter(env, store))
    env.process(putter(env, store))
    env.run()
    assert got_at == [4.0]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")
    assert p1.triggered
    assert not p2.triggered
    got = []

    def getter(env, store):
        got.append((yield store.get()))

    env.process(getter(env, store))
    env.run()
    assert got == ["a"]
    assert p2.triggered  # freed capacity admitted the second put
    assert store.items == ["b"]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    store.put(3)
    got = []

    def getter(env, store):
        got.append((yield store.get(filter=lambda item: item % 2 == 0)))

    env.process(getter(env, store))
    env.run()
    assert got == [2]
    assert store.items == [1, 3]


def test_store_filter_waits_for_match():
    env = Environment()
    store = Store(env)
    store.put("wrong")
    got_at = []

    def getter(env, store):
        yield store.get(filter=lambda item: item == "right")
        got_at.append(env.now)

    def putter(env, store):
        yield env.timeout(2.0)
        store.put("right")

    env.process(getter(env, store))
    env.process(putter(env, store))
    env.run()
    assert got_at == [2.0]
    assert store.items == ["wrong"]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
