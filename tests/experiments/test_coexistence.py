"""Tests for the boosted/legacy coexistence experiment."""

import pytest

from repro.experiments.coexistence import (
    adoption_sweep,
    coexistence_experiment,
)


def test_validation():
    with pytest.raises(ValueError):
        coexistence_experiment(0, 0)


def test_all_legacy_matches_homogeneous_default():
    from repro.core import ScenarioConfig, SlotSimulator

    mixed = coexistence_experiment(0, 5, sim_time_us=5e6, seed=2)
    homogeneous = SlotSimulator(
        ScenarioConfig.homogeneous(num_stations=5, sim_time_us=5e6, seed=2)
    ).run()
    assert mixed.total_throughput == pytest.approx(
        homogeneous.normalized_throughput, rel=0.03
    )


def test_boosted_station_gets_less_share_when_mixed():
    """The boosted schedule is politer: legacy stations out-grab it."""
    result = coexistence_experiment(2, 8, sim_time_us=1e7, seed=1)
    assert result.per_legacy_station > 2 * result.per_boosted_station


def test_full_adoption_beats_no_adoption():
    sweep = adoption_sweep(
        total_stations=10, boosted_counts=(0, 10), sim_time_us=1e7
    )
    none, full = sweep
    assert full.total_throughput > none.total_throughput
    assert full.collision_probability < none.collision_probability


def test_collisions_fall_with_adoption():
    sweep = adoption_sweep(
        total_stations=10, boosted_counts=(0, 5, 10), sim_time_us=1e7
    )
    ps = [r.collision_probability for r in sweep]
    assert ps[0] > ps[1] > ps[2]


def test_result_accounting():
    result = coexistence_experiment(3, 4, sim_time_us=5e6)
    assert result.total_throughput == pytest.approx(
        result.boosted_throughput + result.legacy_throughput, rel=1e-9
    )
