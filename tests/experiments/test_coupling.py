"""Tests for the coupling diagnostics."""

import numpy as np
import pytest

from repro.core.config import CsmaConfig
from repro.experiments.coupling import measure_coupling


def test_joint_distribution_normalized():
    result = measure_coupling(sim_time_us=3e6)
    assert result.joint.sum() == pytest.approx(1.0)
    assert (result.joint >= 0).all()
    assert result.joint.shape == (4, 4)


def test_1901_strongly_anticorrelated():
    """The Figure 1 capture pattern: one station low, the other high."""
    result = measure_coupling(sim_time_us=1e7)
    assert result.stage_correlation < -0.5
    assert result.both_at_stage0 < 0.1 * result.independent_both_at_stage0


def test_1901_far_from_decoupled():
    result = measure_coupling(sim_time_us=1e7)
    assert result.tv_distance > 0.3


def test_80211_less_coupled_than_1901():
    plc = measure_coupling(sim_time_us=1e7)
    wifi = measure_coupling(
        CsmaConfig.ieee80211(), label="802.11", sim_time_us=1e7
    )
    assert wifi.tv_distance < plc.tv_distance
    assert abs(wifi.stage_correlation) < abs(plc.stage_correlation)


def test_reproducible():
    a = measure_coupling(sim_time_us=2e6, seed=9)
    b = measure_coupling(sim_time_us=2e6, seed=9)
    assert np.allclose(a.joint, b.joint)
