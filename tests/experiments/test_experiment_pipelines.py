"""Tests for the Figure 2 / Table 2 / overhead / fairness pipelines."""

import math

import pytest

from repro.experiments.collision_probability import figure2_data, table2_data
from repro.experiments.fairness import (
    fairness_by_simulation,
    fairness_by_testbed,
)
from repro.experiments.mme_overhead import measure_mme_overhead
from repro.experiments.sweeps import standard_protocol_sweep


class TestFigure2:
    def test_three_curves_consistent_shape(self):
        points = figure2_data(
            station_counts=(1, 3, 5),
            test_duration_us=6e6,
            test_repetitions=1,
            sim_time_us=1e7,
            sim_repetitions=1,
        )
        assert [p.num_stations for p in points] == [1, 3, 5]
        # All three estimates grow with N.
        for attr in ("measured", "simulated", "analytical"):
            series = [getattr(p, attr) for p in points]
            assert series[0] < series[1] < series[2] or series[0] == 0.0

    def test_measurement_close_to_simulation(self):
        points = figure2_data(
            station_counts=(3,),
            test_duration_us=20e6,
            test_repetitions=2,
            sim_time_us=2e7,
            sim_repetitions=2,
        )
        p = points[0]
        assert p.measured == pytest.approx(p.simulated, abs=0.03)

    def test_n1_is_zero_everywhere(self):
        points = figure2_data(
            station_counts=(1,),
            test_duration_us=4e6,
            test_repetitions=1,
            sim_time_us=4e6,
        )
        assert points[0].measured == 0.0
        assert points[0].simulated == 0.0
        assert points[0].analytical == 0.0


class TestTable2:
    def test_rows_have_paper_magnitudes_when_scaled(self):
        rows = table2_data(station_counts=(2,), duration_us=24e6, seed=1)
        row = rows[0]
        # Scaled to the paper's 240 s this is ~160k acked MPDUs.
        assert row.sum_acked * 10 == pytest.approx(162020, rel=0.10)
        assert 0.05 < row.collision_probability < 0.12


class TestMmeOverhead:
    def test_result_fields(self):
        result = measure_mme_overhead(2, duration_us=6e6, seed=1)
        assert result.data_bursts > 0
        assert result.management_bursts > 0
        assert result.overhead == pytest.approx(
            result.management_bursts / result.data_bursts
        )
        assert 2 in result.burst_size_histogram  # §3.1's burst size
        assert len(result.bursts_per_source) == 2

    def test_overhead_is_small(self):
        result = measure_mme_overhead(3, duration_us=10e6, seed=1)
        assert result.overhead < 0.2


class TestFairness:
    def test_1901_less_short_term_fair_than_80211(self):
        results = fairness_by_simulation(
            station_counts=(2,), sim_time_us=1e7
        )
        plc = next(r for r in results if r.label.startswith("1901"))
        wifi = next(r for r in results if r.label.startswith("802.11"))
        assert plc.short_term_jain < wifi.short_term_jain
        assert plc.capture_probability > wifi.capture_probability
        assert plc.mean_run_length > wifi.mean_run_length

    def test_long_term_fairness_high_for_both(self):
        results = fairness_by_simulation(
            station_counts=(2,), sim_time_us=1e7
        )
        for result in results:
            assert result.long_term_jain > 0.99

    def test_testbed_fairness_matches_simulation_trend(self):
        result = fairness_by_testbed(2, duration_us=10e6, seed=1)
        assert result.num_stations == 2
        assert result.long_term_jain > 0.95
        assert result.capture_probability > 0.5  # 1901 channel capture


class TestProtocolSweep:
    def test_sweep_labels(self):
        series = standard_protocol_sweep(
            station_counts=(1, 5), sim_time_us=2e6, repetitions=1
        )
        assert set(series) == {"1901 CA1", "1901 CA3", "802.11 DCF"}

    def test_1901_beats_80211_at_small_n(self):
        """The paper's motivation: 1901's small CW0 wins at low N."""
        series = standard_protocol_sweep(
            station_counts=(2,), sim_time_us=5e6, repetitions=2
        )
        plc = series["1901 CA1"][0]
        wifi = series["802.11 DCF"][0]
        assert plc.sim_throughput > wifi.sim_throughput

    def test_model_tracks_simulation(self):
        series = standard_protocol_sweep(
            station_counts=(5,), sim_time_us=5e6, repetitions=2
        )
        for label, points in series.items():
            point = points[0]
            assert point.model_throughput == pytest.approx(
                point.sim_throughput, rel=0.08
            ), label


class TestJainVsWindow:
    def test_curves_rise_to_one(self):
        from repro.experiments.fairness import jain_vs_window

        curves = jain_vs_window(
            num_stations=2, windows=(2, 10, 50, 200), sim_time_us=2e7
        )
        for label, points in curves.items():
            values = [v for _w, v in points]
            # Non-decreasing towards long-term fairness.
            assert values[-1] > 0.95, label
            assert values[-1] >= values[0], label

    def test_1901_needs_larger_window_to_look_fair(self):
        from repro.experiments.fairness import jain_vs_window

        curves = jain_vs_window(
            num_stations=2, windows=(5, 10, 20), sim_time_us=2e7
        )
        plc = dict(curves["1901 CA1"])
        wifi = dict(curves["802.11 DCF"])
        for window in (5, 10, 20):
            assert plc[window] < wifi[window]
