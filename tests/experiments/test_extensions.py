"""Tests for the extension experiments: channel errors, unsaturated."""

import pytest

from repro.experiments.channel_errors import error_rate_sweep
from repro.experiments.unsaturated import (
    offered_load_sweep,
    saturation_rate_pps,
)


class TestChannelErrors:
    def test_error_free_baseline_has_no_retransmissions(self):
        points = error_rate_sweep(
            2, error_probabilities=(0.0,), duration_us=4e6
        )
        assert points[0].retransmissions == 0
        assert points[0].goodput_mbps > 5.0

    def test_goodput_decreases_with_error_rate(self):
        points = error_rate_sweep(
            2, error_probabilities=(0.0, 0.1), duration_us=8e6
        )
        clean, noisy = points
        assert noisy.goodput_mbps < clean.goodput_mbps
        assert noisy.retransmissions > 0

    def test_collision_estimator_stays_unbiased(self):
        """PB errors must not masquerade as collisions in ΣC/ΣA."""
        points = error_rate_sweep(
            2, error_probabilities=(0.0, 0.05), duration_us=12e6
        )
        clean, noisy = points
        assert noisy.collision_probability == pytest.approx(
            clean.collision_probability, abs=0.03
        )

    def test_all_frames_eventually_delivered(self):
        points = error_rate_sweep(
            1, error_probabilities=(0.1,), duration_us=4e6
        )
        point = points[0]
        # Retransmissions recover errored MPDUs; delivery continues.
        assert point.delivered_frames > 500
        assert point.retransmissions > 0


class TestUnsaturated:
    def test_saturation_rate_sane(self):
        # At N=3 total delivery ≈ S·1e6/Ts ≈ 0.63·1e6/2920 ≈ 215 fps;
        # per station ≈ 70–110 fps.
        knee = saturation_rate_pps(3)
        assert 60.0 < knee < 130.0

    def test_low_load_fully_served(self):
        points = offered_load_sweep(
            3, load_fractions=(0.3,), sim_time_us=1e7
        )
        point = points[0]
        assert point.delivered_fps == pytest.approx(
            point.offered_fps, rel=0.05
        )
        assert point.queue_loss_fraction < 0.01
        assert point.collision_probability < 0.05

    def test_overload_saturates_and_drops(self):
        points = offered_load_sweep(
            3, load_fractions=(0.3, 1.6), sim_time_us=1e7
        )
        low, high = points
        assert high.delivered_fps < high.offered_fps * 0.8
        assert high.queue_loss_fraction > 0.2
        assert high.mean_delay_us > low.mean_delay_us
        assert high.collision_probability > low.collision_probability

    def test_delivered_caps_near_knee(self):
        points = offered_load_sweep(
            3, load_fractions=(1.0, 2.0), sim_time_us=1e7
        )
        at_knee, overload = points
        # Beyond saturation, delivering more is impossible.
        assert overload.delivered_fps == pytest.approx(
            at_knee.delivered_fps, rel=0.15
        )


class TestSweepSeeding:
    """Regressions for the seed-reuse / single-shot-estimate fixes."""

    def test_repeated_fractions_draw_independent_seeds(self):
        """Regression: every fraction used to share the scenario seed."""
        a, b = offered_load_sweep(
            2, load_fractions=(0.5, 0.5), sim_time_us=2e6, repetitions=1
        )
        # Identical configuration at two sweep indices must not produce
        # identical samples — the point index feeds the derivation.
        assert (a.delivered_fps, a.mean_delay_us) != (
            b.delivered_fps,
            b.mean_delay_us,
        )

    def test_sweep_is_deterministic(self):
        first = offered_load_sweep(
            2, load_fractions=(0.4, 0.9), sim_time_us=2e6, repetitions=2
        )
        second = offered_load_sweep(
            2, load_fractions=(0.4, 0.9), sim_time_us=2e6, repetitions=2
        )
        assert first == second

    def test_points_pool_repetitions(self):
        (point,) = offered_load_sweep(
            2, load_fractions=(0.5,), sim_time_us=2e6, repetitions=3
        )
        assert point.repetitions == 3
        assert point.delay_samples > 0
        assert not point.flagged

    def test_starved_point_flagged_without_warning(self):
        """Regression: all-NaN delay stats used to raise RuntimeWarning."""
        import math
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            (point,) = offered_load_sweep(
                2,
                load_fractions=(1e-9,),
                sim_time_us=1e4,
                repetitions=2,
            )
        assert point.delay_samples == 0
        assert point.flagged
        assert math.isnan(point.mean_delay_us)
        assert math.isnan(point.p95_delay_us)

    def test_repetitions_must_be_positive(self):
        with pytest.raises(ValueError, match="repetitions"):
            offered_load_sweep(2, repetitions=0)
