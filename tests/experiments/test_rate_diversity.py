"""Tests for the rate-diversity (CSMA airtime anomaly) experiment."""

import pytest

from repro.experiments.rate_diversity import (
    anomaly_sweep,
    rate_diversity_experiment,
)


def test_baseline_homogeneous_and_fair():
    result = rate_diversity_experiment(
        num_stations=3, slow_snr_db=None, duration_us=6e6
    )
    counts = list(result.frames_per_station.values())
    assert min(counts) / max(counts) > 0.8
    assert result.goodput_mbps > 15.0
    assert result.slow_link_rate_mbps is None


def test_slow_outlet_drags_everyone():
    baseline = rate_diversity_experiment(3, None, duration_us=6e6)
    degraded = rate_diversity_experiment(3, 3.0, duration_us=6e6)
    # Aggregate goodput drops...
    assert degraded.goodput_mbps < baseline.goodput_mbps * 0.8
    # ...while transmission opportunities stay roughly equal (the
    # anomaly: equal frames, unequal airtime).
    counts = list(degraded.frames_per_station.values())
    assert min(counts) / max(counts) > 0.75
    assert degraded.slow_link_rate_mbps == pytest.approx(13.43, abs=0.1)


def test_fast_stations_also_lose():
    """The defining symptom: *other* stations' frame counts drop too."""
    baseline = rate_diversity_experiment(3, None, duration_us=6e6)
    degraded = rate_diversity_experiment(3, 3.0, duration_us=6e6)
    fast_macs = list(baseline.frames_per_station)[1:]
    for mac in fast_macs:
        assert (
            degraded.frames_per_station[mac]
            < baseline.frames_per_station[mac]
        )


def test_anomaly_sweep_monotone():
    results = anomaly_sweep(snrs=(None, 12.0, 3.0), duration_us=6e6)
    goodputs = [r.goodput_mbps for r in results]
    assert goodputs[0] > goodputs[1] > goodputs[2]


def test_airtime_share_exposes_the_anomaly():
    """Equal opportunities, unequal airtime: the slow station's share
    of busy airtime far exceeds 1/N while its frame share stays ~1/N."""
    degraded = rate_diversity_experiment(3, 3.0, duration_us=6e6)
    slow_mac = list(degraded.frames_per_station)[0]
    slow_airtime = degraded.airtime_share[slow_mac]
    others = [
        share for mac, share in degraded.airtime_share.items()
        if mac != slow_mac
    ]
    assert slow_airtime > 2 * max(others)
    assert slow_airtime > 0.5  # one of three stations takes most airtime
    # Frame share stays near 1/3 nonetheless.
    total_frames = sum(degraded.frames_per_station.values())
    assert degraded.frames_per_station[slow_mac] / total_frames < 0.45


def test_baseline_airtime_split_evenly():
    baseline = rate_diversity_experiment(3, None, duration_us=6e6)
    shares = list(baseline.airtime_share.values())
    assert max(shares) - min(shares) < 0.1
