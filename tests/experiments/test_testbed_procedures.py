"""Tests for testbed construction and the §3.2 procedure."""

import pytest

from repro.experiments.procedures import (
    CollisionTest,
    repeat_tests,
    run_collision_test,
)
from repro.experiments.testbed import build_testbed


class TestBuildTestbed:
    def test_structure(self):
        tb = build_testbed(3, seed=1)
        assert tb.num_stations == 3
        assert tb.destination.is_cco
        assert len(tb.sources) == 3
        assert len(tb.ampstats) == 4  # stations + D
        assert tb.faifa is None

    def test_sniffer_option(self):
        tb = build_testbed(1, enable_sniffer=True)
        assert tb.faifa is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            build_testbed(0)

    def test_association_completes_during_warmup(self):
        tb = build_testbed(4, seed=2)
        tb.run_until(2e6)
        assert tb.avln.all_associated

    def test_reset_and_read_roundtrip(self):
        tb = build_testbed(2, seed=1)
        tb.run_until(3e6)
        tb.reset_data_stats()
        rows = tb.read_data_stats()
        assert all(acked == 0 for _m, acked, _c in rows)
        tb.run_until(5e6)
        rows = tb.read_data_stats()
        assert all(acked > 0 for _m, acked, _c in rows)


class TestCollisionTest:
    def test_single_station_no_collisions(self):
        test = run_collision_test(1, duration_us=5e6, seed=1)
        assert test.sum_collided == 0
        assert test.sum_acked > 0
        assert test.collision_probability == 0.0

    def test_two_stations_in_expected_range(self):
        test = run_collision_test(2, duration_us=20e6, seed=1)
        # Paper: 0.074 measured, 0.086 slot-sim at N=2.
        assert 0.05 < test.collision_probability < 0.13

    def test_goodput_positive_and_bounded(self):
        test = run_collision_test(2, duration_us=10e6, seed=1)
        assert 4.0 < test.goodput_mbps < 12.0

    def test_acked_grows_with_n(self):
        """§3.2's verification: ΣA_i increases with N because collided
        frames are acknowledged too."""
        a_small = run_collision_test(1, duration_us=10e6, seed=3).sum_acked
        a_large = run_collision_test(5, duration_us=10e6, seed=3).sum_acked
        assert a_large > a_small

    def test_per_station_rows(self):
        test = run_collision_test(3, duration_us=5e6, seed=1)
        assert len(test.per_station) == 3
        assert all(acked > 0 for _m, acked, _c in test.per_station)

    def test_duration_respected(self):
        test = run_collision_test(1, duration_us=5e6, seed=1)
        assert test.duration_us == pytest.approx(5e6, rel=0.01)


class TestRepeatTests:
    def test_series_statistics(self):
        series = repeat_tests(2, repetitions=3, duration_us=4e6, seed=1)
        assert len(series.tests) == 3
        probabilities = [t.collision_probability for t in series.tests]
        assert len(set(probabilities)) > 1  # independent seeds
        assert series.collision_probability == pytest.approx(
            sum(probabilities) / 3
        )
        assert series.num_stations == 2
