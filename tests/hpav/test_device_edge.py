"""Edge-case tests for the emulated device."""

import pytest

from repro.core.parameters import PriorityClass
from repro.engine import Environment, RandomStreams
from repro.hpav.network import Avln
from repro.phy.framing import Mpdu, segment_into_pbs
from repro.traffic.generators import SaturatedSource
from repro.traffic.packets import mac_address, udp_frame


def build(n=1, seed=1, **kwargs):
    env = Environment()
    avln = Avln(env, RandomStreams(seed), **kwargs)
    cco = avln.add_device(mac_address(0), is_cco=True)
    stations = [avln.add_device(mac_address(i + 1)) for i in range(n)]
    env.run(until=1.5e6)
    return env, avln, cco, stations


class TestReceivePath:
    def test_mpdus_for_other_teis_ignored(self):
        env, _avln, cco, stations = build()
        before = cco.received_frames
        stranger = Mpdu(
            source_tei=9,
            dest_tei=200,  # nobody
            priority=PriorityClass.CA1,
            blocks=tuple(segment_into_pbs(1, 1514)),
        )
        cco._on_mpdu(stranger, env.now)
        assert cco.received_frames == before

    def test_rx_firmware_counter_tracks_delivery(self):
        env, _avln, cco, stations = build()
        SaturatedSource(env, stations[0], cco.mac_addr)
        env.run(until=3e6)
        rx_acked, _ = cco.firmware.snapshot(
            cco.firmware.RX, stations[0].mac_addr, 1
        )
        assert rx_acked == cco.received_frames

    def test_mac_of_tei_unknown_returns_none(self):
        env, _avln, cco, _stations = build()
        assert cco._mac_of_tei(250) is None

    def test_received_bytes_accumulate_frame_sizes(self):
        env, _avln, cco, stations = build()
        SaturatedSource(env, stations[0], cco.mac_addr)
        env.run(until=3e6)
        assert cco.received_bytes == cco.received_frames * 1514


class TestSendPath:
    def test_send_to_self_never_queued(self):
        """Bridging sanity: the host never sends to its own PLC MAC
        over the wire — but if it does, the frame goes out and comes
        back ignored (source echo suppression)."""
        env, _avln, cco, stations = build()
        station = stations[0]
        frame = udp_frame(station.mac_addr, station.mac_addr)
        before = station.received_frames
        station.send_ethernet(frame)
        env.run(until=env.now + 1e5)
        assert station.received_frames == before  # own echo dropped

    def test_priority_override(self):
        env, _avln, cco, stations = build()
        frame = udp_frame(cco.mac_addr, stations[0].mac_addr)
        assert stations[0].send_ethernet(frame, PriorityClass.CA2)
        assert (
            stations[0].node.queues.depth(PriorityClass.CA2) == 1
        )


class TestAssociationEdge:
    def test_reassociation_keeps_same_tei(self):
        env, _avln, cco, stations = build()
        station = stations[0]
        original = station.tei
        station.request_association()
        env.run(until=env.now + 3e5)
        assert station.tei == original

    def test_counters_exposed(self):
        env, _avln, cco, stations = build()
        assert stations[0].mmes_sent >= 1  # at least the assoc REQ
        assert stations[0].beacons_seen >= 1
