"""Tests for the emulated device and the AVLN management plane."""

import pytest

from repro.core.parameters import PriorityClass
from repro.engine import Environment, RandomStreams
from repro.hpav.mme import MMTYPE_CNF, MmeFrame
from repro.hpav.mme_types import (
    MmeType,
    NetworkInfoConfirm,
    NetworkInfoRequest,
    SnifferConfirm,
    SnifferRequest,
    StatsConfirm,
    StatsControl,
    StatsRequest,
)
from repro.hpav.network import Avln
from repro.traffic.generators import SaturatedSource
from repro.traffic.packets import mac_address, udp_frame

HOST = "02:ff:00:00:00:01"


def build_avln(n_stations=2, seed=1, **kwargs):
    env = Environment()
    streams = RandomStreams(seed)
    avln = Avln(env, streams, **kwargs)
    cco = avln.add_device(mac_address(0), is_cco=True)
    stations = [avln.add_device(mac_address(i + 1)) for i in range(n_stations)]
    return env, avln, cco, stations


def host_mme(device, mmtype, payload):
    frame = MmeFrame(
        dst_mac=device.mac_addr, src_mac=HOST, mmtype=mmtype, payload=payload
    )
    return MmeFrame.decode(device.host_request(frame.encode()))


class TestAssociation:
    def test_all_stations_get_teis(self):
        env, avln, cco, stations = build_avln(3)
        env.run(until=2e6)
        assert avln.all_associated
        teis = [s.tei for s in stations]
        assert sorted(teis) == [2, 3, 4]
        assert cco.tei == 1

    def test_address_tables_converge(self):
        env, avln, cco, stations = build_avln(2)
        env.run(until=2e6)
        # Broadcast CNFs + beacons teach everyone everyone.
        for device in avln.devices:
            assert len(device.address_table) == 3

    def test_single_cco_enforced(self):
        env, avln, _cco, _stations = build_avln(1)
        with pytest.raises(ValueError):
            avln.add_device(mac_address(99), is_cco=True)

    def test_find_device(self):
        env, avln, cco, _stations = build_avln(1)
        assert avln.find_device(mac_address(0)) is cco
        with pytest.raises(KeyError):
            avln.find_device("02:aa:aa:aa:aa:aa")


class TestBeacons:
    def test_beacons_observed_by_members(self):
        env, _avln, _cco, stations = build_avln(1)
        env.run(until=1e6)  # 1 s -> ~25 beacons at 40 ms period
        assert 20 <= stations[0].beacons_seen <= 30

    def test_beacons_disabled(self):
        env, _avln, _cco, stations = build_avln(
            1, beacons_enabled=False
        )
        env.run(until=1e6)
        assert stations[0].beacons_seen == 0


class TestChannelEstimation:
    def test_indications_flow_between_peers(self):
        env, _avln, cco, stations = build_avln(
            1, channel_est_period_us=100_000.0
        )
        env.run(until=2e6)
        assert cco.channel_est_seen > 0
        assert stations[0].channel_est_seen > 0

    def test_disabled(self):
        env, _avln, cco, _stations = build_avln(
            1, channel_est_enabled=False
        )
        env.run(until=2e6)
        assert cco.channel_est_seen == 0


class TestDataPath:
    def test_frames_reach_destination(self):
        env, _avln, cco, stations = build_avln(1)
        env.run(until=1e6)
        SaturatedSource(env, stations[0], cco.mac_addr)
        env.run(until=2e6)
        assert cco.received_frames > 100
        assert cco.received_bytes == cco.received_frames * 1514

    def test_unknown_destination_dropped_at_ingress(self):
        env, _avln, _cco, stations = build_avln(1)
        env.run(until=1e6)
        frame = udp_frame("02:dd:dd:dd:dd:dd", stations[0].mac_addr)
        assert stations[0].send_ethernet(frame) is False
        assert stations[0].unresolved_drops == 1


class TestHostEndpoint:
    def test_stats_get_and_reset(self):
        env, _avln, cco, stations = build_avln(1)
        env.run(until=1e6)
        SaturatedSource(env, stations[0], cco.mac_addr)
        env.run(until=2e6)
        request = StatsRequest(
            control=StatsControl.GET,
            direction=0,
            priority=1,
            peer_mac=cco.mac_addr,
        )
        reply = host_mme(stations[0], MmeType.VS_STATS, request.encode())
        assert reply.mmtype == MmeType.VS_STATS | MMTYPE_CNF
        confirm = StatsConfirm.decode(reply.payload)
        assert confirm.acked > 0
        # Reset and read back zero.
        reset = StatsRequest(
            control=StatsControl.RESET,
            direction=0,
            priority=1,
            peer_mac=cco.mac_addr,
        )
        host_mme(stations[0], MmeType.VS_STATS, reset.encode())
        reply = host_mme(stations[0], MmeType.VS_STATS, request.encode())
        assert StatsConfirm.decode(reply.payload).acked == 0

    def test_sniffer_enable_disable(self):
        env, _avln, cco, _stations = build_avln(1)
        reply = host_mme(
            cco, MmeType.VS_SNIFFER, SnifferRequest(enable=True).encode()
        )
        assert SnifferConfirm.decode(reply.payload).enabled
        reply = host_mme(
            cco, MmeType.VS_SNIFFER, SnifferRequest(enable=False).encode()
        )
        assert not SnifferConfirm.decode(reply.payload).enabled

    def test_nw_info_lists_peers(self):
        env, _avln, cco, stations = build_avln(2)
        env.run(until=2e6)
        reply = host_mme(
            cco, MmeType.VS_NW_INFO, NetworkInfoRequest().encode()
        )
        confirm = NetworkInfoConfirm.decode(reply.payload)
        macs = {mac for mac, _tei, _tx, _rx in confirm.entries}
        assert macs == {stations[0].mac_addr, stations[1].mac_addr}

    def test_unsupported_mmtype_rejected(self):
        env, _avln, cco, _stations = build_avln(1)
        frame = MmeFrame(
            dst_mac=cco.mac_addr, src_mac=HOST, mmtype=0xA0F0, payload=b""
        )
        with pytest.raises(ValueError):
            cco.host_request(frame.encode())

    def test_non_request_rejected(self):
        env, _avln, cco, _stations = build_avln(1)
        frame = MmeFrame(
            dst_mac=cco.mac_addr,
            src_mac=HOST,
            mmtype=MmeType.VS_STATS | MMTYPE_CNF,
            payload=b"",
        )
        with pytest.raises(ValueError):
            cco.host_request(frame.encode())


class TestFirmwareIntegration:
    def test_collisions_recorded_on_both_sides(self):
        env, _avln, cco, stations = build_avln(3, seed=7)
        env.run(until=1e6)
        for station in stations:
            SaturatedSource(env, station, cco.mac_addr)
        env.run(until=6e6)
        acked = collided = 0
        for station in stations:
            a, c = station.firmware.snapshot(0, cco.mac_addr, 1)
            acked += a
            collided += c
        assert collided > 0
        assert acked > collided
        # §3.2: acked includes collided, so the collision probability
        # estimator is C/A, in the expected range for N=3.
        assert 0.05 < collided / acked < 0.25
