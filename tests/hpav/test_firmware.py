"""Tests for the firmware statistics engine (§3.2 counter semantics)."""

import pytest

from repro.hpav.firmware import FirmwareStats

PEER = "02:00:00:00:00:00"


class TestCounters:
    def test_acked_includes_collided(self):
        """The §3.2-verified 1901 behaviour: ΣA contains collisions."""
        fw = FirmwareStats()
        fw.record_tx_acked(PEER, 1)
        fw.record_tx_acked(PEER, 1)
        fw.record_tx_collided(PEER, 1)
        acked, collided = fw.snapshot(FirmwareStats.TX, PEER, 1)
        assert acked == 3  # 2 successes + 1 collision
        assert collided == 1

    def test_successes_derived(self):
        fw = FirmwareStats()
        fw.record_tx_acked(PEER, 1)
        fw.record_tx_collided(PEER, 1)
        assert fw.link(FirmwareStats.TX, PEER, 1).successes == 1

    def test_links_keyed_by_priority(self):
        fw = FirmwareStats()
        fw.record_tx_acked(PEER, 1)
        fw.record_tx_acked(PEER, 3)
        assert fw.snapshot(FirmwareStats.TX, PEER, 1) == (1, 0)
        assert fw.snapshot(FirmwareStats.TX, PEER, 3) == (1, 0)

    def test_links_keyed_by_peer(self):
        fw = FirmwareStats()
        fw.record_tx_acked(PEER, 1)
        assert fw.snapshot(FirmwareStats.TX, "02:00:00:00:00:09", 1) == (0, 0)

    def test_mac_case_insensitive(self):
        fw = FirmwareStats()
        fw.record_tx_acked("02:00:00:00:00:0A", 1)
        assert fw.snapshot(FirmwareStats.TX, "02:00:00:00:00:0a", 1) == (1, 0)

    def test_rx_direction_separate(self):
        fw = FirmwareStats()
        fw.record_rx(PEER, 1)
        assert fw.snapshot(FirmwareStats.RX, PEER, 1) == (1, 0)
        assert fw.snapshot(FirmwareStats.TX, PEER, 1) == (0, 0)


class TestReset:
    def test_reset_link_only_touches_that_link(self):
        fw = FirmwareStats()
        fw.record_tx_acked(PEER, 1)
        fw.record_tx_acked(PEER, 2)
        fw.reset_link(FirmwareStats.TX, PEER, 1)
        assert fw.snapshot(FirmwareStats.TX, PEER, 1) == (0, 0)
        assert fw.snapshot(FirmwareStats.TX, PEER, 2) == (1, 0)

    def test_reset_all(self):
        fw = FirmwareStats()
        fw.record_tx_collided(PEER, 1)
        fw.record_phy_error()
        fw.reset_all()
        assert fw.totals(FirmwareStats.TX) == (0, 0)
        assert fw.phy_errors == 0


class TestTotals:
    def test_totals_sum_over_links(self):
        fw = FirmwareStats()
        fw.record_tx_acked(PEER, 1)
        fw.record_tx_collided("02:00:00:00:00:09", 2)
        assert fw.totals(FirmwareStats.TX) == (2, 1)
        assert fw.totals(FirmwareStats.RX) == (0, 0)


class TestValidation:
    def test_bad_direction(self):
        with pytest.raises(ValueError):
            FirmwareStats().link(7, PEER, 1)

    def test_bad_priority(self):
        with pytest.raises(ValueError):
            FirmwareStats().link(FirmwareStats.TX, PEER, 4)
