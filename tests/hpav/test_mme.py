"""Tests for the MME wire format."""

import pytest

from repro.hpav.mme import (
    ETHERTYPE_HOMEPLUG_AV,
    MMTYPE_CNF,
    MMTYPE_IND,
    MMTYPE_REQ,
    MmeFrame,
    pack_mac,
    unpack_mac,
)


class TestMacCodec:
    def test_roundtrip(self):
        mac = "02:0b:52:00:00:2a"
        assert unpack_mac(pack_mac(mac)) == mac

    def test_pack_bad_mac(self):
        with pytest.raises(ValueError):
            pack_mac("02:00:00")

    def test_unpack_bad_length(self):
        with pytest.raises(ValueError):
            unpack_mac(b"\x00" * 5)


class TestMmeFrame:
    def frame(self, mmtype=0xA030, payload=b"\x01\x02\x03"):
        return MmeFrame(
            dst_mac="02:00:00:00:00:01",
            src_mac="02:ff:00:00:00:01",
            mmtype=mmtype,
            payload=payload,
        )

    def test_encode_decode_roundtrip(self):
        original = self.frame()
        decoded = MmeFrame.decode(original.encode())
        assert decoded == original

    def test_wire_layout(self):
        """Header byte positions as documented in §3.2."""
        wire = self.frame().encode()
        assert wire[0:6] == pack_mac("02:00:00:00:00:01")  # ODA
        assert wire[6:12] == pack_mac("02:ff:00:00:00:01")  # OSA
        assert wire[12:14] == b"\x88\xe1"  # ethertype, network order
        assert wire[14] == 0x01  # MMV
        assert wire[15:17] == b"\x30\xa0"  # MMTYPE little-endian
        assert wire[17:19] == b"\x00\x00"  # FMI
        assert wire[19:] == b"\x01\x02\x03"  # entry payload

    def test_wrong_ethertype_rejected(self):
        wire = bytearray(self.frame().encode())
        wire[12:14] = b"\x08\x00"  # IPv4
        with pytest.raises(ValueError):
            MmeFrame.decode(bytes(wire))

    def test_truncated_frame_rejected(self):
        with pytest.raises(ValueError):
            MmeFrame.decode(b"\x00" * 10)

    def test_variant_helpers(self):
        req = self.frame(mmtype=0xA030)
        cnf = self.frame(mmtype=0xA031)
        ind = self.frame(mmtype=0xA036)
        assert req.is_request and req.variant == MMTYPE_REQ
        assert cnf.is_confirm and cnf.variant == MMTYPE_CNF
        assert ind.is_indication and ind.variant == MMTYPE_IND
        assert req.base_mmtype == cnf.base_mmtype == 0xA030
        assert ind.base_mmtype == 0xA034

    def test_reply_mmtype(self):
        assert self.frame(mmtype=0xA030).reply_mmtype() == 0xA031

    def test_reply_mmtype_only_for_requests(self):
        with pytest.raises(ValueError):
            self.frame(mmtype=0xA031).reply_mmtype()

    def test_vendor_range(self):
        assert self.frame(mmtype=0xA030).is_vendor_specific
        assert not self.frame(mmtype=0x0008).is_vendor_specific

    def test_bad_mmtype_rejected(self):
        with pytest.raises(ValueError):
            self.frame(mmtype=0x1_0000)
