"""Structured decode errors for malformed MMEs (fuzz regression).

Every typed decoder in :mod:`repro.hpav.mme_types` and the frame codec
in :mod:`repro.hpav.mme` must turn *any* malformed input into a
:class:`MmeDecodeError` (a ``ValueError`` carrying the failing field
and byte offset) — a raw ``struct.error`` escaping a decoder is the
regression these tests pin down.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpav.mme import (
    ETHERTYPE_HOMEPLUG_AV,
    MmeDecodeError,
    MmeFrame,
    VENDOR_OUI,
)
from repro.hpav.mme_types import (
    KEY_TYPE_NEK,
    KEY_TYPE_NMK,
    AssocConfirm,
    AssocRequest,
    BeaconPayload,
    ChannelEstIndication,
    GetKeyConfirm,
    GetKeyRequest,
    NetworkInfoConfirm,
    NetworkInfoRequest,
    SetKeyConfirm,
    SetKeyRequest,
    SnifferConfirm,
    SnifferIndication,
    SnifferRequest,
    StatsConfirm,
    StatsRequest,
)

MAC_A = "02:00:00:00:00:01"
MAC_B = "02:00:00:00:00:02"

#: One valid instance of every typed MME payload.
SAMPLES = [
    StatsRequest(control=0, direction=0, priority=1, peer_mac=MAC_A),
    StatsConfirm(status=0, acked=1234, collided=56),
    SnifferRequest(enable=True),
    SnifferConfirm(status=0, enabled=True),
    SnifferIndication(
        timestamp_us=77,
        source_tei=1,
        dest_tei=2,
        link_id=1,
        mpdu_count=0,
        frame_length_bytes=512,
        num_blocks=1,
        collided=False,
    ),
    AssocRequest(request_type=0, station_mac=MAC_A),
    AssocConfirm(result=0, station_mac=MAC_A, tei=3),
    BeaconPayload(nid=b"\x01" * 7, cco_tei=1, sequence=2, beacon_period_ms=50),
    ChannelEstIndication(peer_mac=MAC_B, tone_map_index=1, modulation_bits=8),
    NetworkInfoRequest(),
    NetworkInfoConfirm(entries=((MAC_A, 1, 100, 90), (MAC_B, 2, 80, 70))),
    SetKeyRequest(key_type=KEY_TYPE_NMK, key=b"\x00" * 16),
    SetKeyConfirm(result=0),
    GetKeyRequest(key_type=KEY_TYPE_NMK, nmk_proof=b"\x01" * 8),
    GetKeyConfirm(result=0, key_type=KEY_TYPE_NEK, key=b"\x02" * 16),
]

DECODERS = sorted({type(m) for m in SAMPLES}, key=lambda c: c.__name__)

#: Payloads that start with the 00:B0:52 vendor OUI.
VENDOR_SAMPLES = [m for m in SAMPLES if m.encode()[:3] == VENDOR_OUI]


def _ids(message):
    return type(message).__name__


@pytest.mark.parametrize("message", SAMPLES, ids=_ids)
class TestTruncation:
    def test_full_payload_round_trips(self, message):
        assert type(message).decode(message.encode()) == message

    def test_every_strict_prefix_is_a_structured_error(self, message):
        payload = message.encode()
        decoder = type(message).decode
        for cut in range(len(payload)):
            with pytest.raises(MmeDecodeError) as excinfo:
                decoder(payload[:cut])
            error = excinfo.value
            assert error.field, f"no field at cut {cut}"
            assert error.offset >= 0
            if error.needed is not None:
                assert error.available < error.needed


@pytest.mark.parametrize("message", VENDOR_SAMPLES, ids=_ids)
def test_wrong_oui_names_the_field(message):
    payload = b"\xff\xff\xff" + message.encode()[3:]
    with pytest.raises(MmeDecodeError) as excinfo:
        type(message).decode(payload)
    assert excinfo.value.field == "oui"
    assert excinfo.value.offset == 0


def test_nw_info_reports_the_truncated_entry():
    confirm = NetworkInfoConfirm(
        entries=((MAC_A, 1, 100, 90), (MAC_B, 2, 80, 70))
    )
    payload = confirm.encode()
    # Keep the count byte (2) but cut the second entry off.
    truncated = payload[: 4 + 11]
    with pytest.raises(MmeDecodeError) as excinfo:
        NetworkInfoConfirm.decode(truncated)
    assert excinfo.value.field == "entry[1]"
    assert excinfo.value.offset == 4 + 11


class TestFrameCodec:
    def _frame(self):
        return MmeFrame(
            dst_mac=MAC_A,
            src_mac=MAC_B,
            mmtype=0xA030,
            payload=b"\x01\x02\x03",
        )

    def test_header_truncation(self):
        wire = self._frame().encode()
        for cut in range(19):  # the fixed Ethernet + MME header
            with pytest.raises(MmeDecodeError) as excinfo:
                MmeFrame.decode(wire[:cut])
            assert excinfo.value.field == "header"
            assert excinfo.value.needed == 19
            assert excinfo.value.available == cut

    def test_wrong_ethertype(self):
        wire = bytearray(self._frame().encode())
        wire[12:14] = b"\x08\x00"  # plain IPv4 ethertype
        with pytest.raises(MmeDecodeError) as excinfo:
            MmeFrame.decode(bytes(wire))
        assert excinfo.value.field == "ethertype"
        assert excinfo.value.offset == 12
        assert "0x0800" in str(excinfo.value)

    def test_round_trip_still_works(self):
        frame = self._frame()
        decoded = MmeFrame.decode(frame.encode())
        assert decoded == frame
        assert decoded.mmtype == 0xA030
        assert ETHERTYPE_HOMEPLUG_AV == 0x88E1


@given(data=st.binary(max_size=80))
@settings(max_examples=300, deadline=None)
def test_fuzz_no_decoder_leaks_struct_error(data):
    """Arbitrary bytes: decoders succeed or raise ValueError (usually
    MmeDecodeError); ``struct.error`` must never escape."""
    for cls in DECODERS:
        try:
            cls.decode(data)
        except ValueError:
            pass
    try:
        MmeFrame.decode(data)
    except ValueError:
        pass


@given(
    sample=st.sampled_from(SAMPLES),
    index=st.integers(min_value=0, max_value=200),
    value=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=300, deadline=None)
def test_fuzz_single_byte_mutations(sample, index, value):
    """Flipping any one byte of a valid payload is handled cleanly."""
    payload = bytearray(sample.encode())
    payload[index % len(payload)] = value
    try:
        type(sample).decode(bytes(payload))
    except ValueError:
        pass
