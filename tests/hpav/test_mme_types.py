"""Round-trip tests for every typed MME payload."""

import pytest

from repro.hpav.mme_types import (
    AssocConfirm,
    AssocRequest,
    BeaconPayload,
    ChannelEstIndication,
    LinkDirection,
    MmeType,
    NetworkInfoConfirm,
    NetworkInfoRequest,
    SnifferConfirm,
    SnifferIndication,
    SnifferRequest,
    StatsConfirm,
    StatsControl,
    StatsRequest,
)

MAC = "02:00:00:00:00:07"


class TestStats:
    def test_request_roundtrip(self):
        original = StatsRequest(
            control=StatsControl.RESET,
            direction=LinkDirection.TX,
            priority=1,
            peer_mac=MAC,
        )
        assert StatsRequest.decode(original.encode()) == original

    def test_request_validation(self):
        with pytest.raises(ValueError):
            StatsRequest(control=9, direction=0, priority=1, peer_mac=MAC)
        with pytest.raises(ValueError):
            StatsRequest(control=0, direction=5, priority=1, peer_mac=MAC)
        with pytest.raises(ValueError):
            StatsRequest(control=0, direction=0, priority=7, peer_mac=MAC)

    def test_confirm_roundtrip(self):
        original = StatsConfirm(status=0, acked=162020, collided=12012)
        assert StatsConfirm.decode(original.encode()) == original

    def test_confirm_byte_offsets_within_payload(self):
        """acked at payload bytes 5..13 → frame bytes 25-32 (§3.2)."""
        payload = StatsConfirm(status=0, acked=0xAABBCCDD, collided=7).encode()
        # Payload: OUI(3) + status(2) + acked(8) + collided(8).
        assert int.from_bytes(payload[5:13], "little") == 0xAABBCCDD
        assert int.from_bytes(payload[13:21], "little") == 7

    def test_wrong_oui_rejected(self):
        payload = bytearray(
            StatsConfirm(status=0, acked=1, collided=0).encode()
        )
        payload[0] = 0xFF
        with pytest.raises(ValueError):
            StatsConfirm.decode(bytes(payload))


class TestSniffer:
    def test_request_roundtrip(self):
        assert SnifferRequest.decode(
            SnifferRequest(enable=True).encode()
        ) == SnifferRequest(enable=True)

    def test_confirm_roundtrip(self):
        original = SnifferConfirm(status=0, enabled=True)
        assert SnifferConfirm.decode(original.encode()) == original

    def test_indication_roundtrip(self):
        original = SnifferIndication(
            timestamp_us=123456789,
            source_tei=2,
            dest_tei=1,
            link_id=1,
            mpdu_count=1,
            frame_length_bytes=1536,
            num_blocks=3,
            collided=True,
        )
        assert SnifferIndication.decode(original.encode()) == original

    def test_indication_mmtype_is_0xa036(self):
        assert MmeType.VS_SNIFFER_IND == 0xA036


class TestAssoc:
    def test_request_roundtrip(self):
        original = AssocRequest(request_type=0, station_mac=MAC)
        assert AssocRequest.decode(original.encode()) == original

    def test_confirm_roundtrip(self):
        original = AssocConfirm(
            result=0, station_mac=MAC, tei=5, lease_minutes=180
        )
        assert AssocConfirm.decode(original.encode()) == original


class TestBeacon:
    def test_roundtrip(self):
        original = BeaconPayload(
            nid=b"REPRO01", cco_tei=1, sequence=42, beacon_period_ms=40
        )
        assert BeaconPayload.decode(original.encode()) == original

    def test_nid_length_enforced(self):
        with pytest.raises(ValueError):
            BeaconPayload(nid=b"x", cco_tei=1, sequence=0, beacon_period_ms=40)


class TestChannelEst:
    def test_roundtrip(self):
        original = ChannelEstIndication(
            peer_mac=MAC, tone_map_index=3, modulation_bits=8
        )
        assert ChannelEstIndication.decode(original.encode()) == original


class TestNetworkInfo:
    def test_request_roundtrip(self):
        assert (
            NetworkInfoRequest.decode(NetworkInfoRequest().encode())
            == NetworkInfoRequest()
        )

    def test_confirm_roundtrip(self):
        original = NetworkInfoConfirm(
            entries=((MAC, 5, 118, 118), ("02:00:00:00:00:08", 6, 90, 110))
        )
        assert NetworkInfoConfirm.decode(original.encode()) == original

    def test_empty_confirm(self):
        original = NetworkInfoConfirm(entries=())
        assert NetworkInfoConfirm.decode(original.encode()) == original


class TestMmTypeConstants:
    def test_paper_mmtypes(self):
        # §3.2 / §3.3 name these two explicitly.
        assert MmeType.VS_STATS == 0xA030
        assert MmeType.VS_SNIFFER == 0xA034
