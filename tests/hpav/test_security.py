"""Tests for the NMK/NEK security plane."""

import pytest

from repro.engine import Environment, RandomStreams
from repro.hpav.mme import MMTYPE_CNF, MmeFrame
from repro.hpav.mme_types import (
    KEY_TYPE_NEK,
    KEY_TYPE_NMK,
    GetKeyConfirm,
    GetKeyRequest,
    MmeType,
    SetKeyConfirm,
    SetKeyRequest,
)
from repro.hpav.network import Avln
from repro.hpav.security import (
    DEFAULT_NETWORK_PASSWORD,
    KeyStore,
    nmk_from_password,
)
from repro.traffic.generators import SaturatedSource
from repro.traffic.packets import mac_address

HOST = "02:ff:00:00:00:01"


class TestKeyDerivation:
    def test_deterministic(self):
        assert nmk_from_password("secret") == nmk_from_password("secret")

    def test_password_sensitive(self):
        assert nmk_from_password("a") != nmk_from_password("b")

    def test_sixteen_bytes(self):
        assert len(nmk_from_password(DEFAULT_NETWORK_PASSWORD)) == 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nmk_from_password("")


class TestKeyStore:
    def test_default_is_factory_password(self):
        assert KeyStore().nmk == nmk_from_password(DEFAULT_NETWORK_PASSWORD)

    def test_new_nmk_invalidates_nek(self):
        store = KeyStore()
        store.nek = b"\x01" * 16
        store.set_nmk_from_password("newpass")
        assert store.nek is None
        assert not store.authenticated

    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError):
            KeyStore(nmk=b"short")
        with pytest.raises(ValueError):
            KeyStore().set_nmk(b"short")

    def test_digest_depends_on_nmk(self):
        a, b = KeyStore(), KeyStore()
        b.set_nmk_from_password("other")
        assert a.nmk_digest() != b.nmk_digest()
        assert len(a.nmk_digest()) == 8


class TestMmeCodecs:
    def test_set_key_roundtrip(self):
        request = SetKeyRequest(key_type=KEY_TYPE_NMK, key=b"\x07" * 16)
        assert SetKeyRequest.decode(request.encode()) == request

    def test_set_key_validation(self):
        with pytest.raises(ValueError):
            SetKeyRequest(key_type=9, key=b"\x00" * 16)
        with pytest.raises(ValueError):
            SetKeyRequest(key_type=KEY_TYPE_NMK, key=b"short")

    def test_get_key_roundtrip(self):
        request = GetKeyRequest(key_type=KEY_TYPE_NEK, nmk_proof=b"\x01" * 8)
        assert GetKeyRequest.decode(request.encode()) == request
        confirm = GetKeyConfirm(
            result=0, key_type=KEY_TYPE_NEK, key=b"\x02" * 16
        )
        assert GetKeyConfirm.decode(confirm.encode()) == confirm


def build_secure_avln(passwords, seed=1):
    env = Environment()
    avln = Avln(env, RandomStreams(seed), security_enabled=True)
    cco = avln.add_device(mac_address(0), is_cco=True)
    stations = [
        avln.add_device(mac_address(i + 1), network_password=pw)
        for i, pw in enumerate(passwords)
    ]
    return env, avln, cco, stations


class TestAuthenticationFlow:
    def test_matching_password_authenticates(self):
        env, avln, cco, stations = build_secure_avln(["HomePlugAV"])
        env.run(until=3e6)
        assert stations[0].authenticated
        assert stations[0].keys.nek == cco.keys.nek

    def test_wrong_password_never_authenticates(self):
        env, avln, _cco, stations = build_secure_avln(
            ["HomePlugAV", "wrong-password"]
        )
        env.run(until=5e6)
        good, bad = stations
        assert good.authenticated
        assert bad.associated  # association is open
        assert not bad.authenticated  # ...but the NEK is refused

    def test_unauthenticated_station_sends_no_data(self):
        env, avln, cco, stations = build_secure_avln(
            ["HomePlugAV", "wrong-password"]
        )
        env.run(until=3e6)
        good_src = SaturatedSource(env, stations[0], cco.mac_addr)
        bad_src = SaturatedSource(env, stations[1], cco.mac_addr)
        env.run(until=6e6)
        assert good_src.accepted > 0
        assert bad_src.accepted == 0
        assert stations[1].unresolved_drops > 0

    def test_host_set_key_rotates_nmk(self):
        env, avln, _cco, stations = build_secure_avln(["HomePlugAV"])
        env.run(until=3e6)
        station = stations[0]
        assert station.authenticated
        new_nmk = nmk_from_password("rotated")
        request = MmeFrame(
            dst_mac=station.mac_addr,
            src_mac=HOST,
            mmtype=MmeType.CM_SET_KEY,
            payload=SetKeyRequest(
                key_type=KEY_TYPE_NMK, key=new_nmk
            ).encode(),
        )
        reply = MmeFrame.decode(station.host_request(request.encode()))
        assert reply.mmtype == MmeType.CM_SET_KEY | MMTYPE_CNF
        assert SetKeyConfirm.decode(reply.payload).result == 0
        assert station.keys.nmk == new_nmk
        assert not station.authenticated  # NEK invalidated

    def test_host_cannot_set_nek(self):
        env, avln, cco, _stations = build_secure_avln([])
        request = MmeFrame(
            dst_mac=cco.mac_addr,
            src_mac=HOST,
            mmtype=MmeType.CM_SET_KEY,
            payload=SetKeyRequest(
                key_type=KEY_TYPE_NEK, key=b"\x09" * 16
            ).encode(),
        )
        reply = MmeFrame.decode(cco.host_request(request.encode()))
        assert SetKeyConfirm.decode(reply.payload).result == 1

    def test_security_off_by_default(self):
        env = Environment()
        avln = Avln(env, RandomStreams(1))
        avln.add_device(mac_address(0), is_cco=True)
        station = avln.add_device(mac_address(1))
        env.run(until=2e6)
        assert station.associated
        assert not station.require_authentication
