"""Cross-implementation integration tests.

The repository contains three independent implementations of the same
protocol dynamics:

1. the slot-synchronous simulator (:mod:`repro.core.simulator`),
2. the µs-resolution event-driven MAC + testbed emulation
   (:mod:`repro.mac` / :mod:`repro.hpav`),
3. the analytical model (:mod:`repro.analysis`).

These tests pin down that all three tell the same story — the heart of
the Figure 2 claim.
"""

import pytest

from repro.analysis.model import Model1901
from repro.core import ScenarioConfig, SlotSimulator
from repro.experiments.procedures import run_collision_test


class TestSlotSimVsTestbedEmulation:
    """Collision probability must agree between the two simulators.

    The slot simulator has no management traffic, so we disable
    beacons/channel-est in the testbed for the apples-to-apples runs.
    """

    @pytest.mark.parametrize("n", [2, 4])
    def test_collision_probability_agreement(self, n):
        test = run_collision_test(
            n,
            duration_us=30e6,
            seed=11,
            beacons_enabled=False,
            channel_est_enabled=False,
        )
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=3e7, seed=11
        )
        slot = SlotSimulator(scenario).run()
        assert test.collision_probability == pytest.approx(
            slot.collision_probability, abs=0.02
        )

    def test_management_traffic_changes_little(self):
        """Beacons/MMEs at CA2/CA3 barely perturb the CA1 statistics
        (they win PRS and never collide with data)."""
        with_mgmt = run_collision_test(3, duration_us=20e6, seed=13)
        without = run_collision_test(
            3,
            duration_us=20e6,
            seed=13,
            beacons_enabled=False,
            channel_est_enabled=False,
        )
        assert with_mgmt.collision_probability == pytest.approx(
            without.collision_probability, abs=0.02
        )


class TestThroughputConsistency:
    def test_goodput_matches_slot_sim_throughput(self):
        """App-layer goodput at D ≈ normalized throughput × PHY rate.

        The slot sim's `frame` (2050 µs) carries 2 × 1514 bytes in the
        emulation, so goodput ≈ S × (2·1514·8 / 2050) Mbps.
        """
        n = 2
        test = run_collision_test(
            n,
            duration_us=30e6,
            seed=7,
            beacons_enabled=False,
            channel_est_enabled=False,
        )
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=3e7, seed=7
        )
        slot = SlotSimulator(scenario).run()
        payload_rate = 2 * 1514 * 8 / 2050.0  # Mbps during frame time
        predicted_goodput = slot.normalized_throughput * payload_rate
        assert test.goodput_mbps == pytest.approx(
            predicted_goodput, rel=0.05
        )


class TestAllThreeAgree:
    def test_figure2_triple_agreement_at_n3(self):
        model_p = Model1901().collision_probability(3)
        scenario = ScenarioConfig.homogeneous(
            num_stations=3, sim_time_us=3e7, seed=21
        )
        sim_p = SlotSimulator(scenario).run().collision_probability
        test_p = run_collision_test(
            3, duration_us=30e6, seed=21
        ).collision_probability
        # Simulation and emulated measurement agree tightly; the
        # decoupling analysis tracks them within its documented error.
        assert sim_p == pytest.approx(test_p, abs=0.02)
        assert model_p == pytest.approx(sim_p, abs=0.04)


class TestCustomConfigEquivalence:
    def test_boosted_config_agrees_across_simulators(self):
        """The per-priority config override of the emulated testbed
        drives the same FSM as the slot simulator: the boosted
        schedule's (lower) collision probability matches."""
        from repro.core import CsmaConfig
        from repro.core.parameters import PriorityClass

        boosted = CsmaConfig(cw=(32, 128, 512, 2048), dc=(7, 15, 31, 63))
        n = 4
        test = run_collision_test(
            n,
            duration_us=30e6,
            seed=17,
            configs={PriorityClass.CA1: boosted},
            beacons_enabled=False,
            channel_est_enabled=False,
        )
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, csma=boosted, sim_time_us=3e7, seed=17
        )
        slot = SlotSimulator(scenario).run()
        assert test.collision_probability == pytest.approx(
            slot.collision_probability, abs=0.02
        )
        # And both sit well below the default schedule's rate at N=4.
        assert test.collision_probability < 0.10
