"""End-to-end pipeline tests: paper artifacts from a cold start."""

import pytest

from repro.boost import recommend_robust, validate_by_simulation
from repro.experiments import figure2_data, table2_data
from repro.report import ascii_plot, format_table


class TestFigure2Pipeline:
    def test_full_figure2_generation_and_rendering(self):
        points = figure2_data(
            station_counts=(1, 2, 4),
            test_duration_us=8e6,
            test_repetitions=1,
            sim_time_us=8e6,
            sim_repetitions=1,
        )
        table = format_table(
            ["N", "measured", "simulated", "analysis"],
            [
                (p.num_stations, f"{p.measured:.4f}", f"{p.simulated:.4f}",
                 f"{p.analytical:.4f}")
                for p in points
            ],
        )
        assert "measured" in table
        ns = [p.num_stations for p in points]
        art = ascii_plot(
            {
                "measured": (ns, [p.measured for p in points]),
                "simulated": (ns, [p.simulated for p in points]),
                "analysis": (ns, [p.analytical for p in points]),
            },
            y_min=0.0,
        )
        assert "legend" in art


class TestTable2Pipeline:
    def test_shape_of_table2(self):
        rows = table2_data(station_counts=(1, 2, 3), duration_us=8e6)
        # ΣA grows with N (the §3.2 verification), ΣC grows from 0.
        assert rows[0].sum_collided == 0
        assert rows[1].sum_collided > 0
        assert rows[2].sum_collided > rows[1].sum_collided
        assert rows[2].sum_acked > rows[0].sum_acked


class TestBoostPipeline:
    def test_model_recommendation_verified_by_simulator(self):
        """The boosted config must beat the default in *simulation*,
        not just under the model that selected it."""
        from repro.boost.search import single_stage_family

        counts = (10,)
        best = recommend_robust(counts, candidates=single_stage_family())
        boosted_rows = validate_by_simulation(
            best, counts, sim_time_us=1e7, repetitions=2
        )
        from repro.boost.search import evaluate_candidate
        from repro.boost.objectives import worst_case_throughput
        from repro.core.config import CsmaConfig

        default_score = evaluate_candidate(
            CsmaConfig.default_1901(), worst_case_throughput(counts)
        )
        default_rows = validate_by_simulation(
            default_score, counts, sim_time_us=1e7, repetitions=2
        )
        assert boosted_rows[0][1] > default_rows[0][1]
