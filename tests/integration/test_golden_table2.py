"""Golden regression: Table 2 and ``sim_1901`` pinned bit-for-bit.

The values below were generated from the seed implementation (serial,
pre-runner) at fixed seeds.  The parallel runner, its seeding layer and
the on-disk cache must reproduce them exactly — any drift means the
physics changed, which the reproduction cannot silently absorb.

Tolerances are ≤1e-9; the counter columns are exact integers.
"""

import pytest

from repro.batch import batch_simulate
from repro.core.config import CsmaConfig, ScenarioConfig, TimingConfig
from repro.core.simulator import sim_1901
from repro.experiments.collision_probability import table2_data
from repro.runner import ExperimentRunner

#: table2_data(station_counts=(1, 2, 3), duration_us=4e6, seed=7) from
#: the seed implementation: (N, ΣC_i, ΣA_i).
GOLDEN_TABLE2 = [
    (1, 0, 2546),
    (2, 248, 2700),
    (3, 384, 2790),
]
GOLDEN_COLLISION_PROBS = [0.0, 0.09185185185185185, 0.13763440860215054]

#: sim_1901(n, 2e6, 2542.64, 2920.64, 2050.0, [8,16,32,64],
#: [0,1,3,15], seed=11) -> (collision_pr, norm_throughput).
GOLDEN_SIM_1901 = {
    2: (0.08658008658008658, 0.648701746668117),
    5: (0.24093264248704663, 0.6000256852749772),
}


def _assert_table2(rows):
    assert [
        (row.num_stations, row.sum_collided, row.sum_acked) for row in rows
    ] == GOLDEN_TABLE2
    for row, expected in zip(rows, GOLDEN_COLLISION_PROBS):
        assert row.collision_probability == pytest.approx(
            expected, abs=1e-9
        )


def test_table2_serial_matches_golden():
    _assert_table2(table2_data(station_counts=(1, 2, 3), duration_us=4e6,
                               seed=7))


def test_table2_parallel_and_cached_match_golden(tmp_path):
    kwargs = dict(station_counts=(1, 2, 3), duration_us=4e6, seed=7)
    parallel = ExperimentRunner(max_workers=4, cache_dir=tmp_path)
    _assert_table2(table2_data(runner=parallel, **kwargs))

    warm = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
    _assert_table2(table2_data(runner=warm, **kwargs))
    assert warm.counters.executed == 0


@pytest.mark.parametrize("n", sorted(GOLDEN_SIM_1901))
def test_sim_1901_matches_golden(n):
    collision_pr, throughput = sim_1901(
        n, 2e6, 2542.64, 2920.64, 2050.0, [8, 16, 32, 64], [0, 1, 3, 15],
        seed=11,
    )
    golden_p, golden_s = GOLDEN_SIM_1901[n]
    assert collision_pr == pytest.approx(golden_p, abs=1e-9)
    assert throughput == pytest.approx(golden_s, abs=1e-9)


def _sim_1901_scenario(n):
    """The exact scenario ``sim_1901`` builds for the golden pins."""
    return ScenarioConfig.homogeneous(
        num_stations=n,
        csma=CsmaConfig(cw=(8, 16, 32, 64), dc=(0, 1, 3, 15)),
        timing=TimingConfig(ts=2920.64, tc=2542.64, frame=2050.0),
        sim_time_us=2e6,
        seed=11,
    )


def test_batch_kernel_matches_sim_1901_golden():
    """The batch kernel reproduces the ``sim_1901`` pins *bit-exactly*.

    The kernel defaults to the same ``RandomStreams(scenario.seed)``
    trees the slot simulator uses, so the golden values must come out
    identical — not just within tolerance — and both points ride in a
    single mixed-N batch.
    """
    counts = sorted(GOLDEN_SIM_1901)
    results = batch_simulate([_sim_1901_scenario(n) for n in counts])
    for n, result in zip(counts, results):
        golden_p, golden_s = GOLDEN_SIM_1901[n]
        assert result.collision_probability == pytest.approx(
            golden_p, abs=1e-9
        )
        assert result.normalized_throughput == pytest.approx(
            golden_s, abs=1e-9
        )


def test_batch_kernel_agrees_with_table2_testbed_pins():
    """Kernel distributions vs the event-driven §3.2 testbed goldens.

    The testbed is a different engine (MMEs, bursts, SACKs) with a
    different draw order, so the comparison is distributional: the
    slot-model collision probability must land near the pinned testbed
    estimate at every Table 2 point, exactly at the degenerate N=1
    point, and the saturated symmetric scenarios must stay fair.
    """
    counts = [1, 2, 3]
    results = batch_simulate(
        [
            ScenarioConfig.homogeneous(
                num_stations=n, sim_time_us=4e6, seed=7
            )
            for n in counts
        ]
    )
    for result, golden_p in zip(results, GOLDEN_COLLISION_PROBS):
        if golden_p == 0.0:
            assert result.collision_probability == 0.0
        else:
            assert result.collision_probability == pytest.approx(
                golden_p, abs=0.05
            )
        assert result.successes > 1000
        assert result.jain_fairness() > 0.97
