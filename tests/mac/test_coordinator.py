"""Tests for the synchronized contention coordinator."""

import pytest

from repro.core.parameters import PriorityClass
from repro.engine import Environment, RandomStreams
from repro.mac.coordinator import ContentionCoordinator
from repro.mac.node import MacNode
from repro.mac.queueing import QueuedMme
from repro.phy.channel import PowerStrip
from repro.phy.timing import PhyTiming
from repro.traffic.packets import udp_frame

D = "02:00:00:00:00:00"


def build(num_nodes=2, seed=1):
    env = Environment()
    strip = PowerStrip()
    # These tests exercise bare MAC nodes with no device layer;
    # deliver_mpdu rejects a receiver-less strip, so give it a sink.
    strip.attach(lambda mpdu, time_us: None)
    coordinator = ContentionCoordinator(env, strip, PhyTiming())
    streams = RandomStreams(seed)
    nodes = []
    for i in range(num_nodes):
        node = MacNode(f"node{i}", streams)
        node.tei = i + 2
        node.dest_tei_of = lambda mac: 1
        coordinator.add_node(node)
        nodes.append(node)
    return env, strip, coordinator, nodes


def feed(node, count=50):
    for _ in range(count):
        node.submit_data(udp_frame(dst_mac=D, src_mac="02:00:00:00:00:02"))


class TestIdleWake:
    def test_no_traffic_no_events_forever(self):
        env, _strip, coordinator, _nodes = build()
        env.run(until=1e6)
        assert coordinator.log.rounds == 0
        assert coordinator.log.prs_phases == 0

    def test_wakes_on_submission(self):
        env, _strip, coordinator, nodes = build()
        env.run(until=1000.0)
        feed(nodes[0], 4)
        env.run(until=50_000.0)
        assert coordinator.log.successes > 0


class TestSingleNode:
    def test_all_successes_no_collisions(self):
        env, _strip, coordinator, nodes = build(num_nodes=1)
        feed(nodes[0], 20)
        env.run(until=1e6)
        assert coordinator.log.successes == 10  # 20 frames / 2 per burst
        assert coordinator.log.collisions == 0

    def test_round_timing_matches_paper_ts(self):
        """With the calibrated timing, back-to-back 2-MPDU rounds are
        spaced by Table 3's Ts plus the backoff slots between them."""
        env = Environment()
        strip = PowerStrip()
        strip.attach(lambda mpdu, time_us: None)
        timing = PhyTiming.paper_calibrated()
        coordinator = ContentionCoordinator(env, strip, timing)
        node = MacNode("solo", RandomStreams(3))
        node.tei = 2
        node.dest_tei_of = lambda mac: 1
        coordinator.add_node(node)
        observations = []
        strip.add_sniffer(observations.append)
        feed(node, 4)  # exactly two bursts
        env.run(until=1e5)
        assert coordinator.log.successes == 2
        # First SoF of round k appears after PRS + that round's backoff.
        first_round_sofs = observations[:2]
        second_round_sofs = observations[2:]
        backoff_total = coordinator.log.idle_slots * timing.slot_us
        start1 = first_round_sofs[0].time_us
        start2 = second_round_sofs[0].time_us
        # Between the two round starts: the remainder of round 1's Ts
        # (Ts includes its PRS) plus round 2's backoff slots.
        gap = start2 - start1
        backoff2 = gap - 2920.64
        assert backoff2 >= -1e-6
        assert (start1 - timing.prs_us) + backoff2 == pytest.approx(
            backoff_total, abs=1e-6
        )
        # MPDUs within a burst are delimiter+payload apart.
        assert second_round_sofs[1].time_us - start2 == pytest.approx(
            timing.delimiter_us + 1025.0, abs=1e-6
        )


class TestContention:
    def test_two_saturated_nodes_collide_sometimes(self):
        env, _strip, coordinator, nodes = build(num_nodes=2)
        for node in nodes:
            feed(node, 2000)
        env.run(until=3e6)
        assert coordinator.log.successes > 100
        assert coordinator.log.collisions > 0
        ratio = coordinator.log.collisions / (
            coordinator.log.collisions + coordinator.log.successes
        )
        assert 0.02 < ratio < 0.2  # around the slot-sim's ~0.086

    def test_mpdus_on_wire_counts_bursts(self):
        env, _strip, coordinator, nodes = build(num_nodes=1)
        feed(nodes[0], 10)
        env.run(until=1e6)
        assert coordinator.log.mpdus_on_wire == 10

    def test_sniffer_sees_all_sofs(self):
        env, strip, _coordinator, nodes = build(num_nodes=1)
        seen = []
        strip.add_sniffer(seen.append)
        feed(nodes[0], 6)
        env.run(until=1e6)
        assert len(seen) == 6
        assert [o.sof.mpdu_count for o in seen] == [1, 0, 1, 0, 1, 0]


class TestPriorityResolution:
    def test_high_priority_wins_every_round(self):
        env, strip, coordinator, nodes = build(num_nodes=2)
        # Node 0 has CA1 data, node 1 has a steady CA3 MME supply.
        feed(nodes[0], 100)
        for _ in range(20):
            nodes[1].submit_mme(
                QueuedMme(
                    payload=b"m", dest_tei=1, priority=PriorityClass.CA3
                )
            )
        observations = []
        strip.add_sniffer(observations.append)
        env.run(until=2e5)
        # While CA3 MMEs remain, every burst on the wire is CA3.
        ca3 = [o for o in observations if o.sof.link_id == 3]
        ca1 = [o for o in observations if o.sof.link_id == 1]
        assert len(ca3) == 20
        if ca1:
            first_ca1 = min(o.time_us for o in ca1)
            last_ca3 = max(o.time_us for o in ca3)
            assert first_ca1 > last_ca3

    def test_cross_class_never_collides(self):
        env, strip, coordinator, nodes = build(num_nodes=2)
        feed(nodes[0], 500)
        for _ in range(100):
            nodes[1].submit_mme(
                QueuedMme(
                    payload=b"m", dest_tei=1, priority=PriorityClass.CA2
                )
            )
        env.run(until=2e6)
        # CA2 and CA1 traffic never contend in the same round, and
        # each class has a single station: zero collisions.
        assert coordinator.log.collisions == 0


class TestDelivery:
    def test_destination_receives_mpdus(self):
        env, strip, coordinator, nodes = build(num_nodes=1)
        received = []
        strip.attach(lambda m, t: received.append(m))
        feed(nodes[0], 4)
        env.run(until=1e6)
        assert len(received) == 4
        assert all(m.dest_tei == 1 for m in received)


class TestRoundLog:
    def test_as_dict_mirrors_counters(self):
        env, _strip, coordinator, nodes = build()
        for node in nodes:
            feed(node, 20)
        env.run(until=2e6)
        log = coordinator.log
        data = log.as_dict()
        assert data["rounds"] == log.rounds
        assert data["successes"] == log.successes
        assert data["collisions"] == log.collisions
        assert data["idle_slots"] == log.idle_slots
        assert data["prs_phases"] == log.prs_phases
        assert data["mpdus_on_wire"] == log.mpdus_on_wire
        assert data["airtime_by_source"] == log.airtime_by_source
        # A copy, not a view.
        data["airtime_by_source"][999] = 1.0
        assert 999 not in log.airtime_by_source

    def test_reset_zeroes_everything(self):
        env, _strip, coordinator, nodes = build()
        feed(nodes[0], 10)
        env.run(until=1e6)
        log = coordinator.log
        assert log.successes > 0
        log.reset()
        empty = {
            "rounds": 0,
            "idle_slots": 0,
            "successes": 0,
            "collisions": 0,
            "prs_phases": 0,
            "mpdus_on_wire": 0,
            "airtime_by_source": {},
        }
        assert log.as_dict() == empty
