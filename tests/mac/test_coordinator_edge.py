"""Edge-case tests for the contention coordinator."""

import pytest

from repro.core.config import CsmaConfig
from repro.core.parameters import PriorityClass
from repro.engine import Environment, RandomStreams
from repro.mac.coordinator import ContentionCoordinator
from repro.mac.node import MacNode
from repro.phy.channel import PowerStrip
from repro.phy.timing import PhyTiming
from repro.traffic.packets import udp_frame

D = "02:00:00:00:00:00"


def build(num_nodes=2, seed=1, configs=None):
    env = Environment()
    strip = PowerStrip()
    # Bare-MAC tests have no device layer; deliver_mpdu rejects a
    # receiver-less strip, so give it a sink.
    strip.attach(lambda mpdu, time_us: None)
    coordinator = ContentionCoordinator(env, strip, PhyTiming())
    streams = RandomStreams(seed)
    nodes = []
    for i in range(num_nodes):
        node = MacNode(f"node{i}", streams, configs=configs)
        node.tei = i + 2
        node.dest_tei_of = lambda mac: 1
        coordinator.add_node(node)
        nodes.append(node)
    return env, strip, coordinator, nodes


def feed(node, count):
    for _ in range(count):
        node.submit_data(udp_frame(dst_mac=D, src_mac="02:00:00:00:00:02"))


class TestRetryLimit:
    def test_frame_dropped_after_limit(self):
        """With retry_limit=1, a collided burst is abandoned, not
        retransmitted forever."""
        config = CsmaConfig(cw=(1, 1), dc=(1, 1), retry_limit=1)
        env, _strip, coordinator, nodes = build(
            num_nodes=2,
            configs={PriorityClass.CA1: config},
        )
        # CW=1 forces both stations to attempt in the same slot:
        # guaranteed collision, then both drop (limit 1).
        feed(nodes[0], 2)
        feed(nodes[1], 2)
        env.run(until=1e6)
        assert coordinator.log.collisions >= 1
        for node in nodes:
            station = node.station_for(PriorityClass.CA1)
            assert station.drops >= 1
        # Queues fully drained: dropped or (never) delivered.
        assert all(
            node.pending_priority() is None for node in nodes
        )


class TestAirtimeAccounting:
    def test_success_airtime_attributed_to_winner(self):
        env, _strip, coordinator, nodes = build(num_nodes=1)
        feed(nodes[0], 4)  # two bursts of two MPDUs
        env.run(until=1e6)
        timing = coordinator.timing
        expected = 4 * (timing.delimiter_us + 1025.0)
        assert coordinator.log.airtime_by_source[
            nodes[0].tei
        ] == pytest.approx(expected)
        assert coordinator.log.airtime_share(nodes[0].tei) == 1.0

    def test_collision_airtime_attributed_to_all(self):
        config = CsmaConfig(cw=(1, 8), dc=(1, 8))
        env, _strip, coordinator, nodes = build(
            num_nodes=2, configs={PriorityClass.CA1: config}
        )
        feed(nodes[0], 2)
        feed(nodes[1], 2)
        env.run(until=2e5)
        assert coordinator.log.collisions >= 1
        for node in nodes:
            assert coordinator.log.airtime_by_source.get(node.tei, 0) > 0

    def test_empty_log_share_zero(self):
        env, _strip, coordinator, nodes = build(num_nodes=1)
        assert coordinator.log.airtime_share(2) == 0.0


class TestWorkSignalling:
    def test_late_joining_node_contends(self):
        env, _strip, coordinator, nodes = build(num_nodes=2)
        feed(nodes[0], 10)
        env.run(until=5e4)
        successes_before = coordinator.log.successes
        feed(nodes[1], 10)
        env.run(until=3e5)
        assert coordinator.log.successes > successes_before
        assert nodes[1].tx_bursts > 0

    def test_queue_drains_then_sleeps_then_wakes(self):
        env, _strip, coordinator, nodes = build(num_nodes=1)
        feed(nodes[0], 2)
        env.run(until=1e5)
        quiet_time = env.now
        # Nothing pending: the coordinator must be asleep (no events
        # except...); run far ahead cheaply.
        env.run(until=1e6)
        assert coordinator.log.successes == 1  # one 2-MPDU burst
        feed(nodes[0], 2)
        env.run(until=1.2e6)
        assert coordinator.log.successes == 2
        del quiet_time


class TestMaxIdleGuard:
    def test_contention_does_not_spin_forever(self):
        """A contender that never attempts (artificially) trips the
        idle-run guard instead of hanging the process."""
        env = Environment()
        strip = PowerStrip()
        strip.attach(lambda mpdu, time_us: None)
        coordinator = ContentionCoordinator(
            env, strip, PhyTiming(), max_idle_slots_between_prs=10
        )
        node = MacNode("stuck", RandomStreams(1))
        node.tei = 2
        node.dest_tei_of = lambda mac: 1
        coordinator.add_node(node)
        feed(node, 2)
        # Sabotage: the station never reports an attempt.
        node.station_for(PriorityClass.CA1)
        node.step = lambda: False
        env.run(until=5e5)
        # The loop kept cycling rounds (PRS) rather than hanging in
        # one round forever.
        assert coordinator.log.prs_phases > 1
