"""Tests for the per-device MAC node."""

import pytest

from repro.core.config import CsmaConfig
from repro.core.parameters import PriorityClass
from repro.core.station import SlotOutcome
from repro.engine import RandomStreams
from repro.mac.node import MacNode
from repro.mac.queueing import QueuedMme
from repro.traffic.packets import udp_frame

D = "02:00:00:00:00:00"


def make_node(name="node0", **kwargs):
    node = MacNode(name, RandomStreams(1), **kwargs)
    node.tei = 2
    node.dest_tei_of = lambda mac: 1
    return node


def data_frame():
    return udp_frame(dst_mac=D, src_mac="02:00:00:00:00:02")


class TestStations:
    def test_station_per_priority_class(self):
        node = make_node()
        ca1 = node.station_for(PriorityClass.CA1)
        ca3 = node.station_for(PriorityClass.CA3)
        assert ca1 is not ca3
        assert ca1.config.cw == (8, 16, 32, 64)
        assert ca3.config.cw == (8, 16, 16, 32)

    def test_station_cached(self):
        node = make_node()
        assert node.station_for(PriorityClass.CA1) is node.station_for(
            PriorityClass.CA1
        )

    def test_config_override(self):
        custom = CsmaConfig(cw=(4,), dc=(0,))
        node = make_node(configs={PriorityClass.CA1: custom})
        assert node.station_for(PriorityClass.CA1).config is custom


class TestWorkSignal:
    def test_submit_data_signals(self):
        node = make_node()
        signals = []
        node.work_signal = lambda: signals.append(1)
        assert node.submit_data(data_frame())
        assert signals == [1]

    def test_submit_mme_signals(self):
        node = make_node()
        signals = []
        node.work_signal = lambda: signals.append(1)
        node.submit_mme(
            QueuedMme(payload=b"x", dest_tei=1, priority=PriorityClass.CA3)
        )
        assert signals == [1]


class TestRounds:
    def test_begin_round_wrong_priority_defers(self):
        node = make_node()
        node.submit_data(data_frame())
        assert node.begin_round(PriorityClass.CA3) is False
        assert not node.contending

    def test_begin_round_builds_burst_and_resets(self):
        node = make_node()
        node.submit_data(data_frame())
        assert node.begin_round(PriorityClass.CA1) is True
        assert node.contending
        burst = node.take_burst()
        assert burst.source_tei == 2
        assert burst.mpdus[0].dest_tei == 1

    def test_idle_node_does_not_contend(self):
        node = make_node()
        assert node.begin_round(PriorityClass.CA1) is False
        assert node.step() is False

    def test_burst_survives_collisions(self):
        node = make_node()
        node.submit_data(data_frame())
        node.begin_round(PriorityClass.CA1)
        first = node.take_burst()
        node.step()
        node.resolve(SlotOutcome.COLLISION)
        node.begin_round(PriorityClass.CA1)
        assert node.take_burst() is first  # retransmission, same burst

    def test_success_consumes_burst(self):
        node = make_node()
        node.submit_data(data_frame())
        node.begin_round(PriorityClass.CA1)
        # Drive until the node attempts (bounded by CW0 slots).
        for _ in range(10):
            if node.step():
                break
            node.resolve(SlotOutcome.IDLE)
        node.resolve(SlotOutcome.SUCCESS, won=True)
        assert node.tx_bursts == 1
        assert not node.contending
        assert node.pending_priority() is None  # queue drained

    def test_higher_priority_frame_freezes_lower_burst(self):
        node = make_node()
        node.submit_data(data_frame())
        node.begin_round(PriorityClass.CA1)
        ca1_burst = node.take_burst()
        # A CA3 MME arrives: the node's pending priority flips.
        node.submit_mme(
            QueuedMme(payload=b"x", dest_tei=1, priority=PriorityClass.CA3)
        )
        assert node.pending_priority() == PriorityClass.CA3
        assert node.begin_round(PriorityClass.CA3) is True
        assert node.take_burst().is_management
        # Win the CA3 round.
        for _ in range(10):
            if node.step():
                break
            node.resolve(SlotOutcome.IDLE)
        node.resolve(SlotOutcome.SUCCESS, won=True)
        # The CA1 burst is still there, untouched.
        assert node.begin_round(PriorityClass.CA1) is True
        assert node.take_burst() is ca1_burst

    def test_take_burst_without_contending_raises(self):
        node = make_node()
        with pytest.raises(RuntimeError):
            node.take_burst()


class TestSackPath:
    def test_sack_handler_called(self):
        node = make_node()
        node.submit_data(data_frame())
        node.begin_round(PriorityClass.CA1)
        burst = node.take_burst()
        received = []
        node.sack_handler = lambda sack, b, outcome: received.append(outcome)
        from repro.phy.framing import SackDelimiter

        node.notify_sack(SackDelimiter.success(burst.mpdus[0]), burst, "success")
        node.notify_sack(
            SackDelimiter.collision(burst.mpdus[0]), burst, "collision"
        )
        assert received == ["success", "collision"]
        assert node.tx_collisions == 1
