"""Tests for per-priority queues and burst assembly."""

import pytest

from repro.core.parameters import PriorityClass
from repro.mac.queueing import AggregationPolicy, PriorityQueues, QueuedMme
from repro.traffic.packets import udp_frame

D = "02:00:00:00:00:00"
OTHER = "02:00:00:00:00:09"
SRC = "02:00:00:00:00:01"


def tei_of(mac):
    return {D: 1, OTHER: 9}[mac]


def frame(dst=D):
    return udp_frame(dst_mac=dst, src_mac=SRC)


class TestPolicy:
    def test_defaults_match_section_3_1(self):
        policy = AggregationPolicy()
        assert policy.frames_per_mpdu == 1
        assert policy.mpdus_per_burst == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregationPolicy(frames_per_mpdu=0)
        with pytest.raises(ValueError):
            AggregationPolicy(mpdus_per_burst=5)


class TestEnqueue:
    def test_pending_priority_highest_wins(self):
        queues = PriorityQueues()
        queues.enqueue_data(frame(), PriorityClass.CA1)
        assert queues.pending_priority() == PriorityClass.CA1
        queues.enqueue_mme(
            QueuedMme(payload=b"x", dest_tei=1, priority=PriorityClass.CA3)
        )
        assert queues.pending_priority() == PriorityClass.CA3

    def test_empty_pending_none(self):
        assert PriorityQueues().pending_priority() is None

    def test_drop_tail(self):
        queues = PriorityQueues(capacity_frames=2)
        assert queues.enqueue_data(frame(), PriorityClass.CA1)
        assert queues.enqueue_data(frame(), PriorityClass.CA1)
        assert not queues.enqueue_data(frame(), PriorityClass.CA1)
        assert queues.drops == 1

    def test_depth_counts_both_kinds(self):
        queues = PriorityQueues()
        queues.enqueue_data(frame(), PriorityClass.CA2)
        queues.enqueue_mme(
            QueuedMme(payload=b"x", dest_tei=1, priority=PriorityClass.CA2)
        )
        assert queues.depth(PriorityClass.CA2) == 2
        assert queues.total_depth() == 2


class TestBurstAssembly:
    def test_burst_of_two_mpdus(self):
        queues = PriorityQueues()
        for _ in range(4):
            queues.enqueue_data(frame(), PriorityClass.CA1)
        burst = queues.build_burst(PriorityClass.CA1, 2, tei_of)
        assert burst.size == 2
        assert queues.depth(PriorityClass.CA1) == 2  # two consumed

    def test_single_frame_single_mpdu_burst(self):
        queues = PriorityQueues()
        queues.enqueue_data(frame(), PriorityClass.CA1)
        burst = queues.build_burst(PriorityClass.CA1, 2, tei_of)
        assert burst.size == 1

    def test_mpdu_blocks_cover_frame(self):
        queues = PriorityQueues()
        queues.enqueue_data(frame(), PriorityClass.CA1)
        burst = queues.build_burst(PriorityClass.CA1, 2, tei_of)
        assert sum(pb.fill for pb in burst.mpdus[0].blocks) == 1514

    def test_burst_single_destination(self):
        queues = PriorityQueues()
        queues.enqueue_data(frame(dst=D), PriorityClass.CA1)
        queues.enqueue_data(frame(dst=OTHER), PriorityClass.CA1)
        burst = queues.build_burst(PriorityClass.CA1, 2, tei_of)
        assert burst.size == 1  # second frame goes elsewhere
        assert burst.mpdus[0].dest_tei == 1

    def test_mme_rides_alone(self):
        queues = PriorityQueues()
        queues.enqueue_mme(
            QueuedMme(payload=b"abc", dest_tei=1, priority=PriorityClass.CA3)
        )
        queues.enqueue_mme(
            QueuedMme(payload=b"def", dest_tei=1, priority=PriorityClass.CA3)
        )
        burst = queues.build_burst(PriorityClass.CA3, 2, tei_of)
        assert burst.size == 1
        assert burst.is_management
        assert burst.mpdus[0].payload == b"abc"

    def test_mme_takes_precedence_within_class(self):
        queues = PriorityQueues()
        queues.enqueue_data(frame(), PriorityClass.CA2)
        queues.enqueue_mme(
            QueuedMme(payload=b"m", dest_tei=1, priority=PriorityClass.CA2)
        )
        burst = queues.build_burst(PriorityClass.CA2, 2, tei_of)
        assert burst.is_management

    def test_empty_queue_returns_none(self):
        queues = PriorityQueues()
        assert queues.build_burst(PriorityClass.CA1, 2, tei_of) is None

    def test_aggregation_of_multiple_frames_per_mpdu(self):
        queues = PriorityQueues(
            policy=AggregationPolicy(frames_per_mpdu=2, mpdus_per_burst=1)
        )
        for _ in range(2):
            queues.enqueue_data(frame(), PriorityClass.CA1)
        burst = queues.build_burst(PriorityClass.CA1, 2, tei_of)
        assert burst.size == 1
        assert sum(pb.fill for pb in burst.mpdus[0].blocks) == 2 * 1514
