"""Locks in the disabled-probe fast path: <5 % on a fixed point.

The instrumentation's only cost with no probe attached is the
``probe is not None`` guard at each emission site.  A direct
with/without wall-clock comparison is hopelessly noisy on shared CI
hardware, so the bound is established deterministically instead:

1. run the fixed Table-2 point once uninstrumented (the baseline) and
   once with a counting subscriber — the count equals the number of
   guard passes, because each site checks its guard exactly once per
   would-be event and the probe does not perturb the simulation;
2. micro-benchmark the guard itself (attribute load + identity test,
   measured *with* loop overhead, i.e. conservatively high);
3. assert that ``guard_passes x guard_cost`` is under 5 % of the
   baseline wall time.

The same captured runs double as a determinism check: attaching a
probe must not change the simulated outcome at all.
"""

import time
import timeit

from repro.experiments.procedures import run_collision_test
from repro.experiments.testbed import build_testbed
from repro.obs import instrument_testbed

STATIONS = 3
DURATION_US = 2e6
SEED = 1


class _Site:
    """Stand-in for an instrumented component: same guard shape."""

    __slots__ = ("probe",)

    def __init__(self):
        self.probe = None


def _run_point(counting: bool):
    """(wall seconds, events emitted, CollisionTest) for the point."""
    testbed = build_testbed(STATIONS, seed=SEED)
    emitted = []
    if counting:
        probe = instrument_testbed(testbed)
        probe.subscribe(lambda event: emitted.append(None))
    started = time.perf_counter()
    test = run_collision_test(
        STATIONS, duration_us=DURATION_US, seed=SEED, testbed=testbed
    )
    return time.perf_counter() - started, len(emitted), test


def _guard_cost_s() -> float:
    """Seconds per ``probe is not None`` guard, loop overhead included."""
    site = _Site()
    number = 200_000
    return (
        timeit.timeit(
            "site.probe is not None", globals={"site": site}, number=number
        )
        / number
    )


def test_disabled_fast_path_under_5_percent():
    baseline_s, _, bare = _run_point(counting=False)
    _, guard_passes, observed = _run_point(counting=True)
    assert guard_passes > 1000, "fixed point emitted suspiciously few events"

    guard_budget_s = guard_passes * _guard_cost_s()
    assert guard_budget_s < 0.05 * baseline_s, (
        f"{guard_passes} guards x {_guard_cost_s()*1e9:.0f} ns "
        f"= {guard_budget_s*1e3:.1f} ms, over 5% of the "
        f"{baseline_s*1e3:.0f} ms baseline"
    )

    # Observability must never perturb the simulation itself.
    assert observed.per_station == bare.per_station
    assert observed.collision_probability == bare.collision_probability
    assert observed.goodput_mbps == bare.goodput_mbps


def test_emit_without_subscribers_does_not_build_state():
    """Secondary fast path: attached probe, no subscribers."""
    from repro.obs import MacProbe

    probe = MacProbe()
    event = {"event": "slot"}
    probe.emit(event)
    assert "t_us" not in event
