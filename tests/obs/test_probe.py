"""MacProbe bus semantics and component attachment."""

import pytest

from repro.experiments.testbed import build_testbed
from repro.obs.probe import (
    MacProbe,
    deinstrument,
    instrument,
    instrument_testbed,
)


class TestMacProbe:
    def test_emit_without_subscribers_drops_event(self):
        probe = MacProbe()
        event = {"event": "slot"}
        probe.emit(event)
        # Not even stamped: the no-subscriber path does no work.
        assert "t_us" not in event

    def test_emit_stamps_clock_and_fans_out(self):
        now = {"t": 42.5}
        probe = MacProbe(clock=lambda: now["t"])
        seen = []
        probe.subscribe(seen.append)
        probe.emit({"event": "slot", "outcome": "idle"})
        now["t"] = 43.0
        probe.emit({"event": "slot", "outcome": "success"})
        assert [e["t_us"] for e in seen] == [42.5, 43.0]
        assert seen[0]["outcome"] == "idle"

    def test_multiple_subscribers_all_receive(self):
        probe = MacProbe()
        a, b = [], []
        probe.subscribe(a.append)
        probe.subscribe(b.append)
        probe.emit({"event": "x"})
        assert len(a) == len(b) == 1

    def test_duplicate_subscribe_rejected(self):
        probe = MacProbe()
        callback = lambda event: None  # noqa: E731
        probe.subscribe(callback)
        with pytest.raises(ValueError):
            probe.subscribe(callback)

    def test_unsubscribe_stops_delivery(self):
        probe = MacProbe()
        seen = []
        probe.subscribe(seen.append)
        probe.unsubscribe(seen.append)
        assert probe.subscribers == 0
        probe.emit({"event": "x"})
        assert seen == []

    def test_unsubscribe_unknown_is_noop(self):
        probe = MacProbe()
        probe.unsubscribe(lambda event: None)
        assert probe.subscribers == 0

    def test_default_clock_is_zero(self):
        probe = MacProbe()
        probe.subscribe(lambda e: None)
        event = {"event": "x"}
        probe.emit(event)
        assert event["t_us"] == 0.0


class TestInstrument:
    def test_instrument_testbed_covers_all_layers(self):
        testbed = build_testbed(2, seed=1)
        probe = instrument_testbed(testbed)
        assert testbed.avln.coordinator.probe is probe
        assert testbed.avln.strip.probe is probe
        for device in testbed.avln.devices:
            assert device.node.probe is probe
        # The probe clock follows the environment.
        probe.subscribe(lambda e: None)
        event = {"event": "x"}
        probe.emit(event)
        assert event["t_us"] == testbed.env.now

    def test_deinstrument_restores_none(self):
        testbed = build_testbed(2, seed=1)
        instrument_testbed(testbed)
        nodes = [device.node for device in testbed.avln.devices]
        deinstrument(
            coordinator=testbed.avln.coordinator,
            strip=testbed.avln.strip,
            nodes=nodes,
        )
        assert testbed.avln.coordinator.probe is None
        assert testbed.avln.strip.probe is None
        assert all(node.probe is None for node in nodes)

    def test_set_probe_propagates_to_existing_stations(self):
        from repro.core.parameters import PriorityClass

        testbed = build_testbed(2, seed=1)
        node = testbed.avln.devices[0].node
        station = node.station_for(PriorityClass.CA1)
        probe = MacProbe()
        instrument(probe, nodes=[node])
        assert station.probe is probe
        assert station.probe_id == node.name
        # Lazily created stations inherit it too.
        late = node.station_for(PriorityClass.CA3)
        assert late.probe is probe
        assert late.probe_id == node.name
