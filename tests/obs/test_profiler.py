"""EngineProfiler: monitor wiring, labels, report math."""

from repro.engine import Environment
from repro.obs.profiler import EngineProfiler, ProfileReport


def _ticker(env, period, count):
    for _ in range(count):
        yield env.timeout(period)


def _sleeper(env, delay):
    yield env.timeout(delay)


class TestEnvironmentMonitor:
    def test_default_monitor_is_none(self):
        env = Environment()
        assert env.monitor is None

    def test_attach_detach(self):
        env = Environment()
        profiler = EngineProfiler().attach(env)
        assert env.monitor is profiler
        profiler.detach()
        assert env.monitor is None
        profiler.detach()  # idempotent

    def test_monitor_sees_every_event(self):
        env = Environment()
        env.process(_ticker(env, 1.0, 5))
        profiler = EngineProfiler().attach(env)
        env.run(until=10.0)
        profiler.detach()
        # Process start event + 5 timeouts + the completion event.
        assert profiler.total_events == 7


class TestLabels:
    def test_events_attributed_to_process_generator(self):
        env = Environment()
        env.process(_ticker(env, 1.0, 3))
        env.process(_sleeper(env, 2.0))
        profiler = EngineProfiler().attach(env)
        env.run(until=10.0)
        profiler.detach()
        report = profiler.report()
        assert "_ticker" in report.by_label
        assert "_sleeper" in report.by_label
        # Start + 3 timeouts + completion for the ticker.
        assert report.by_label["_ticker"]["count"] == 5
        assert report.by_label["_sleeper"]["count"] == 3


class TestReport:
    def test_report_math(self):
        env = Environment(initial_time=100.0)
        env.process(_ticker(env, 1.0, 4))
        profiler = EngineProfiler().attach(env)
        env.run(until=110.0)
        profiler.detach()
        report = profiler.report()
        assert isinstance(report, ProfileReport)
        assert report.total_events == 6
        assert report.sim_us == 10.0
        assert report.wall_s > 0
        assert report.events_per_sec > 0
        assert report.sim_us_per_wall_s > 0
        shares = [entry["share"] for entry in report.by_label.values()]
        assert sum(shares) == 1.0 or abs(sum(shares) - 1.0) < 1e-12
        assert sum(
            entry["count"] for entry in report.by_label.values()
        ) == report.total_events

    def test_report_while_attached(self):
        env = Environment()
        env.process(_ticker(env, 1.0, 3))
        profiler = EngineProfiler().attach(env)
        env.run(until=10.0)
        report = profiler.report()  # still attached: snapshot-to-now
        assert report.total_events == 5
        assert report.sim_us == 10.0
        profiler.detach()

    def test_empty_report(self):
        report = EngineProfiler().report()
        assert report.total_events == 0
        assert report.events_per_sec == 0.0

    def test_as_dict_and_format(self):
        env = Environment()
        env.process(_ticker(env, 1.0, 2))
        profiler = EngineProfiler().attach(env)
        env.run(until=5.0)
        profiler.detach()
        report = profiler.report()
        data = report.as_dict()
        assert data["total_events"] == report.total_events
        assert "_ticker" in data["by_label"]
        text = report.format()
        assert "events/sec" in text
        assert "_ticker" in text
