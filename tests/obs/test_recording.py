"""Shared event-record conventions (satellite of the obs PR)."""

import dataclasses
import json

import pytest

from repro.obs.recording import (
    JsonlEventLog,
    append_jsonl,
    as_jsonable,
    read_jsonl,
)


@dataclasses.dataclass
class _Record:
    event: str
    value: int
    optional: object = None


class _SelfSerializing:
    def as_jsonable(self):
        return {"custom": True}


class TestAsJsonable:
    def test_dict_passes_through(self):
        record = {"event": "x", "t_us": 1.0}
        assert as_jsonable(record) is record

    def test_dataclass_drops_none_fields(self):
        assert as_jsonable(_Record("x", 3)) == {"event": "x", "value": 3}
        assert as_jsonable(_Record("x", 3, optional="y")) == {
            "event": "x", "value": 3, "optional": "y"
        }

    def test_own_method_wins(self):
        assert as_jsonable(_SelfSerializing()) == {"custom": True}

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            as_jsonable(object())


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        assert append_jsonl(path, [{"a": 1}, _Record("x", 2)]) == 2
        assert read_jsonl(path) == [{"a": 1}, {"event": "x", "value": 2}]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, [{"a": 1}])
        append_jsonl(path, [{"a": 2}])
        assert [row["a"] for row in read_jsonl(path)] == [1, 2]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "log.jsonl"
        append_jsonl(path, [{"a": 1}])
        assert path.exists()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert len(read_jsonl(path)) == 2


class TestJsonlEventLog:
    def test_append_and_len(self):
        log = JsonlEventLog()
        record = log.append({"a": 1})
        assert record == {"a": 1}
        assert len(log) == 1
        assert log.events == [{"a": 1}]

    def test_incremental_flush(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = JsonlEventLog()
        log.append({"a": 1})
        assert log.flush_jsonl(path) == 1
        assert log.flush_jsonl(path) == 0  # nothing fresh
        log.append({"a": 2})
        assert log.flush_jsonl(path) == 1
        assert [row["a"] for row in read_jsonl(path)] == [1, 2]

    def test_flush_nothing_does_not_create_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        assert JsonlEventLog().flush_jsonl(path) == 0
        assert not path.exists()


class TestTelemetryUsesSharedLog:
    def test_trace_recorder_is_jsonl_event_log(self, tmp_path):
        from repro.runner.telemetry import TraceRecorder

        recorder = TraceRecorder()
        assert isinstance(recorder, JsonlEventLog)
        recorder.record("run_start", detail="3 tasks")
        recorder.record("finished", task_index=0, kind="simulate")
        assert len(recorder) == 2
        assert [e.event for e in recorder.of_kind("finished")] == [
            "finished"
        ]
        path = tmp_path / "trace.jsonl"
        recorder.flush_jsonl(path)
        rows = read_jsonl(path)
        assert rows[0]["event"] == "run_start"
        assert rows[0]["detail"] == "3 tasks"
        assert rows[1]["task_index"] == 0
        assert all("t_s" in row for row in rows)
        # None-valued optional TaskEvent fields stay off the line.
        assert "error" not in json.dumps(rows)
