"""Metrics registry: counters, gauges, histograms, probe adapter."""

import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeMetrics,
)


class TestCounter:
    def test_inc_value_total(self):
        c = Counter("tx_total", labelnames=("tei",))
        c.inc(tei=1)
        c.inc(2.5, tei=1)
        c.inc(tei=2)
        assert c.value(tei=1) == 3.5
        assert c.value(tei=2) == 1.0
        assert c.value(tei=99) == 0.0
        assert c.total() == 4.5

    def test_negative_rejected(self):
        c = Counter("n")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_label_mismatch_rejected(self):
        c = Counter("n", labelnames=("tei",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(tei=1, extra=2)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("")

    def test_reset_and_series(self):
        c = Counter("n", labelnames=("tei",))
        c.inc(3, tei=7)
        assert c.series() == {("7",): 3.0}
        c.reset()
        assert c.series() == {}

    def test_as_jsonable(self):
        c = Counter("n", labelnames=("outcome",))
        c.inc(outcome="idle")
        data = c.as_jsonable()
        assert data["kind"] == "counter"
        assert data["series"] == {"idle": 1.0}


class TestGauge:
    def test_up_down_set(self):
        g = Gauge("depth")
        g.inc(5)
        g.dec(2)
        assert g.value() == 3.0
        g.set(10)
        assert g.value() == 10.0


class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram("t", buckets=(10.0, 100.0))
        for value in (5.0, 50.0, 500.0, 7.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(562.0)
        assert snap["min"] == 5.0 and snap["max"] == 500.0

    def test_boundary_goes_to_lower_bucket(self):
        # bisect_left: a value exactly on a bound counts as <= bound.
        h = Histogram("t", buckets=(10.0,))
        h.observe(10.0)
        assert h.snapshot()["counts"] == [1, 0]

    def test_empty_snapshot(self):
        h = Histogram("t", buckets=(1.0,))
        snap = h.snapshot()
        assert snap["count"] == 0
        assert math.isnan(snap["mean"])

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())

    def test_quantile_interpolates_within_bucket(self):
        # Docstring case: min/max tighten the first bucket to [2, 8],
        # so the median interpolates to the true middle.
        h = Histogram("d_us", buckets=(10.0, 100.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_quantile_extremes_and_single_observation(self):
        h = Histogram("t", buckets=(10.0,))
        h.observe(7.0)
        # A single observation pins every quantile to itself.
        assert h.quantile(0.0) == 7.0
        assert h.quantile(0.5) == 7.0
        assert h.quantile(1.0) == 7.0

    def test_quantile_empty_is_nan_and_range_checked(self):
        h = Histogram("t", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_helper_and_snapshot_keys(self):
        h = Histogram("t", buckets=(10.0, 100.0))
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        qs = h.quantiles()
        assert set(qs) == {"p50", "p95", "p99"}
        snap = h.snapshot()
        assert snap["p50"] == h.quantile(0.5)
        assert snap["p95"] <= snap["p99"] <= snap["max"]

    def test_as_jsonable_series_carry_quantiles(self):
        h = Histogram("t", buckets=(10.0,), labelnames=("k",))
        h.observe(5.0, k="a")
        series = h.as_jsonable()["series"]["a"]
        assert series["p50"] == 5.0
        assert series["p95"] == 5.0
        assert series["p99"] == 5.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("n", labelnames=("tei",))
        b = registry.counter("n", labelnames=("tei",))
        assert a is b
        assert len(registry) == 1
        assert "n" in registry
        assert registry.get("n") is a

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n", labelnames=("tei",))
        with pytest.raises(ValueError):
            registry.counter("n", labelnames=("station",))

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("n") is counter

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.histogram("a", buckets=(1.0,)).observe(0.5)
        data = registry.as_dict()
        assert list(data) == ["a", "b"]
        assert data["b"]["series"] == {"": 1.0}
        assert data["a"]["series"][""]["count"] == 1


class TestProbeMetrics:
    def test_event_dispatch(self):
        metrics = ProbeMetrics()
        metrics({"event": "slot", "outcome": "idle"})
        metrics({"event": "slot", "outcome": "success",
                 "sources": [3], "mpdus": 2})
        metrics({"event": "slot", "outcome": "collision",
                 "sources": [2, 3], "mpdus": 2})
        metrics({"event": "airtime", "source_tei": 3, "airtime_us": 2500.0})
        metrics({"event": "backoff_stage", "stage": 1})
        metrics({"event": "dc_jump"})
        metrics({"event": "prs"})
        metrics({"event": "sack", "outcome": "success"})
        metrics({"event": "queue", "station": "sta1", "depth": 4})

        assert metrics.slots.value(outcome="idle") == 1
        assert metrics.slots.value(outcome="success") == 1
        assert metrics.slots.value(outcome="collision") == 1
        assert metrics.transmissions.value(source_tei=3, outcome="success") == 1
        assert metrics.transmissions.value(source_tei=3, outcome="collision") == 1
        assert metrics.transmissions.value(source_tei=2, outcome="collision") == 1
        assert metrics.airtime.value(source_tei=3) == 2500.0
        assert metrics.burst_airtime.snapshot()["count"] == 1
        assert metrics.stage_entries.value(stage=1) == 1
        assert metrics.dc_jumps.value() == 1
        assert metrics.prs_phases.value() == 1
        assert metrics.sacks.value(outcome="success") == 1
        assert metrics.queue_depth.value(station="sta1") == 4.0

    def test_unknown_event_ignored(self):
        metrics = ProbeMetrics()
        metrics({"event": "something_new", "t_us": 0.0})
        assert metrics.slots.total() == 0

    def test_shared_registry(self):
        registry = MetricsRegistry()
        metrics = ProbeMetrics(registry)
        assert metrics.registry is registry
        assert "mac_slots_total" in registry
