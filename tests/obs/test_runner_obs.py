"""Per-task obs capture through the runner and repeat_tests."""

from repro.experiments.procedures import repeat_tests
from repro.obs.capture import ObsConfig
from repro.runner import ExperimentRunner, Task, TaskKind
from repro.runner.cache import cache_key
from repro.runner.tasks import execute_task

STATIONS = 2
DURATION_US = 0.8e6
WARMUP_US = 0.1e6


def _payload(obs=None):
    payload = {
        "num_stations": STATIONS,
        "duration_us": DURATION_US,
        "warmup_us": WARMUP_US,
        "seed": 1,
        "testbed_kwargs": {},
    }
    if obs is not None:
        payload["obs"] = obs.as_jsonable()
    return payload


class TestCollisionTestTask:
    def test_payload_obs_produces_artifacts(self, tmp_path):
        obs = ObsConfig(dir=str(tmp_path), label="task0")
        task = Task(kind=TaskKind.COLLISION_TEST, payload=_payload(obs))
        result = execute_task(task)
        capture = result["obs"]
        assert capture["cross_check_ok"]
        assert (tmp_path / "mac_trace_task0.jsonl").exists()
        assert (tmp_path / "sof_trace_task0.jsonl").exists()

    def test_without_obs_no_key(self):
        result = execute_task(
            Task(kind=TaskKind.COLLISION_TEST, payload=_payload())
        )
        assert "obs" not in result

    def test_obs_is_part_of_cache_key(self, tmp_path):
        bare = Task(kind=TaskKind.COLLISION_TEST, payload=_payload())
        observed = Task(
            kind=TaskKind.COLLISION_TEST,
            payload=_payload(ObsConfig(dir=str(tmp_path))),
        )
        assert cache_key(bare.describe()) != cache_key(observed.describe())

    def test_observed_run_matches_bare_run(self, tmp_path):
        """Capture must not change the numbers the runner caches."""
        bare = execute_task(
            Task(kind=TaskKind.COLLISION_TEST, payload=_payload())
        )
        observed = execute_task(
            Task(
                kind=TaskKind.COLLISION_TEST,
                payload=_payload(ObsConfig(dir=str(tmp_path))),
            )
        )
        assert observed["per_station"] == bare["per_station"]
        assert observed["goodput_mbps"] == bare["goodput_mbps"]


class TestRepeatTests:
    def test_runner_path_labels_per_repetition(self, tmp_path):
        obs = ObsConfig(dir=str(tmp_path))
        series = repeat_tests(
            STATIONS,
            repetitions=2,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=1,
            runner=ExperimentRunner(max_workers=1),
            obs=obs,
        )
        assert len(series.tests) == 2
        for repetition in range(2):
            assert (tmp_path / f"mac_trace_rep{repetition}.jsonl").exists()
            assert (tmp_path / f"sof_trace_rep{repetition}.jsonl").exists()

    def test_label_prefix_preserved(self, tmp_path):
        obs = ObsConfig(dir=str(tmp_path), label="n2", sof_trace=False)
        repeat_tests(
            STATIONS,
            repetitions=1,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=1,
            runner=ExperimentRunner(max_workers=1),
            obs=obs,
        )
        assert (tmp_path / "mac_trace_n2_rep0.jsonl").exists()
        assert not (tmp_path / "sof_trace_n2_rep0.jsonl").exists()

    def test_in_process_fallback_still_captures(self, tmp_path):
        """Non-JSON-able testbed kwargs drop to the in-process loop."""
        from repro.phy.timing import PhyTiming

        obs = ObsConfig(dir=str(tmp_path))
        series = repeat_tests(
            STATIONS,
            repetitions=1,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=1,
            obs=obs,
            timing=PhyTiming(),
        )
        assert len(series.tests) == 1
        assert (tmp_path / "mac_trace_rep0.jsonl").exists()

    def test_obs_series_matches_bare_series(self, tmp_path):
        bare = repeat_tests(
            STATIONS,
            repetitions=2,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=1,
        )
        observed = repeat_tests(
            STATIONS,
            repetitions=2,
            duration_us=DURATION_US,
            warmup_us=WARMUP_US,
            seed=1,
            obs=ObsConfig(dir=str(tmp_path), sof_trace=False),
        )
        assert [t.per_station for t in observed.tests] == [
            t.per_station for t in bare.tests
        ]
