"""Acceptance: traces reproduce RoundLog metrics within 1e-9.

The ISSUE's headline criterion: running a 2-station saturated scenario
through the capture pipeline must produce a MAC trace and a SoF trace
from which ``repro.obs.analyze`` reproduces the collision probability
and the Jain index to within 1e-9 of the direct ``RoundLog`` /
``core.metrics`` computation.
"""

import math

import pytest

from repro.core import metrics as core_metrics
from repro.obs.analyze import (
    CrossCheckRow,
    analyze_mac_trace,
    analyze_sof_trace,
    collision_probability_from_trace,
    cross_check,
    jain_index_from_trace,
    sof_bursts,
    winner_sequence,
)
from repro.obs.capture import ObsConfig, observed_collision_test
from repro.obs.trace import (
    SOF_TRACE_FIELDS,
    load_mac_trace,
    load_sof_trace,
)

DURATION_US = 1.5e6
WARMUP_US = 0.2e6


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """One 2-station saturated capture shared by the module's tests."""
    out_dir = tmp_path_factory.mktemp("obs")
    config = ObsConfig(dir=str(out_dir), metrics=True, profile=True)
    test, capture = observed_collision_test(
        2, config, duration_us=DURATION_US, warmup_us=WARMUP_US, seed=1
    )
    return test, capture, config


class TestAcceptance:
    def test_cross_check_within_1e9(self, captured):
        _, capture, _ = captured
        assert capture["cross_check_ok"], capture["cross_check"]
        for row in capture["cross_check"]:
            assert row["abs_err"] <= 1e-9, row

    def test_collision_probability_matches_direct(self, captured):
        # Round-level C / (C + S): the trace must reproduce the
        # RoundLog value exactly.  (CollisionTest.collision_probability
        # is the *frame*-level SC/SA firmware estimator — a different
        # quantity, checked by the golden Table 2 tests.)
        _, capture, _ = captured
        events = load_mac_trace(capture["paths"]["mac_trace"])
        log = capture["round_log"]
        direct = core_metrics.collision_probability(
            log["collisions"], log["collisions"] + log["successes"]
        )
        assert collision_probability_from_trace(events) == pytest.approx(
            direct, abs=1e-9
        )

    def test_jain_index_matches_direct(self, captured):
        _, capture, _ = captured
        events = load_mac_trace(capture["paths"]["mac_trace"])
        log = capture["round_log"]
        shares = [
            log["airtime_by_source"][tei]
            for tei in sorted(log["airtime_by_source"])
        ]
        direct = core_metrics.jain_index(shares)
        assert jain_index_from_trace(events) == pytest.approx(
            direct, abs=1e-9
        )

    def test_artifacts_on_disk(self, captured):
        _, capture, config = captured
        assert config.mac_trace_path.exists()
        assert config.sof_trace_path.exists()
        assert config.metrics_path.exists()
        assert config.profile_path.exists()
        assert capture["mac_events"] > 0
        assert capture["sof_rows"] > 0
        assert capture["profile"]["total_events"] > 0


class TestMacTrace:
    def test_events_are_time_ordered_and_stamped(self, captured):
        _, capture, _ = captured
        events = load_mac_trace(capture["paths"]["mac_trace"])
        times = [event["t_us"] for event in events]
        assert times == sorted(times)
        assert all("event" in event for event in events)

    def test_vocabulary_present(self, captured):
        _, capture, _ = captured
        events = load_mac_trace(capture["paths"]["mac_trace"])
        kinds = {event["event"] for event in events}
        # A saturated 2-station run exercises the whole vocabulary
        # except dc_jump (stage jumps need deeper backoff stages).
        assert {"backoff_stage", "defer", "prs", "slot", "airtime",
                "sof", "sack", "queue"} <= kinds

    def test_analyze_summary(self, captured):
        _, capture, _ = captured
        events = load_mac_trace(capture["paths"]["mac_trace"])
        summary = analyze_mac_trace(events)
        assert summary["slots"]["success"] == capture["round_log"]["successes"]
        assert set(summary["airtime_by_source"]) == set(
            int(tei) for tei in capture["round_log"]["airtime_by_source"]
        )
        assert summary["win_run_lengths"]
        assert 0.0 <= summary["capture_probability"] <= 1.0
        assert summary["short_term_fairness"] > 0.0
        assert sum(summary["stage_occupancy"].values()) > 0
        winners = winner_sequence(events)
        assert len(winners) == summary["slots"]["success"]


class TestSofTrace:
    def test_schema(self, captured):
        _, capture, _ = captured
        rows = load_sof_trace(capture["paths"]["sof_trace"])
        assert rows
        for row in rows:
            assert set(row) == set(SOF_TRACE_FIELDS)

    def test_loader_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"timestamp_us": 0.0, "source_tei": 1}\n')
        with pytest.raises(ValueError, match="missing fields"):
            load_sof_trace(path)

    def test_burst_reconstruction_counts_rounds(self, captured):
        _, capture, _ = captured
        rows = load_sof_trace(capture["paths"]["sof_trace"])
        result = analyze_sof_trace(rows)
        assert result["mpdus"] == len(rows)
        log = capture["round_log"]
        # The wire's view may include one in-flight burst the RoundLog
        # never completed (run truncation), hence the ±1 windows.
        assert abs(result["successes"] - log["successes"]) <= 1
        assert abs(result["collisions"] - log["collisions"]) <= 1
        assert result["collision_probability"] == pytest.approx(
            log["collisions"] / (log["collisions"] + log["successes"]),
            abs=2e-3,
        )
        complete = [b for b in sof_bursts(rows) if b["complete"]]
        assert len(complete) >= result["bursts"] - 2


class TestCrossCheckRow:
    def test_within_tolerance(self):
        assert CrossCheckRow("m", 1.0, 1.0 + 1e-12).within(1e-9)
        assert not CrossCheckRow("m", 1.0, 1.1).within(1e-9)

    def test_both_nan_agree(self):
        nan = float("nan")
        assert CrossCheckRow("m", nan, nan).within(1e-9)
        assert not CrossCheckRow("m", nan, 1.0).within(1e-9)

    def test_as_jsonable(self):
        row = CrossCheckRow("m", 2.0, 1.5)
        data = row.as_jsonable()
        assert data == {
            "metric": "m", "trace": 2.0, "direct": 1.5, "abs_err": 0.5
        }


class TestEmptyTraces:
    def test_empty_mac_trace(self):
        summary = analyze_mac_trace([])
        assert summary["slots"] == {"idle": 0, "success": 0, "collision": 0}
        assert summary["collision_probability"] == 0.0
        assert math.isnan(summary["jain_airtime"])
        assert math.isnan(summary["short_term_fairness"])
        assert summary["win_run_lengths"] == []

    def test_empty_sof_trace(self):
        result = analyze_sof_trace([])
        assert result["bursts"] == 0
        assert result["collision_probability"] == 0.0

    def test_cross_check_against_fresh_log(self):
        from repro.mac.coordinator import RoundLog

        rows = cross_check([], RoundLog())
        assert all(row.within(1e-9) for row in rows)
