"""Tests for the bit-loading model and the link rate table."""

import pytest

from repro.phy.bitloading import (
    AV_MODULATIONS,
    DEFAULT_STRIP_SNR_DB,
    ToneMap,
    compute_tone_map,
    select_modulation,
)
from repro.phy.rates import LinkRateTable


class TestModulationSelection:
    def test_below_all_thresholds(self):
        assert select_modulation(0.0) is None

    def test_exact_threshold_selects(self):
        assert select_modulation(2.0).name == "BPSK"

    def test_high_snr_selects_top(self):
        assert select_modulation(40.0).name == "1024-QAM"

    def test_monotone_in_snr(self):
        bits = [
            (select_modulation(snr).bits_per_carrier
             if select_modulation(snr) else 0)
            for snr in (0, 3, 6, 10, 14, 20, 25, 31)
        ]
        assert bits == sorted(bits)

    def test_modulation_set_ordered(self):
        thresholds = [m.snr_threshold_db for m in AV_MODULATIONS]
        assert thresholds == sorted(thresholds)
        bits = [m.bits_per_carrier for m in AV_MODULATIONS]
        assert bits == sorted(bits)


class TestToneMap:
    def test_flat_snr_uniform_map(self):
        tone_map = compute_tone_map(24.0)
        assert all(m.name == "256-QAM" for m in tone_map.groups)

    def test_per_group_snrs(self):
        tone_map = compute_tone_map([30.0, 0.0], num_groups=2)
        assert tone_map.groups[0].name == "1024-QAM"
        assert tone_map.groups[1] is None
        assert tone_map.usable

    def test_unusable_map(self):
        assert not compute_tone_map(-5.0).usable

    def test_rate_scales_with_bits(self):
        low = compute_tone_map(2.0).payload_rate_mbps   # BPSK
        high = compute_tone_map(24.0).payload_rate_mbps  # 256-QAM
        assert high == pytest.approx(8 * low, rel=1e-9)

    def test_bpsk_rate_value(self):
        # 917 carriers × 1 bit × 24414 sym/s × 0.6 ≈ 13.4 Mbps.
        assert compute_tone_map(2.0).payload_rate_mbps == pytest.approx(
            13.43, abs=0.05
        )

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            ToneMap(groups=())
        with pytest.raises(ValueError):
            compute_tone_map([])


class TestLinkRateTable:
    def test_default_rate_everywhere(self):
        table = LinkRateTable()
        assert table.rate_mbps(2, 1) == table.rate_mbps(5, 1)
        assert table.snr(2, 1) == DEFAULT_STRIP_SNR_DB

    def test_per_link_override(self):
        table = LinkRateTable()
        table.set_snr(2, 1, 5.0)
        assert table.rate_mbps(2, 1) < table.rate_mbps(1, 2)
        assert table.snr(2, 1) == 5.0
        assert table.snr(1, 2) == DEFAULT_STRIP_SNR_DB

    def test_station_cap_degrades_both_directions(self):
        table = LinkRateTable()
        table.set_station_snr(3, 6.0)
        assert table.snr(3, 1) == 6.0
        assert table.snr(1, 3) == 6.0
        assert table.snr(2, 1) == DEFAULT_STRIP_SNR_DB

    def test_minimum_of_caps_applies(self):
        table = LinkRateTable()
        table.set_station_snr(3, 6.0)
        table.set_snr(3, 1, 10.0)
        assert table.snr(3, 1) == 6.0  # the worse constraint wins

    def test_unusable_link_raises(self):
        table = LinkRateTable()
        table.set_station_snr(3, -10.0)
        with pytest.raises(ValueError):
            table.rate_mbps(3, 1)

    def test_tone_map_cached_and_refreshed(self):
        table = LinkRateTable()
        before = table.tone_map(2, 1)
        table.set_station_snr(2, 5.0)
        after = table.tone_map(2, 1)
        assert after.payload_rate_mbps < before.payload_rate_mbps


class TestTimingIntegration:
    def test_rate_based_airtime_uses_link_rate(self):
        from repro.core.parameters import PriorityClass
        from repro.phy.framing import Mpdu, segment_into_pbs
        from repro.phy.timing import PhyTiming

        table = LinkRateTable()
        table.set_station_snr(2, 2.0)  # BPSK
        timing = PhyTiming(fixed_mpdu_airtime_us=None, link_rates=table)
        slow = Mpdu(
            source_tei=2, dest_tei=1, priority=PriorityClass.CA1,
            blocks=tuple(segment_into_pbs(1, 1514)),
        )
        fast = Mpdu(
            source_tei=3, dest_tei=1, priority=PriorityClass.CA1,
            blocks=tuple(segment_into_pbs(2, 1514)),
        )
        assert timing.payload_airtime_us(slow) == pytest.approx(
            8 * timing.payload_airtime_us(fast), rel=1e-9
        )
