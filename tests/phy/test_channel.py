"""Tests for the broadcast power-strip medium."""

import numpy as np
import pytest

from repro.core.parameters import PriorityClass
from repro.phy.channel import (
    BernoulliPbErrors,
    IdealChannel,
    PowerStrip,
    SofObservation,
)
from repro.phy.framing import Mpdu, SofDelimiter, segment_into_pbs


def mpdu(dst=1, size=1514):
    return Mpdu(
        source_tei=2, dest_tei=dst, priority=PriorityClass.CA1,
        blocks=tuple(segment_into_pbs(1, size)),
    )


def sof():
    return SofDelimiter(
        source_tei=2, dest_tei=1, link_id=1, mpdu_count=0,
        frame_length_bytes=1536, num_blocks=3,
    )


class TestAttachment:
    def test_all_receivers_hear_broadcast_bus(self):
        strip = PowerStrip()
        heard = []
        strip.attach(lambda m, t: heard.append(("a", m.dest_tei)))
        strip.attach(lambda m, t: heard.append(("b", m.dest_tei)))
        strip.deliver_mpdu(mpdu(dst=1), 0.0)
        assert heard == [("a", 1), ("b", 1)]

    def test_double_attach_rejected(self):
        strip = PowerStrip()
        handler = lambda m, t: None
        strip.attach(handler)
        with pytest.raises(ValueError):
            strip.attach(handler)

    def test_detach(self):
        strip = PowerStrip()
        heard = []
        handler = lambda m, t: heard.append(m)
        other = lambda m, t: None
        strip.attach(handler)
        strip.attach(other)
        strip.detach(handler)
        strip.deliver_mpdu(mpdu(), 0.0)
        assert heard == []
        assert strip.num_receivers == 1

    def test_deliver_without_receivers_rejected(self):
        strip = PowerStrip()
        with pytest.raises(RuntimeError, match="no attached receivers"):
            strip.deliver_mpdu(mpdu(), 0.0)

    def test_deliver_after_last_detach_rejected(self):
        strip = PowerStrip()
        handler = lambda m, t: None
        strip.attach(handler)
        strip.detach(handler)
        with pytest.raises(RuntimeError, match="no attached receivers"):
            strip.deliver_mpdu(mpdu(), 0.0)


class TestSniffers:
    def test_sniffer_sees_every_sof(self):
        strip = PowerStrip()
        seen = []
        strip.add_sniffer(seen.append)
        strip.observe_sof(sof(), 10.0, collided=False)
        strip.observe_sof(sof(), 20.0, collided=True)
        assert len(seen) == 2
        assert isinstance(seen[0], SofObservation)
        assert seen[1].collided
        assert strip.sof_count == 2

    def test_remove_sniffer(self):
        strip = PowerStrip()
        seen = []
        strip.add_sniffer(seen.append)
        strip.remove_sniffer(seen.append)
        strip.observe_sof(sof(), 0.0, collided=False)
        assert seen == []


class TestErrorModels:
    def test_ideal_channel_never_errors(self):
        flags = IdealChannel().pb_error_flags(mpdu())
        assert flags == [False, False, False]

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliPbErrors(1.5, np.random.default_rng(0))

    def test_bernoulli_rate(self):
        model = BernoulliPbErrors(0.3, np.random.default_rng(0))
        errors = sum(
            sum(model.pb_error_flags(mpdu())) for _ in range(2000)
        )
        assert errors / 6000 == pytest.approx(0.3, abs=0.03)

    def test_all_errored_mpdu_not_delivered(self):
        strip = PowerStrip(
            error_model=BernoulliPbErrors(1.0, np.random.default_rng(0))
        )
        heard = []
        strip.attach(lambda m, t: heard.append(m))
        flags = strip.deliver_mpdu(mpdu(), 0.0)
        assert all(flags)
        assert heard == []
        assert strip.delivered_mpdus == 0

    def test_delivery_counter(self):
        strip = PowerStrip()
        strip.attach(lambda m, t: None)
        strip.deliver_mpdu(mpdu(), 0.0)
        assert strip.delivered_mpdus == 1
