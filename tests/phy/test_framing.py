"""Tests for PBs, MPDUs, bursts and delimiters (§3.1)."""

import pytest

from repro.core.parameters import PriorityClass
from repro.phy.framing import (
    Burst,
    Mpdu,
    PhysicalBlock,
    SackDelimiter,
    SofDelimiter,
    segment_into_pbs,
)


class TestSegmentation:
    def test_mtu_frame_needs_three_pbs(self):
        blocks = segment_into_pbs(1, 1514)
        assert [pb.fill for pb in blocks] == [512, 512, 490]

    def test_exact_multiple(self):
        blocks = segment_into_pbs(1, 1024)
        assert [pb.fill for pb in blocks] == [512, 512]

    def test_tiny_frame_one_pb(self):
        blocks = segment_into_pbs(1, 60)
        assert len(blocks) == 1
        assert blocks[0].fill == 60

    def test_fills_sum_to_payload(self):
        for size in (1, 511, 512, 513, 5000):
            assert sum(pb.fill for pb in segment_into_pbs(1, size)) == size

    def test_offsets_are_contiguous(self):
        blocks = segment_into_pbs(1, 2000)
        assert [pb.offset for pb in blocks] == [0, 512, 1024, 1536]

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            segment_into_pbs(1, 0)

    def test_pb_fill_validation(self):
        with pytest.raises(ValueError):
            PhysicalBlock(frame_id=1, offset=0, fill=0)
        with pytest.raises(ValueError):
            PhysicalBlock(frame_id=1, offset=0, fill=513)


def data_mpdu(src=2, dst=1, priority=PriorityClass.CA1, frame_id=1, size=1514):
    return Mpdu(
        source_tei=src,
        dest_tei=dst,
        priority=priority,
        blocks=tuple(segment_into_pbs(frame_id, size)),
    )


class TestMpdu:
    def test_ids_unique(self):
        assert data_mpdu().mpdu_id != data_mpdu().mpdu_id

    def test_payload_bytes(self):
        assert data_mpdu(size=1514).payload_bytes == 1514

    def test_on_wire_padding(self):
        assert data_mpdu(size=1514).on_wire_bytes == 3 * 512

    def test_data_mpdu_needs_blocks(self):
        with pytest.raises(ValueError):
            Mpdu(source_tei=1, dest_tei=2, priority=PriorityClass.CA1,
                 blocks=())

    def test_management_mpdu_without_blocks(self):
        mpdu = Mpdu(
            source_tei=1, dest_tei=2, priority=PriorityClass.CA3,
            blocks=(), is_management=True, payload=b"\x01\x02",
        )
        assert mpdu.payload_bytes == 2
        assert mpdu.on_wire_bytes == 512  # padded to one PB


class TestBurst:
    def test_size_limits(self):
        with pytest.raises(ValueError):
            Burst(mpdus=())
        with pytest.raises(ValueError):
            Burst(mpdus=tuple(data_mpdu() for _ in range(5)))

    def test_mixed_source_rejected(self):
        with pytest.raises(ValueError):
            Burst(mpdus=(data_mpdu(src=2), data_mpdu(src=3)))

    def test_mixed_priority_rejected(self):
        with pytest.raises(ValueError):
            Burst(mpdus=(
                data_mpdu(priority=PriorityClass.CA1),
                data_mpdu(priority=PriorityClass.CA2),
            ))

    def test_sof_mpdu_count_counts_down_to_zero(self):
        burst = Burst(mpdus=(data_mpdu(), data_mpdu(), data_mpdu()))
        counts = [sof.mpdu_count for sof in burst.sof_delimiters()]
        assert counts == [2, 1, 0]  # 0 marks the last MPDU (§3.3)

    def test_sof_carries_link_id(self):
        burst = Burst(mpdus=(data_mpdu(priority=PriorityClass.CA1),))
        assert burst.sof_delimiters()[0].link_id == 1

    def test_properties(self):
        burst = Burst(mpdus=(data_mpdu(src=7),))
        assert burst.source_tei == 7
        assert burst.size == 1
        assert not burst.is_management


class TestSofDelimiter:
    def test_link_id_validation(self):
        with pytest.raises(ValueError):
            SofDelimiter(
                source_tei=1, dest_tei=2, link_id=5, mpdu_count=0,
                frame_length_bytes=512, num_blocks=1,
            )

    def test_priority_mapping(self):
        sof = SofDelimiter(
            source_tei=1, dest_tei=2, link_id=3, mpdu_count=0,
            frame_length_bytes=512, num_blocks=1,
        )
        assert sof.priority == PriorityClass.CA3
        assert sof.is_last_in_burst


class TestSack:
    def test_success_factory_no_errors(self):
        sack = SackDelimiter.success(data_mpdu())
        assert sack.ok
        assert not sack.all_errored
        assert len(sack.pb_errors) == 3

    def test_collision_factory_all_errored(self):
        """§3.2: collided frames are acked with all PBs errored."""
        sack = SackDelimiter.collision(data_mpdu())
        assert sack.all_errored
        assert not sack.ok

    def test_sack_addressing_reversed(self):
        mpdu = data_mpdu(src=2, dst=1)
        sack = SackDelimiter.success(mpdu)
        assert sack.source_tei == 1
        assert sack.dest_tei == 2
