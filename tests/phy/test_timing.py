"""Tests for the µs timing composition and Table 3 calibration."""

import pytest

from repro.core.parameters import DEFAULT_TS_US, PriorityClass
from repro.phy.framing import Burst, Mpdu, segment_into_pbs
from repro.phy.timing import (
    DEFAULT_MPDU_AIRTIME_US,
    PhyTiming,
    default_phy_rate_calibrated,
)


def mpdu(size=1514, management=False):
    if management:
        return Mpdu(
            source_tei=1, dest_tei=2, priority=PriorityClass.CA3,
            blocks=(), is_management=True, payload=b"x" * size,
        )
    return Mpdu(
        source_tei=1, dest_tei=2, priority=PriorityClass.CA1,
        blocks=tuple(segment_into_pbs(1, size)),
    )


class TestDefaults:
    def test_default_mpdu_airtime_is_half_frame(self):
        assert DEFAULT_MPDU_AIRTIME_US == pytest.approx(1025.0)

    def test_calibrated_rate(self):
        # 1514 bytes in 1025 µs ≈ 11.8 Mbps.
        assert default_phy_rate_calibrated() == pytest.approx(11.82, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhyTiming(slot_us=0.0)
        with pytest.raises(ValueError):
            PhyTiming(phy_rate_mbps=-1.0)


class TestAirtime:
    def test_fixed_airtime_for_data(self):
        timing = PhyTiming()
        assert timing.payload_airtime_us(mpdu()) == pytest.approx(1025.0)

    def test_rate_based_airtime_when_unfixed(self):
        timing = PhyTiming(fixed_mpdu_airtime_us=None, phy_rate_mbps=8.0)
        # 3 PBs on the wire = 1536 bytes = 12288 bits at 8 bits/µs.
        assert timing.payload_airtime_us(mpdu()) == pytest.approx(1536.0)

    def test_management_always_rate_based(self):
        timing = PhyTiming(phy_rate_mbps=8.0)
        m = mpdu(size=100, management=True)
        # Management MPDUs pad to one PB: 512 bytes at 8 bits/µs.
        assert timing.payload_airtime_us(m) == pytest.approx(512.0)

    def test_burst_airtime_sums(self):
        timing = PhyTiming()
        burst = Burst(mpdus=(mpdu(), mpdu()))
        assert timing.burst_airtime_us(burst) == pytest.approx(
            2 * (timing.delimiter_us + 1025.0)
        )


class TestOutcomeDurations:
    def test_success_includes_sack_and_cifs(self):
        timing = PhyTiming()
        burst = Burst(mpdus=(mpdu(),))
        expected = (
            timing.delimiter_us + 1025.0
            + timing.rifs_us + timing.sack_us + timing.cifs_us
        )
        assert timing.burst_success_us(burst) == pytest.approx(expected)

    def test_collision_is_longest_burst(self):
        timing = PhyTiming(fixed_mpdu_airtime_us=None, phy_rate_mbps=8.0)
        short = Burst(mpdus=(mpdu(size=600),))
        long = Burst(mpdus=(mpdu(size=1514), mpdu(size=1514)))
        duration = timing.burst_collision_us([short, long])
        assert duration == pytest.approx(
            timing.burst_airtime_us(long) + timing.cifs_us
        )

    def test_collision_needs_two_bursts(self):
        timing = PhyTiming()
        with pytest.raises(ValueError):
            timing.burst_collision_us([Burst(mpdus=(mpdu(),))])


class TestPaperCalibration:
    def test_two_mpdu_round_matches_table3_ts(self):
        """PRS + calibrated burst(2) success == the reference Ts."""
        timing = PhyTiming.paper_calibrated()
        burst = Burst(mpdus=(mpdu(), mpdu()))
        total = timing.prs_us + timing.burst_success_us(burst)
        assert total == pytest.approx(DEFAULT_TS_US, abs=1e-6)

    def test_margin_is_positive(self):
        timing = PhyTiming.paper_calibrated()
        assert timing.rifs_us > PhyTiming().rifs_us
