"""Property-based tests for the analytical models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fixed_point import gamma_from_tau, solve_fixed_point
from repro.analysis.markov import StationChain
from repro.analysis.recursive import RecursiveModel, stage_quantities
from repro.core.config import CsmaConfig

small_schedules = st.integers(1, 3).flatmap(
    lambda m: st.tuples(
        st.tuples(*[st.integers(1, 32)] * m),
        st.tuples(*[st.integers(0, 7)] * m),
    )
)


@given(
    w=st.integers(1, 128),
    d=st.integers(0, 31),
    p=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200)
def test_stage_quantities_bounds(w, d, p):
    q = stage_quantities(w, d, p)
    assert 0.0 <= q.attempt_probability <= 1.0 + 1e-12
    assert q.expected_events >= 1.0 - 1e-9
    # A stage visit can never outlast the drawn BC plus the attempt.
    assert q.expected_events <= (w - 1) + 1 + 1e-9


@given(w=st.integers(1, 64), d=st.integers(0, 15))
def test_stage_quantities_monotone_in_busy_probability(w, d):
    probs = [0.0, 0.25, 0.5, 0.75, 1.0]
    attempts = [stage_quantities(w, d, p).attempt_probability for p in probs]
    assert all(a >= b - 1e-12 for a, b in zip(attempts, attempts[1:]))


@given(schedule=small_schedules, gamma=st.floats(0.0, 0.99))
@settings(max_examples=60, deadline=None)
def test_markov_and_recursive_agree_everywhere(schedule, gamma):
    cw, dc = schedule
    config = CsmaConfig(cw=cw, dc=dc)
    chain_tau = StationChain(config).tau(gamma)
    recursive_tau = RecursiveModel(config).tau(gamma)
    assert abs(chain_tau - recursive_tau) < 1e-8
    assert 0.0 < chain_tau <= 1.0


@given(schedule=small_schedules, n=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_fixed_point_is_consistent(schedule, n):
    cw, dc = schedule
    model = RecursiveModel(CsmaConfig(cw=cw, dc=dc))
    tau = solve_fixed_point(model.tau, n)
    assert 0.0 < tau <= 1.0
    # The fixed point satisfies its own equation.
    gamma = gamma_from_tau(min(tau, 1.0), n)
    assert abs(tau - model.tau(gamma)) < 1e-6


@given(tau=st.floats(0.0, 1.0), n=st.integers(1, 50))
def test_gamma_bounds(tau, n):
    gamma = gamma_from_tau(tau, n)
    assert 0.0 <= gamma <= 1.0
