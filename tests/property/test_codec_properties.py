"""Property-based round-trip tests for the wire codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpav.mme import MmeFrame, pack_mac, unpack_mac
from repro.hpav.mme_types import (
    AssocConfirm,
    BeaconPayload,
    SnifferIndication,
    StatsConfirm,
    StatsRequest,
)
from repro.phy.framing import segment_into_pbs

macs = st.integers(0, 2**48 - 1).map(
    lambda v: ":".join(f"{(v >> s) & 0xFF:02x}" for s in range(40, -8, -8))
)


@given(mac=macs)
def test_mac_pack_unpack_roundtrip(mac):
    assert unpack_mac(pack_mac(mac)) == mac


@given(
    dst=macs,
    src=macs,
    mmtype=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=200),
)
@settings(max_examples=200)
def test_mme_frame_roundtrip(dst, src, mmtype, payload):
    frame = MmeFrame(dst_mac=dst, src_mac=src, mmtype=mmtype, payload=payload)
    assert MmeFrame.decode(frame.encode()) == frame


@given(acked=st.integers(0, 2**64 - 1), collided=st.integers(0, 2**64 - 1),
       status=st.integers(0, 0xFFFF))
def test_stats_confirm_roundtrip(acked, collided, status):
    confirm = StatsConfirm(status=status, acked=acked, collided=collided)
    assert StatsConfirm.decode(confirm.encode()) == confirm


@given(acked=st.integers(0, 2**64 - 1), collided=st.integers(0, 2**64 - 1))
def test_stats_confirm_paper_offsets(acked, collided):
    """Bytes 25-32 / 33-40 of the full frame, for any counter values."""
    frame = MmeFrame(
        dst_mac="02:00:00:00:00:01",
        src_mac="02:00:00:00:00:02",
        mmtype=0xA031,
        payload=StatsConfirm(status=0, acked=acked, collided=collided).encode(),
    ).encode()
    assert int.from_bytes(frame[24:32], "little") == acked
    assert int.from_bytes(frame[32:40], "little") == collided


@given(
    ts=st.integers(0, 2**63),
    stei=st.integers(0, 255),
    dtei=st.integers(0, 255),
    lid=st.integers(0, 3),
    cnt=st.integers(0, 3),
    length=st.integers(0, 2**32 - 1),
    blocks=st.integers(0, 255),
    collided=st.booleans(),
)
def test_sniffer_indication_roundtrip(
    ts, stei, dtei, lid, cnt, length, blocks, collided
):
    ind = SnifferIndication(
        timestamp_us=ts, source_tei=stei, dest_tei=dtei, link_id=lid,
        mpdu_count=cnt, frame_length_bytes=length, num_blocks=blocks,
        collided=collided,
    )
    assert SnifferIndication.decode(ind.encode()) == ind


@given(mac=macs, tei=st.integers(0, 255), lease=st.integers(0, 0xFFFF))
def test_assoc_confirm_roundtrip(mac, tei, lease):
    confirm = AssocConfirm(
        result=0, station_mac=mac, tei=tei, lease_minutes=lease
    )
    assert AssocConfirm.decode(confirm.encode()) == confirm


@given(seq=st.integers(0, 2**32 - 1), period=st.integers(0, 0xFFFF))
def test_beacon_roundtrip(seq, period):
    beacon = BeaconPayload(
        nid=b"NIDNID7", cco_tei=1, sequence=seq, beacon_period_ms=period
    )
    assert BeaconPayload.decode(beacon.encode()) == beacon


@given(size=st.integers(1, 65536))
def test_segmentation_covers_frame_exactly(size):
    blocks = segment_into_pbs(1, size)
    assert sum(pb.fill for pb in blocks) == size
    assert all(0 < pb.fill <= 512 for pb in blocks)
    # All but the last PB are full.
    assert all(pb.fill == 512 for pb in blocks[:-1])
    # Offsets tile the payload.
    assert [pb.offset for pb in blocks] == [
        i * 512 for i in range(len(blocks))
    ]
