"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Environment

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=60,
)


@given(delays=delays)
@settings(max_examples=100, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(delays=delays)
@settings(max_examples=100, deadline=None)
def test_equal_delays_preserve_creation_order(delays):
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    constant = delays[0]
    for tag in range(len(delays)):
        env.process(waiter(env, constant, tag))
    env.run()
    assert order == list(range(len(delays)))


@given(
    delays=delays,
    stop_fraction=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=60, deadline=None)
def test_run_until_never_overshoots(delays, stop_fraction):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    horizon = max(delays) * stop_fraction
    if horizon <= 0:
        return
    env.run(until=horizon)
    assert env.now == horizon
    assert all(t <= horizon for t in fired)
    # Finishing the run delivers the rest.
    env.run()
    assert len(fired) == len(delays)


@given(
    chain=st.lists(
        st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=40
    )
)
@settings(max_examples=60, deadline=None)
def test_sequential_timeouts_accumulate_exactly(chain):
    env = Environment()

    def runner(env):
        for delay in chain:
            yield env.timeout(delay)
        return env.now

    process = env.process(runner(env))
    result = env.run(until=process)
    assert result == env.now
    # Accumulation matches a float sum of the same order.
    expected = 0.0
    for delay in chain:
        expected += delay
    assert result == expected
