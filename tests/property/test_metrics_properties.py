"""Property-based tests for metric functions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    capture_probability,
    jain_index,
    win_run_lengths,
    windowed_jain,
)

shares = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1,
    max_size=50,
)


@given(shares=shares)
def test_jain_bounds(shares):
    value = jain_index(shares)
    n = len(shares)
    assert 1.0 / n - 1e-12 <= value <= 1.0 + 1e-12


# Scale invariance cannot survive subnormal underflow (a share like
# 5e-324 times a scale < 1 rounds to exactly 0.0, changing the index),
# so nonzero shares stay in the comfortably-normal float range here.
scalable_shares = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-30, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


@given(shares=scalable_shares, scale=st.floats(min_value=1e-3, max_value=1e3))
def test_jain_scale_invariance(shares, scale):
    scaled = [x * scale for x in shares]
    assert abs(jain_index(shares) - jain_index(scaled)) < 1e-9


@given(x=st.floats(min_value=1e-6, max_value=1e6), n=st.integers(1, 30))
def test_jain_equal_shares_perfect(x, n):
    assert abs(jain_index([x] * n) - 1.0) < 1e-9


winner_seqs = st.lists(st.integers(0, 4), min_size=1, max_size=200)


@given(winners=winner_seqs)
def test_run_lengths_partition_sequence(winners):
    runs = win_run_lengths(winners)
    assert sum(runs) == len(winners)
    assert all(r >= 1 for r in runs)


@given(winners=winner_seqs)
def test_capture_probability_bounds(winners):
    value = capture_probability(winners)
    if len(winners) >= 2:
        assert 0.0 <= value <= 1.0
        # Consistency with run lengths: repeats = len - #runs.
        expected = (len(winners) - len(win_run_lengths(winners))) / (
            len(winners) - 1
        )
        assert abs(value - expected) < 1e-12


@given(
    winners=st.lists(st.integers(0, 3), min_size=10, max_size=120),
    window=st.integers(1, 10),
)
@settings(max_examples=80)
def test_windowed_jain_bounds_and_length(winners, window):
    values = windowed_jain(winners, 4, window)
    assert len(values) == max(0, len(winners) - window + 1)
    if values.size:
        assert np.all(values >= 1 / 4 - 1e-12)
        assert np.all(values <= 1.0 + 1e-12)
