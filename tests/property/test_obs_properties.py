"""Property-based tests: traces reproduce the ground truth.

Satellite of the observability PR: on randomized scenarios (station
count, seed), the metrics recomputed from an in-memory MAC trace must
equal the coordinator's :class:`~repro.mac.coordinator.RoundLog`
ground truth — not approximately, *exactly*, because every
``RoundLog`` mutation has an adjacent probe emission with the same
value and commit order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics as core_metrics
from repro.experiments.procedures import run_collision_test
from repro.experiments.testbed import build_testbed
from repro.obs.analyze import (
    airtime_by_source_from_trace,
    collision_probability_from_trace,
    cross_check,
    jain_index_from_trace,
    slot_counts,
)
from repro.obs.probe import instrument_testbed
from repro.obs.trace import MacTraceRecorder

DURATION_US = 1.2e6
WARMUP_US = 0.1e6


def _traced_run(num_stations: int, seed: int):
    """(mac events, RoundLog) of one short saturated run."""
    testbed = build_testbed(num_stations, seed=seed)
    probe = instrument_testbed(testbed)
    recorder = MacTraceRecorder()
    probe.subscribe(recorder)
    run_collision_test(
        num_stations,
        duration_us=DURATION_US,
        warmup_us=WARMUP_US,
        seed=seed,
        testbed=testbed,
    )
    return recorder.events, testbed.avln.coordinator.log


@given(num_stations=st.integers(2, 4), seed=st.integers(1, 1_000))
@settings(max_examples=5, deadline=None)
def test_trace_collision_probability_equals_round_log(num_stations, seed):
    events, log = _traced_run(num_stations, seed)
    counts = slot_counts(events)
    assert counts["success"] == log.successes
    assert counts["collision"] == log.collisions
    assert counts["idle"] == log.idle_slots
    direct = core_metrics.collision_probability(
        log.collisions, log.collisions + log.successes
    )
    assert collision_probability_from_trace(events) == direct


@given(num_stations=st.integers(2, 4), seed=st.integers(1, 1_000))
@settings(max_examples=5, deadline=None)
def test_trace_airtime_shares_equal_round_log(num_stations, seed):
    events, log = _traced_run(num_stations, seed)
    # Bitwise equality: same values added in the same order.
    assert airtime_by_source_from_trace(events) == log.airtime_by_source
    shares = [
        log.airtime_by_source[tei] for tei in sorted(log.airtime_by_source)
    ]
    assert jain_index_from_trace(events) == core_metrics.jain_index(shares)


@given(num_stations=st.integers(2, 3), seed=st.integers(1, 1_000))
@settings(max_examples=3, deadline=None)
def test_cross_check_rows_all_exact(num_stations, seed):
    events, log = _traced_run(num_stations, seed)
    for row in cross_check(events, log):
        assert row.within(1e-9), row
        assert row.abs_err == 0.0 or row.abs_err != row.abs_err
