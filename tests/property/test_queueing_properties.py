"""Property-based tests for queueing/burst conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import PriorityClass
from repro.mac.queueing import AggregationPolicy, PriorityQueues, QueuedMme
from repro.traffic.packets import udp_frame

D = "02:00:00:00:00:00"
SRC = "02:00:00:00:00:01"


def tei_of(mac):
    return 1


enqueue_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("data"),
            st.sampled_from(list(PriorityClass)),
            st.integers(46, 1472),
        ),
        st.tuples(
            st.just("mme"),
            st.sampled_from([PriorityClass.CA2, PriorityClass.CA3]),
            st.integers(1, 64),
        ),
    ),
    min_size=0,
    max_size=60,
)

policies = st.builds(
    AggregationPolicy,
    frames_per_mpdu=st.integers(1, 3),
    mpdus_per_burst=st.integers(1, 4),
)


@given(ops=enqueue_ops, policy=policies)
@settings(max_examples=150, deadline=None)
def test_frames_are_conserved_through_bursts(ops, policy):
    """Everything enqueued is eventually emitted in bursts, exactly
    once, highest priority first within each class."""
    queues = PriorityQueues(policy=policy, capacity_frames=10_000)
    enqueued_frames = 0
    enqueued_mmes = 0
    for kind, priority, size in ops:
        if kind == "data":
            assert queues.enqueue_data(
                udp_frame(D, SRC, udp_payload_bytes=size), priority
            )
            enqueued_frames += 1
        else:
            queues.enqueue_mme(
                QueuedMme(payload=b"x" * size, dest_tei=1, priority=priority)
            )
            enqueued_mmes += 1

    drained_frames = 0
    drained_mmes = 0
    guard = 0
    while (priority := queues.pending_priority()) is not None:
        guard += 1
        assert guard < 10_000, "drain did not terminate"
        burst = queues.build_burst(priority, 2, tei_of)
        assert burst is not None
        assert 1 <= burst.size <= policy.mpdus_per_burst
        for mpdu in burst.mpdus:
            assert mpdu.priority == priority
            if mpdu.is_management:
                drained_mmes += 1
            else:
                frame_ids = {pb.frame_id for pb in mpdu.blocks}
                assert 1 <= len(frame_ids) <= policy.frames_per_mpdu
                drained_frames += len(frame_ids)

    assert drained_frames == enqueued_frames
    assert drained_mmes == enqueued_mmes
    assert queues.total_depth() == 0


@given(ops=enqueue_ops)
@settings(max_examples=60, deadline=None)
def test_pending_priority_is_maximum(ops):
    queues = PriorityQueues(capacity_frames=10_000)
    present = set()
    for kind, priority, size in ops:
        if kind == "data":
            queues.enqueue_data(udp_frame(D, SRC), priority)
        else:
            queues.enqueue_mme(
                QueuedMme(payload=b"x", dest_tei=1, priority=priority)
            )
        present.add(priority)
        assert queues.pending_priority() == max(present)
