"""Property-based tests of the station FSM invariants.

Whatever sequence of medium outcomes a station experiences, the
reference listing's structural invariants must hold: counters stay in
range, the contention window always comes from the schedule, attempts
happen exactly when BC reaches 0, and BPC counts redraws since the
last success.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CsmaConfig
from repro.core.station import SlotOutcome, Station

# A schedule strategy: 1-5 stages, windows 1..64, deferrals 0..15.
schedules = st.integers(1, 5).flatmap(
    lambda m: st.tuples(
        st.tuples(*[st.integers(1, 64)] * m),
        st.tuples(*[st.integers(0, 15)] * m),
    )
)

# Outcome scripts: what the medium does whenever the station is NOT
# attempting; attempts themselves resolve via the `collide` script.
outcome_scripts = st.lists(
    st.sampled_from(["idle", "busy_success", "busy_collision"]),
    min_size=1,
    max_size=300,
)
collision_flags = st.lists(st.booleans(), min_size=1, max_size=100)


@given(schedule=schedules, script=outcome_scripts, flags=collision_flags,
       seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_fsm_invariants_under_any_medium(schedule, script, flags, seed):
    cw, dc = schedule
    config = CsmaConfig(cw=cw, dc=dc)
    station = Station(config, np.random.default_rng(seed))
    flags = list(flags)
    successes = collisions = 0

    for outcome_name in script:
        attempted = station.step()

        # --- invariants right after the contention phase ---
        assert 0 <= station.bc < station.cw or station.bc == 0
        assert station.cw in cw
        assert station.dc >= 0
        assert station.bpc >= 1
        assert attempted == (station.bc == 0)
        assert attempted == station.attempting

        if attempted:
            collide = flags.pop(0) if flags else False
            if collide:
                station.resolve(SlotOutcome.COLLISION)
                collisions += 1
            else:
                done = station.resolve(SlotOutcome.SUCCESS, won=True)
                assert done or config.retry_limit is not None
                successes += 1
                station.reset_for_new_frame()
        elif outcome_name == "idle":
            station.resolve(SlotOutcome.IDLE)
        elif outcome_name == "busy_success":
            station.resolve(SlotOutcome.SUCCESS)
        else:
            station.resolve(SlotOutcome.COLLISION)

    assert station.successes == successes
    assert station.collisions == collisions


@given(schedule=schedules, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_all_idle_station_transmits_every_cw0_window(schedule, seed):
    """On an always-idle medium the station succeeds every frame and
    never leaves stage 0."""
    cw, dc = schedule
    config = CsmaConfig(cw=cw, dc=dc)
    station = Station(config, np.random.default_rng(seed))
    for _ in range(500):
        if station.step():
            station.resolve(SlotOutcome.SUCCESS, won=True)
            station.reset_for_new_frame()
        else:
            station.resolve(SlotOutcome.IDLE)
        assert station.cw == cw[0]
    assert station.jumps == 0
    assert station.collisions == 0
    assert station.successes >= 500 // (cw[0] + 1)


@given(schedule=schedules, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_always_busy_station_escalates_to_last_stage(schedule, seed):
    """A medium that is busy every slot drives BPC upward: the station
    must reach (and then stay at) the last stage's parameters."""
    cw, dc = schedule
    config = CsmaConfig(cw=cw, dc=dc)
    station = Station(config, np.random.default_rng(seed))
    enough = 20 * (max(cw) + max(dc) + 1) * len(cw)
    for _ in range(enough):
        if station.step():
            station.resolve(SlotOutcome.COLLISION)
        else:
            station.resolve(SlotOutcome.SUCCESS)  # busy: someone else
    assert station.cw == cw[-1]
    assert station.stage == len(cw) - 1
