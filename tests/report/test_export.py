"""Tests for CSV/JSON export helpers."""

import csv
import json

import numpy as np
import pytest

from repro.report.export import to_jsonable, write_csv, write_json


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(
            tmp_path / "out.csv", ["n", "p"], [(1, 0.1), (2, 0.2)]
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["n", "p"], ["1", "0.1"], ["2", "0.2"]]

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [(1,)])

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "a" / "b" / "x.csv", ["c"], [(1,)])
        assert path.exists()


class TestToJsonable:
    def test_dataclass(self):
        from repro.analysis.throughput import network_prediction
        from repro.core.config import TimingConfig

        prediction = network_prediction(0.1, 3, TimingConfig())
        data = to_jsonable(prediction)
        assert data["num_stations"] == 3
        assert isinstance(data["tau"], float)

    def test_numpy_values(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_bytes_hex(self):
        assert to_jsonable(b"\x01\xff") == "01ff"

    def test_nested_containers(self):
        data = to_jsonable({"a": (1, np.int64(2)), "b": [b"\x00"]})
        assert data == {"a": [1, 2], "b": ["00"]}


class TestWriteJson:
    def test_simulation_result_serializes(self, tmp_path):
        from repro.core import ScenarioConfig, SlotSimulator

        result = SlotSimulator(
            ScenarioConfig.homogeneous(num_stations=2, sim_time_us=1e6)
        ).run()
        path = write_json(tmp_path / "result.json", result.stations)
        loaded = json.loads(path.read_text())
        assert loaded[0]["successes"] == result.stations[0].successes

    def test_figure2_points_serialize(self, tmp_path):
        from repro.experiments.collision_probability import Figure2Point

        point = Figure2Point(
            num_stations=2, measured=0.08, measured_std=0.01,
            simulated=0.085, analytical=0.117,
        )
        path = write_json(tmp_path / "f2.json", [point])
        loaded = json.loads(path.read_text())
        assert loaded[0]["analytical"] == 0.117


class TestWriteJsonl:
    def test_whole_file_write(self, tmp_path):
        from repro.obs.recording import read_jsonl
        from repro.report.export import write_jsonl

        path = tmp_path / "rows.jsonl"
        write_jsonl(path, [{"a": 1}, {"a": 2}])
        assert [row["a"] for row in read_jsonl(path)] == [1, 2]
        # Unlike obs.recording.append_jsonl, rewriting replaces.
        write_jsonl(path, [{"a": 3}])
        assert [row["a"] for row in read_jsonl(path)] == [3]
