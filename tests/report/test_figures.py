"""Tests for ASCII plots."""

import pytest

from repro.report.figures import ascii_plot


class TestAsciiPlot:
    def test_contains_legend_and_title(self):
        art = ascii_plot(
            {"s1": ([0, 1], [0, 1])}, title="T", xlabel="x", ylabel="y"
        )
        assert "T" in art
        assert "legend" in art
        assert "s1" in art

    def test_markers_differ_per_series(self):
        art = ascii_plot(
            {"a": ([0, 1], [0.0, 0.5]), "b": ([0, 1], [1.0, 0.7])}
        )
        assert "o a" in art
        assert "x b" in art

    def test_axis_labels_show_range(self):
        art = ascii_plot({"a": ([2, 9], [0.1, 0.4])})
        assert "2" in art and "9" in art
        assert "0.1" in art and "0.4" in art

    def test_y_bounds_override(self):
        art = ascii_plot({"a": ([0, 1], [0.2, 0.3])}, y_min=0.0, y_max=1.0)
        assert "0" in art and "1" in art

    def test_constant_series_ok(self):
        art = ascii_plot({"a": ([0, 1, 2], [5.0, 5.0, 5.0])})
        assert "o" in art

    def test_single_point_ok(self):
        art = ascii_plot({"a": ([3], [7.0])})
        assert "o" in art

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([], [])})

    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([1, 2], [1.0])})

    def test_grid_dimensions(self):
        art = ascii_plot({"a": ([0, 1], [0, 1])}, width=30, height=8)
        plot_lines = [l for l in art.splitlines() if "|" in l]
        assert len(plot_lines) == 8
