"""Tests for text table rendering."""

import pytest

from repro.report.tables import format_scientific, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["N", "value"], [(1, "a"), (100, "bb")])
        lines = text.splitlines()
        assert lines[0].startswith("N")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "100" in lines[3]

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_formats_applied(self):
        text = format_table(
            ["p"], [(0.123456,)], formats=[".2f"]
        )
        assert "0.12" in text
        assert "0.123456" not in text

    def test_string_cells_ignore_format(self):
        text = format_table(["p"], [("n/a",)], formats=[".2f"])
        assert "n/a" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_formats_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1,)], formats=[None, None])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_separator_row(self):
        text = format_table(["ab"], [(1,)])
        assert "--" in text.splitlines()[1]


class TestFormatScientific:
    def test_paper_table2_style(self):
        assert format_scientific(25.0) == "2.5000e+01"
        assert format_scientific(162220) == "1.6222e+05"

    def test_digits(self):
        assert format_scientific(12345, digits=2) == "1.23e+04"
