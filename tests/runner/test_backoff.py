"""Full-jitter retry backoff: caps, bounds, reproducibility."""

from repro.runner import FullJitterBackoff
from repro.runner.backoff import FullJitterBackoff as _direct
from repro.runner.runner import RunnerConfig


class TestCap:
    def test_cap_doubles_from_base(self):
        b = FullJitterBackoff(base_s=0.1, max_s=100.0)
        assert b.cap(1) == 0.1
        assert b.cap(2) == 0.2
        assert b.cap(3) == 0.4
        assert b.cap(4) == 0.8

    def test_cap_clamps_at_max(self):
        b = FullJitterBackoff(base_s=0.1, max_s=0.5)
        assert b.cap(10) == 0.5
        assert b.cap(100) == 0.5

    def test_attempt_floor(self):
        b = FullJitterBackoff(base_s=0.1, max_s=1.0)
        assert b.cap(0) == b.cap(1) == 0.1

    def test_reexported_from_runner_package(self):
        assert FullJitterBackoff is _direct


class TestSample:
    def test_samples_within_zero_and_cap(self):
        b = FullJitterBackoff(base_s=0.05, max_s=2.0, seed=123)
        for attempt in range(1, 12):
            for _ in range(50):
                s = b.sample(attempt)
                assert 0.0 <= s <= b.cap(attempt)

    def test_seed_reproducible(self):
        a = FullJitterBackoff(base_s=0.05, max_s=2.0, seed=7)
        b = FullJitterBackoff(base_s=0.05, max_s=2.0, seed=7)
        assert [a.sample(k) for k in range(1, 20)] == [
            b.sample(k) for k in range(1, 20)
        ]

    def test_different_seeds_differ(self):
        a = FullJitterBackoff(seed=1)
        b = FullJitterBackoff(seed=2)
        assert [a.sample(k) for k in range(1, 20)] != [
            b.sample(k) for k in range(1, 20)
        ]

    def test_jitter_false_returns_cap_exactly(self):
        b = FullJitterBackoff(base_s=0.1, max_s=1.0, jitter=False)
        assert b.sample(1) == 0.1
        assert b.sample(2) == 0.2
        assert b.sample(30) == 1.0

    def test_jitter_independent_of_global_random(self):
        import random

        # Same-seed samplers agree regardless of global random state:
        # the sampler owns a private Random, never the module one.
        random.seed(99)
        a = FullJitterBackoff(seed=5)
        first = [a.sample(k) for k in (1, 2, 3)]
        random.seed(0)
        b = FullJitterBackoff(seed=5)
        assert [b.sample(k) for k in (1, 2, 3)] == first


class TestRunnerWiring:
    def test_runner_config_builds_sampler(self):
        config = RunnerConfig(
            backoff_base_s=0.2,
            backoff_max_s=3.0,
            backoff_jitter=True,
            backoff_seed=42,
        )
        sampler = config.backoff_sampler()
        assert sampler.cap(1) == 0.2
        assert sampler.cap(10) == 3.0
        twin = config.backoff_sampler()
        assert [sampler.sample(k) for k in range(1, 8)] == [
            twin.sample(k) for k in range(1, 8)
        ]

    def test_deterministic_cap_path_pinned(self):
        # The legacy deterministic schedule survives as the cap.
        config = RunnerConfig(backoff_base_s=0.05, backoff_max_s=2.0)
        assert config.backoff_s(1) == 0.05
        assert config.backoff_s(100) == 2.0

    def test_jitter_off_matches_deterministic_schedule(self):
        config = RunnerConfig(
            backoff_base_s=0.05, backoff_max_s=2.0, backoff_jitter=False
        )
        sampler = config.backoff_sampler()
        for attempt in (1, 2, 3, 5, 50):
            assert sampler.sample(attempt) == config.backoff_s(attempt)
