"""Property tests for the on-disk result cache and its keys.

The key contract: a cache key is a pure content hash of the task
description — stable across process restarts and dict field order,
different whenever any configuration field differs.  The entry
contract: corrupted or truncated files are detected, counted, and
recomputed, never crashed on.
"""

import dataclasses
import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CsmaConfig, ScenarioConfig
from repro.experiments.sweeps import sweep_configuration
from repro.runner import (
    ExperimentRunner,
    ResultCache,
    SeedSpec,
    Task,
    TaskKind,
    cache_key,
    scenario_to_jsonable,
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)
descriptions = st.dictionaries(
    st.text(min_size=1, max_size=10), json_values, min_size=1, max_size=6
)


def _simulate_task(**overrides) -> Task:
    params = dict(num_stations=3, sim_time_us=1e5, seed=1)
    seed_spec = SeedSpec(
        root_seed=overrides.pop("root_seed", 1),
        point_index=overrides.pop("point_index", 0),
        repetition=overrides.pop("repetition", 0),
    )
    params.update(overrides)
    scenario = ScenarioConfig.homogeneous(
        csma=CsmaConfig.default_1901(), **params
    )
    return Task(
        kind=TaskKind.SIMULATE,
        payload={"scenario": scenario_to_jsonable(scenario)},
        seed=seed_spec,
    )


class TestKeyStability:
    @given(description=descriptions, seed=st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_key_invariant_under_field_order(self, description, seed):
        items = list(description.items())
        seed.shuffle(items)
        permuted = dict(items)
        assert permuted == description
        assert cache_key(permuted) == cache_key(description)

    def test_key_stable_across_process_restarts(self):
        description = _simulate_task().describe()
        expected = cache_key(description)
        script = (
            "import json, sys\n"
            "from repro.runner import cache_key\n"
            "print(cache_key(json.loads(sys.argv[1])))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(description)],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == expected

    @given(
        n=st.integers(1, 10),
        sim_time_us=st.sampled_from([1e5, 2e5, 1e6]),
        root_seed=st.integers(0, 100),
        repetition=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_key_changes_with_any_field(
        self, n, sim_time_us, root_seed, repetition
    ):
        base = _simulate_task()
        varied = _simulate_task(
            num_stations=n, sim_time_us=sim_time_us,
            root_seed=root_seed, repetition=repetition,
        )
        if varied.describe() == base.describe():
            assert cache_key(varied.describe()) == cache_key(base.describe())
        else:
            assert cache_key(varied.describe()) != cache_key(base.describe())

    def test_key_changes_per_csma_field(self):
        base = CsmaConfig.default_1901()
        base_key = cache_key({"csma": dataclasses.asdict(base)})
        for field, value in [
            ("cw", tuple(w * 2 for w in base.cw)),
            ("dc", tuple(d + 1 for d in base.dc)),
            ("protocol", "80211"),
        ]:
            changed = dataclasses.replace(base, **{field: value})
            assert (
                cache_key({"csma": dataclasses.asdict(changed)}) != base_key
            ), field


class TestCorruptEntries:
    @given(garbage=st.sampled_from([
        "", "{", "null", "[]", '{"key": "wrong", "result": {}}',
        '{"no_result": true}', "\x00\x01binary",
    ]))
    @settings(max_examples=7, deadline=None)
    def test_corrupt_entry_is_miss_not_crash(self, tmp_path_factory, garbage):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        task = _simulate_task()
        key = cache_key(task.describe())
        cache.put(key, {"ok": 1}, task.describe())
        cache.path_for(key).write_text(garbage, encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not cache.path_for(key).exists()
        # The recompute path can rewrite and read back cleanly.
        cache.put(key, {"ok": 2}, task.describe())
        assert cache.get(key) == {"ok": 2}

    def test_bit_flip_in_result_payload_is_detected(self, tmp_path):
        # Valid JSON, valid schema — but the result bytes changed after
        # the write: only the content checksum can catch this.
        cache = ResultCache(tmp_path)
        task = _simulate_task()
        key = cache_key(task.describe())
        cache.put(key, {"throughput": 0.5}, task.describe())
        entry = json.loads(cache.path_for(key).read_text())
        entry["result"]["throughput"] = 0.6  # the silent bit flip
        cache.path_for(key).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not cache.path_for(key).exists()  # evicted for recompute

    def test_entry_carries_result_checksum(self, tmp_path):
        from repro.runner.cache import result_checksum

        cache = ResultCache(tmp_path)
        task = _simulate_task()
        key = cache_key(task.describe())
        cache.put(key, {"throughput": 0.5}, task.describe())
        entry = json.loads(cache.path_for(key).read_text())
        assert entry["sha256"] == result_checksum({"throughput": 0.5})
        assert cache.get(key) == {"throughput": 0.5}
        assert cache.corrupt == 0

    def test_runner_recomputes_after_corruption(self, tmp_path):
        def sweep():
            runner = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
            points = sweep_configuration(
                "1901 CA1", CsmaConfig.default_1901(),
                station_counts=(2, 3), sim_time_us=1e5, repetitions=1,
                runner=runner,
            )
            return points, runner

        first, _ = sweep()
        victims = sorted(tmp_path.glob("*.json"))
        assert victims
        victims[0].write_text("truncated{", encoding="utf-8")

        second, runner = sweep()
        assert second == first
        assert runner.counters.cache_corrupt == 1
        assert runner.counters.executed == 1  # only the corrupted point

    def test_put_round_trip_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _simulate_task()
        key = cache_key(task.describe())
        assert cache.get(key) is None and cache.misses == 1
        cache.put(key, {"throughput": 0.5}, task.describe())
        assert len(cache) == 1
        assert cache.get(key) == {"throughput": 0.5}
        # The stored file carries the description for humans.
        entry = json.loads(cache.path_for(key).read_text())
        assert entry["task"] == task.describe()
        assert cache.clear() == 1
        assert len(cache) == 0


class TestTempFiles:
    """In-flight ``.tmp-*.json`` atomic-write files are not entries.

    They match ``glob("*.json")``, so naive counting over-counts and a
    naive ``clear()`` can unlink a temp file out from under a
    concurrent ``put()``'s ``os.replace``.
    """

    @staticmethod
    def _orphan(tmp_path, n):
        import tempfile as _tempfile

        for _ in range(n):
            fd, _ = _tempfile.mkstemp(
                dir=tmp_path, prefix=".tmp-", suffix=".json"
            )
            import os as _os

            _os.close(fd)

    @given(entries=st.integers(0, 4), orphans=st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_len_never_counts_partial_writes(
        self, tmp_path_factory, entries, orphans
    ):
        tmp_path = tmp_path_factory.mktemp("cache")
        cache = ResultCache(tmp_path)
        for i in range(entries):
            task = _simulate_task(num_stations=i + 1)
            cache.put(cache_key(task.describe()), {"i": i}, task.describe())
        self._orphan(tmp_path, orphans)
        assert len(cache) == entries
        assert sum(1 for _ in cache.temp_paths()) == orphans

    def test_clear_sweeps_orphans_but_counts_only_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _simulate_task()
        cache.put(cache_key(task.describe()), {"ok": 1}, task.describe())
        self._orphan(tmp_path, 3)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert sum(1 for _ in cache.temp_paths()) == 0
        assert list(tmp_path.glob("*")) == []

    def test_put_survives_concurrent_clear_sweeping_its_temp(
        self, tmp_path, monkeypatch
    ):
        import os as _os

        cache = ResultCache(tmp_path)
        task = _simulate_task()
        key = cache_key(task.describe())
        real_replace = _os.replace
        raced = {"done": False}

        def racing_replace(src, dst):
            # A concurrent clear() sweeps the temp file (and everything
            # else) between the write and the rename — exactly once.
            if not raced["done"]:
                raced["done"] = True
                ResultCache(tmp_path).clear()
                return real_replace(src, dst)  # src is gone -> ENOENT
            return real_replace(src, dst)

        monkeypatch.setattr(_os, "replace", racing_replace)
        cache.put(key, {"ok": 1}, task.describe())  # must not raise
        monkeypatch.setattr(_os, "replace", real_replace)
        assert cache.get(key) == {"ok": 1}

    def test_empty_or_missing_dir(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert cache.clear() == 0
        assert list(cache.temp_paths()) == []
