"""Advisory cache locking and size/age pruning (PR 9 satellites)."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.checkpoint.integrity import FileLock
from repro.runner.cache import LOCK_FILENAME, ResultCache

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _fill(cache, n, size=0):
    """Write n entries keyed e0..e{n-1}, optionally padded, oldest first."""
    keys = []
    for i in range(n):
        key = f"e{i:02d}"
        cache.put(key, {"i": i, "pad": "x" * size}, {"kind": "t", "i": i})
        keys.append(key)
    return keys


def _backdate(cache, key, age_s):
    path = cache.path_for(key)
    old = time.time() - age_s
    os.utime(path, (old, old))


class TestFileLock:
    def test_context_manager_acquires_and_releases(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held

    def test_reentrant_in_process(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with lock:  # same process re-enters without deadlocking
                assert lock.held
            assert lock.held  # inner release keeps the outer hold
        assert not lock.held

    def test_excludes_other_processes(self, tmp_path):
        """While held here, a second process cannot take the lock."""
        lock_path = tmp_path / "x.lock"
        probe = (
            "import fcntl, os, sys\n"
            "fd = os.open(sys.argv[1], os.O_RDWR | os.O_CREAT)\n"
            "try:\n"
            "    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)\n"
            "except OSError:\n"
            "    sys.exit(3)  # correctly excluded\n"
            "sys.exit(0)\n"
        )
        with FileLock(lock_path):
            rc = subprocess.run(
                [sys.executable, "-c", probe, str(lock_path)]
            ).returncode
            assert rc == 3
        rc = subprocess.run(
            [sys.executable, "-c", probe, str(lock_path)]
        ).returncode
        assert rc == 0

    def test_cache_put_creates_lock_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"v": 1}, {"kind": "t"})
        assert (tmp_path / LOCK_FILENAME).exists()
        # The lock file is not an entry.
        assert len(cache) == 1

    def test_clear_removes_lock_file_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"v": 1}, {"kind": "t"})
        assert cache.clear() == 1
        assert list(tmp_path.glob("*")) == []


class TestPruneByAge:
    def test_old_entries_evicted_young_kept(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 4)
        _backdate(cache, "e00", 3600)
        _backdate(cache, "e01", 3600)
        report = cache.prune(max_age_s=600)
        assert report["removed"] == 2
        assert report["kept"] == 2
        assert cache.get("e00") is None
        assert cache.get("e03") is not None

    def test_age_prune_sweeps_stale_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 1)
        orphan = tmp_path / ".tmp-orphan.json"
        orphan.write_text("{", encoding="utf-8")
        old = time.time() - 3600
        os.utime(orphan, (old, old))
        cache.prune(max_age_s=600)
        assert not orphan.exists()
        assert cache.get("e00") is not None


class TestPruneBySize:
    def test_lru_eviction_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 4, size=2000)
        for i in range(4):  # make mtime order deterministic
            _backdate(cache, f"e{i:02d}", (4 - i) * 100)
        entry_size = cache.path_for("e00").stat().st_size
        report = cache.prune(max_bytes=2 * entry_size)
        assert report["removed"] == 2
        assert cache.get("e00") is None and cache.get("e01") is None
        assert cache.get("e02") is not None and cache.get("e03") is not None
        assert report["bytes"] <= 2 * entry_size

    def test_zero_budget_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        report = cache.prune(max_bytes=0)
        assert report["removed"] == 3
        assert len(cache) == 0


class TestPruneProtection:
    def test_protected_keys_survive_both_policies(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3, size=2000)
        for i in range(3):
            _backdate(cache, f"e{i:02d}", 3600)
        report = cache.prune(
            max_age_s=600, max_bytes=0, protect={"e01"}
        )
        assert cache.get("e01") is not None
        assert cache.get("e00") is None
        assert cache.get("e02") is None
        assert report["protected"] >= 1

    def test_no_bounds_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 2)
        report = cache.prune()
        assert report["removed"] == 0
        assert len(cache) == 2


class TestConcurrentWriters:
    def test_parallel_puts_from_two_processes(self, tmp_path):
        """Two processes hammer the same cache; every entry lands whole."""
        writer = (
            "import sys\n"
            "from repro.runner.cache import ResultCache\n"
            "cache = ResultCache(sys.argv[1])\n"
            "base = int(sys.argv[2])\n"
            "for i in range(20):\n"
            "    key = 'k%04d' % (base + i)\n"
            "    cache.put(key, {'i': base + i}, {'kind': 't'})\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", writer, str(tmp_path), str(base)],
                env=env,
            )
            for base in (0, 1000)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        cache = ResultCache(tmp_path)
        assert len(cache) == 40
        for base in (0, 1000):
            for i in range(20):
                assert cache.get("k%04d" % (base + i)) == {"i": base + i}
