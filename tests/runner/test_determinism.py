"""The runner's determinism contract, locked in across families.

For each experiment family (parameter sweep, boost search, fairness)
the same root seed must yield bit-identical results whether points run
serially, across 4 worker processes, or from a warm on-disk cache —
and a different root seed must yield different numbers wherever the
family is stochastic.
"""

import pytest

from repro.boost.objectives import worst_case_throughput
from repro.boost.search import (
    single_stage_family,
    search,
    validate_by_simulation,
)
from repro.experiments.fairness import fairness_by_simulation
from repro.experiments.sweeps import sweep_configuration
from repro.core.config import CsmaConfig
from repro.runner import ExperimentRunner

COUNTS = (2, 3, 5)
SIM_TIME_US = 3e5


def _sweep(runner, seed=1):
    return sweep_configuration(
        "1901 CA1",
        CsmaConfig.default_1901(),
        station_counts=COUNTS,
        sim_time_us=SIM_TIME_US,
        repetitions=2,
        seed=seed,
        runner=runner,
    )


class TestSweepFamily:
    def test_serial_equals_parallel(self):
        serial = _sweep(ExperimentRunner(max_workers=1))
        parallel = _sweep(ExperimentRunner(max_workers=4))
        assert serial == parallel

    def test_warm_cache_identical_and_zero_executed(self, tmp_path):
        cold = ExperimentRunner(max_workers=2, cache_dir=tmp_path)
        first = _sweep(cold)
        assert cold.counters.executed > 0

        warm = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
        second = _sweep(warm)
        assert second == first
        # Every point must come from the cache: zero simulate() calls.
        assert warm.counters.executed == 0
        assert warm.counters.cache_hits == warm.counters.points_total

    def test_root_seed_changes_results(self):
        a = _sweep(ExperimentRunner(), seed=1)
        b = _sweep(ExperimentRunner(), seed=2)
        assert [p.sim_throughput for p in a] != [
            p.sim_throughput for p in b
        ]
        # The analytical curve is seed-independent.
        assert [p.model_throughput for p in a] == [
            p.model_throughput for p in b
        ]


class TestBoostFamily:
    CANDIDATES = single_stage_family(cw_values=(8, 16, 32))
    OBJECTIVE = worst_case_throughput(COUNTS)

    def test_search_serial_equals_parallel_equals_cached(self, tmp_path):
        serial = search(self.CANDIDATES, self.OBJECTIVE, top=3)
        parallel = search(
            self.CANDIDATES, self.OBJECTIVE, top=3,
            runner=ExperimentRunner(max_workers=4),
        )
        warmer = ExperimentRunner(max_workers=2, cache_dir=tmp_path)
        search(self.CANDIDATES, self.OBJECTIVE, top=3, runner=warmer)
        warm = ExperimentRunner(max_workers=1, cache_dir=tmp_path)
        cached = search(
            self.CANDIDATES, self.OBJECTIVE, top=3, runner=warm
        )
        assert serial == parallel == cached
        assert warm.counters.executed == 0

    def test_validation_seeding(self):
        best = search(self.CANDIDATES, self.OBJECTIVE, top=1)[0]

        def rows(workers, seed):
            return validate_by_simulation(
                best, COUNTS, sim_time_us=SIM_TIME_US, repetitions=2,
                seed=seed, runner=ExperimentRunner(max_workers=workers),
            )

        assert rows(1, seed=1) == rows(4, seed=1)
        assert rows(1, seed=1) != rows(1, seed=3)


class TestFairnessFamily:
    def _run(self, workers, seed=1, cache_dir=None):
        runner = ExperimentRunner(max_workers=workers, cache_dir=cache_dir)
        results = fairness_by_simulation(
            station_counts=COUNTS, sim_time_us=SIM_TIME_US, seed=seed,
            runner=runner,
        )
        return results, runner

    def test_serial_equals_parallel_equals_cached(self, tmp_path):
        serial, _ = self._run(1)
        parallel, _ = self._run(4)
        self._run(2, cache_dir=tmp_path)
        cached, warm = self._run(1, cache_dir=tmp_path)
        assert serial == parallel == cached
        assert warm.counters.executed == 0

    def test_root_seed_changes_results(self):
        a, _ = self._run(1, seed=1)
        b, _ = self._run(1, seed=5)
        assert a != b


def test_counters_track_points(tmp_path):
    runner = ExperimentRunner(max_workers=2, cache_dir=tmp_path)
    _sweep(runner)
    c = runner.counters
    # One model-curve task + len(COUNTS) * 2 repetitions.
    assert c.points_total == 1 + len(COUNTS) * 2
    assert c.executed == c.points_total
    assert c.cache_misses == c.points_total
    assert c.cache_hits == 0
    assert c.wall_time_s > 0
    assert c.as_dict()["workers"] == 2
