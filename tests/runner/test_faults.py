"""The runner's fault-tolerance contract, locked in.

Four recovery paths, each exercised through deterministic fault
injection (:mod:`repro.runner.faults`) and each required to produce
results *bit-identical* to a clean serial run — a retried task reuses
its exact ``SeedSpec``, so recovery must never change the numbers:

- an ordinary task failure is retried with backoff (``raise`` mode);
- a worker killed without cleanup (``exit`` mode → BrokenProcessPool)
  triggers a pool rebuild, or degradation to serial when the rebuild
  budget is exhausted;
- a hung task (``hang`` mode) is killed by the per-task timeout and
  retried;
- a task that keeps failing leaves a structured failure record in
  partial mode instead of aborting the sweep.
"""

import json

import pytest

from repro.core.config import CsmaConfig, ScenarioConfig
from repro.experiments.sweeps import sweep_configuration
from repro.runner import (
    ExperimentRunner,
    RunnerConfig,
    RunnerTaskError,
    SeedSpec,
    Task,
    TaskKind,
    require_complete,
    scenario_to_jsonable,
)
from repro.runner.faults import FaultPlan, parse_plan, plan_from_env

COUNTS = (2, 3, 5)
SIM_TIME_US = 2e5


def _sweep(runner, seed=1):
    return sweep_configuration(
        "1901 CA1",
        CsmaConfig.default_1901(),
        station_counts=COUNTS,
        sim_time_us=SIM_TIME_US,
        repetitions=2,
        seed=seed,
        runner=runner,
    )


def _arm(monkeypatch, tmp_path, spec):
    marker_dir = tmp_path / "fault-markers"
    monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
    monkeypatch.setenv("REPRO_FAULT_DIR", str(marker_dir))
    return marker_dir


def _simulate_task(num_stations=2):
    scenario = ScenarioConfig.homogeneous(
        num_stations=num_stations, sim_time_us=1e5
    )
    return Task(
        kind=TaskKind.SIMULATE,
        payload={"scenario": scenario_to_jsonable(scenario)},
        seed=SeedSpec(root_seed=1),
    )


@pytest.fixture(scope="module")
def clean_serial():
    """The uninjected serial reference every recovery must reproduce."""
    return _sweep(ExperimentRunner(max_workers=1))


class TestCrashRecovery:
    def test_crash_retry_is_bit_identical(
        self, monkeypatch, tmp_path, clean_serial
    ):
        marker_dir = _arm(monkeypatch, tmp_path, "raise:times=2")
        runner = ExperimentRunner(
            max_workers=4, retries=2, backoff_base_s=0.01
        )
        assert _sweep(runner) == clean_serial
        assert runner.counters.retried >= 2
        assert runner.counters.failed == 0
        assert len(list(marker_dir.glob("slot-*"))) == 2
        retried = runner.trace.of_kind("retried")
        assert len(retried) == runner.counters.retried
        assert all(e.error for e in retried)

    def test_serial_path_retries_too(
        self, monkeypatch, tmp_path, clean_serial
    ):
        _arm(monkeypatch, tmp_path, "raise:times=2")
        runner = ExperimentRunner(
            max_workers=1, retries=1, backoff_base_s=0.01
        )
        assert _sweep(runner) == clean_serial
        assert runner.counters.retried == 2

    def test_without_retries_the_crash_aborts(self, monkeypatch, tmp_path):
        _arm(monkeypatch, tmp_path, "raise:times=1")
        runner = ExperimentRunner(max_workers=1, retries=0)
        with pytest.raises(RunnerTaskError) as excinfo:
            _sweep(runner)
        assert excinfo.value.failures[0].error_type == "InjectedFault"
        # Counter finalization survives the mid-sweep abort.
        assert runner.counters.failed == 1
        assert runner.counters.wall_time_s > 0


class TestBrokenPoolRecovery:
    def test_dead_worker_rebuilds_pool(
        self, monkeypatch, tmp_path, clean_serial
    ):
        _arm(monkeypatch, tmp_path, "exit:times=1")
        runner = ExperimentRunner(
            max_workers=2, retries=2, backoff_base_s=0.01
        )
        assert _sweep(runner) == clean_serial
        assert runner.counters.pool_rebuilds >= 1
        assert runner.counters.retried >= 1
        assert runner.counters.failed == 0
        assert runner.trace.of_kind("pool_rebuild")

    def test_exhausted_rebuild_budget_degrades_to_serial(
        self, monkeypatch, tmp_path, clean_serial
    ):
        _arm(monkeypatch, tmp_path, "exit:times=1")
        runner = ExperimentRunner(
            max_workers=2, retries=2, max_pool_rebuilds=0,
            backoff_base_s=0.01,
        )
        assert _sweep(runner) == clean_serial
        assert runner.counters.degraded_serial == 1
        assert runner.counters.pool_rebuilds == 0
        assert runner.trace.of_kind("degrade_serial")


class TestTimeout:
    def test_hung_task_is_killed_and_retried(
        self, monkeypatch, tmp_path, clean_serial
    ):
        _arm(monkeypatch, tmp_path, "hang:times=1,seconds=60")
        runner = ExperimentRunner(
            max_workers=2, retries=1, task_timeout_s=2.0,
            backoff_base_s=0.01,
        )
        assert _sweep(runner) == clean_serial
        assert runner.counters.timeouts == 1
        assert runner.counters.failed == 0
        assert runner.trace.of_kind("timeout")

    def test_permanent_hang_records_timed_out_failure(
        self, monkeypatch, tmp_path
    ):
        _arm(monkeypatch, tmp_path, "hang:times=1,seconds=60")
        runner = ExperimentRunner(
            max_workers=2, retries=0, task_timeout_s=1.5,
            on_failure="partial",
        )
        results = runner.run([_simulate_task(2), _simulate_task(3)])
        assert results.count(None) == 1
        assert len(runner.failures) == 1
        assert runner.failures[0].timed_out
        assert runner.failures[0].error_type == "TimeoutError"


class TestPartialResults:
    BAD = Task(kind="no-such-kind", payload={})

    def test_partial_mode_returns_survivors_and_failure_records(self):
        runner = ExperimentRunner(
            max_workers=1, retries=1, on_failure="partial",
            backoff_base_s=0.01,
        )
        results = runner.run([_simulate_task(), self.BAD])
        assert results[0] is not None and results[1] is None
        failure = runner.failures[0]
        assert failure.task_index == 1
        assert failure.attempts == 2  # first try + one retry
        assert failure.error_type == "ValueError"
        assert runner.counters.failed == 1
        assert runner.counters.executed == 1
        with pytest.raises(RunnerTaskError):
            require_complete(results, runner.failures)

    def test_partial_mode_in_pool(self):
        runner = ExperimentRunner(
            max_workers=2, retries=1, on_failure="partial",
            backoff_base_s=0.01,
        )
        results = runner.run(
            [_simulate_task(2), self.BAD, _simulate_task(3)]
        )
        assert [entry is not None for entry in results] == [
            True, False, True,
        ]
        assert runner.counters.failed == 1

    def test_raise_mode_keeps_counters_truthful(self):
        runner = ExperimentRunner(max_workers=1, retries=0)
        with pytest.raises(RunnerTaskError):
            runner.run([self.BAD, _simulate_task()])
        assert runner.counters.failed == 1
        assert runner.counters.executed == 0
        assert runner.counters.wall_time_s > 0


class TestTelemetry:
    def test_jsonl_trace_records_lifecycle(
        self, monkeypatch, tmp_path, clean_serial
    ):
        _arm(monkeypatch, tmp_path, "raise:times=1")
        trace_path = tmp_path / "trace.jsonl"
        runner = ExperimentRunner(
            max_workers=2, retries=1, backoff_base_s=0.01,
            trace_path=trace_path,
        )
        assert _sweep(runner) == clean_serial
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "retried" in kinds
        finished = [e for e in events if e["event"] == "finished"]
        assert len(finished) == runner.counters.executed
        assert all("worker_pid" in e and "t_s" in e for e in finished)
        # Queued + finished + failure accounting covers every point.
        queued = [e for e in events if e["event"] == "queued"]
        assert len(queued) == runner.counters.points_total

    def test_trace_appends_across_runs(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        runner = ExperimentRunner(max_workers=1, trace_path=trace_path)
        runner.run([_simulate_task(2)])
        first = len(trace_path.read_text().splitlines())
        runner.run([_simulate_task(3)])
        assert len(trace_path.read_text().splitlines()) > first


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": -1},
            {"retries": -1},
            {"task_timeout_s": 0.0},
            {"task_timeout_s": -5.0},
            {"backoff_base_s": -0.1},
            {"on_failure": "explode"},
            {"max_pool_rebuilds": -1},
        ],
    )
    def test_bad_config_fails_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            RunnerConfig(**kwargs)
        with pytest.raises(ValueError):
            ExperimentRunner(**kwargs)

    def test_good_config_constructs(self):
        config = RunnerConfig(
            max_workers=0, retries=3, task_timeout_s=10.0,
            on_failure="partial",
        )
        assert config.resolved_workers() >= 1
        assert config.backoff_s(1) == config.backoff_base_s
        assert config.backoff_s(100) == config.backoff_max_s


class TestFaultPlanParsing:
    def test_parse_modes_and_options(self):
        assert parse_plan("raise") == FaultPlan(mode="raise")
        assert parse_plan("exit:times=3") == FaultPlan(mode="exit", times=3)
        assert parse_plan("hang:seconds=1.5,times=2") == FaultPlan(
            mode="hang", hang_s=1.5, times=2
        )

    @pytest.mark.parametrize(
        "spec", ["boom", "raise:times=0", "hang:seconds=0", "raise:nope=1"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_plan(spec)

    def test_no_marker_dir_disables_injection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise")
        monkeypatch.delenv("REPRO_FAULT_DIR", raising=False)
        assert plan_from_env() is None

    def test_injection_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        assert plan_from_env() is None
