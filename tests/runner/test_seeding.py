"""Regression tests for SeedSpec modes, especially ``legacy_rep``.

The ``legacy_rep`` mode lets procedures that historically called
``simulate(scenario, repetitions=r)`` route through the runner/batch
paths while reproducing the exact per-repetition seed derivation
(``RandomStreams(seed).spawn("rep", rep)``).  These tests lock that
bit-identity and the cache-key stability of ``as_jsonable``.
"""

import pytest

from repro.core import ScenarioConfig, SlotSimulator
from repro.core.simulator import simulate
from repro.runner.batch import BatchRunner
from repro.runner.seeding import SeedSpec, derive_seed_sequence, streams_for


class TestSeedSpecJsonable:
    def test_legacy_rep_omitted_when_unset(self):
        """Pre-legacy_rep task descriptions (cache keys) stay stable."""
        data = SeedSpec(root_seed=7, point_index=2, repetition=1).as_jsonable()
        assert "legacy_rep" not in data
        assert data == {
            "root_seed": 7,
            "point_index": 2,
            "repetition": 1,
            "explicit_seed": None,
        }

    def test_legacy_rep_roundtrips(self):
        spec = SeedSpec(root_seed=3, explicit_seed=3, legacy_rep=2)
        assert SeedSpec.from_jsonable(spec.as_jsonable()) == spec

    def test_legacy_rep_requires_explicit_seed(self):
        with pytest.raises(ValueError, match="legacy_rep"):
            SeedSpec(root_seed=1, legacy_rep=0)


class TestLegacyRepBitIdentity:
    def test_matches_simulate_per_repetition(self):
        """streams_for(legacy_rep=r) == simulate()'s rep-r seeding."""
        scenario = ScenarioConfig.homogeneous(3, sim_time_us=2e5, seed=11)
        golden = simulate(scenario, repetitions=3)
        for rep in range(3):
            spec = SeedSpec(root_seed=11, explicit_seed=11, legacy_rep=rep)
            got = SlotSimulator(scenario, streams=streams_for(spec)).run()
            assert got == golden[rep]

    def test_matches_simulate_through_batch_runner(self):
        """The batch path reproduces simulate() bit-for-bit."""
        scenario = ScenarioConfig.homogeneous(
            2, sim_time_us=2e5, seed=5, arrival_rate_pps=300.0
        )
        golden = simulate(scenario, repetitions=2)
        pairs = [
            (scenario, SeedSpec(root_seed=5, explicit_seed=5, legacy_rep=rep))
            for rep in range(2)
        ]
        points = BatchRunner().run_points(pairs)
        assert [p.result for p in points] == golden

    def test_distinct_from_plain_explicit_seed(self):
        """legacy_rep=0 is spawn("rep", 0), not the raw explicit seed."""
        plain = derive_seed_sequence(SeedSpec(root_seed=9, explicit_seed=9))
        legacy = derive_seed_sequence(
            SeedSpec(root_seed=9, explicit_seed=9, legacy_rep=0)
        )
        assert plain.generate_state(4).tolist() != legacy.generate_state(
            4
        ).tolist()
