"""kill -9 the orchestrator at every kill point; resume bit-identically.

These tests run the orchestrator in a subprocess with
``REPRO_SERVICE_KILL`` armed so ``os._exit`` fires at a deterministic
point (after the journal fsync, after a lease grant, between the
cache commit and the completion record).  The parent restarts the
service until it exits clean and asserts the final cache is
bit-identical to an uninterrupted in-process ``ExperimentRunner``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.config import ScenarioConfig
from repro.runner import ExperimentRunner, SeedSpec, Task, TaskKind
from repro.runner.cache import ResultCache, cache_key
from repro.runner.serialize import scenario_to_jsonable
from repro.service import TaskState, build_submission, fold_journal, write_submission
from repro.service.faults import KILL_EXIT_CODE, KILL_POINTS
from repro.service.orchestrator import ServicePaths

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
SIM_TIME_US = 1e5

SERVE_SNIPPET = (
    "import sys\n"
    "from repro.service import Orchestrator, ServiceConfig\n"
    "config = ServiceConfig(service_dir=sys.argv[1], max_workers=2,\n"
    "                       poll_interval_s=0.01)\n"
    "Orchestrator(config).serve(exit_when_idle=True)\n"
)


def _tasks():
    out = []
    for i, n in enumerate((2, 3)):
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=SIM_TIME_US, seed=1
        )
        out.append(
            Task(
                kind=TaskKind.SIMULATE,
                payload={"scenario": scenario_to_jsonable(scenario)},
                seed=SeedSpec(root_seed=1, point_index=i, repetition=0),
            )
        )
    return out


def _serve_subprocess(service_dir, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-c", SERVE_SNIPPET, str(service_dir)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def _serve_until_clean(service_dir, extra_env, max_restarts=10):
    """Restart the service after every injected crash; count the kills."""
    kills = 0
    for _ in range(max_restarts):
        proc = _serve_subprocess(service_dir, extra_env)
        if proc.returncode == 0:
            return kills
        assert proc.returncode == KILL_EXIT_CODE, (
            proc.returncode,
            proc.stderr[-2000:],
        )
        kills += 1
    raise AssertionError(f"never exited clean after {max_restarts} serves")


def _assert_bit_identical(service_dir, tasks, baseline):
    state = fold_journal(service_dir)
    assert state.counts()[TaskState.COMPLETED] == len(tasks)
    cache = ResultCache(ServicePaths(service_dir).cache)
    for task, want in zip(tasks, baseline):
        assert cache.get(cache_key(task.describe())) == want


@pytest.fixture(scope="module")
def baseline():
    tasks = _tasks()
    return tasks, ExperimentRunner().run(tasks)


class TestOrchestratorKillPoints:
    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_kill_then_restart_is_bit_identical(
        self, tmp_path, baseline, point
    ):
        tasks, want = baseline
        sdir = tmp_path / "svc"
        write_submission(ServicePaths(sdir).inbox, build_submission(tasks))
        # journal_append fires on every incarnation's very first record
        # (service_start / service_resume), so each armed shot kills one
        # whole incarnation; the other points fire once mid-flight.
        times = 3 if point == "journal_append" else 1
        kills = _serve_until_clean(
            sdir,
            {
                "REPRO_SERVICE_KILL": f"{point}:times={times}",
                "REPRO_SERVICE_KILL_DIR": str(tmp_path / "kills"),
            },
        )
        assert kills == times
        _assert_bit_identical(sdir, tasks, want)

    def test_killed_incarnations_leave_verifiable_journal(
        self, tmp_path, baseline
    ):
        tasks, want = baseline
        sdir = tmp_path / "svc"
        write_submission(ServicePaths(sdir).inbox, build_submission(tasks))
        _serve_until_clean(
            sdir,
            {
                "REPRO_SERVICE_KILL": "result_commit:times=1",
                "REPRO_SERVICE_KILL_DIR": str(tmp_path / "kills"),
            },
        )
        state = fold_journal(sdir)
        # fsync-before-kill means no torn tail from os._exit.
        assert state.corrupt_records == 0
        # The interrupted result was committed to the cache before the
        # kill, so the resumed incarnation completes it from the cache
        # (or re-runs its twin bit-identically) without a new lease
        # necessarily being granted for it.
        events = [r["event"] for r in _read_events(sdir)]
        assert events.count("service_stop") == 1  # only the clean exit
        assert "service_resume" in events
        _assert_bit_identical(sdir, tasks, want)


def _read_events(service_dir):
    from repro.service.journal import read_journal

    records, _ = read_journal(ServicePaths(service_dir).journal)
    return records


class TestWorkerKill:
    def test_worker_killed_midflight_retries_bit_identical(
        self, tmp_path, baseline
    ):
        """A worker dies hard (``os._exit``); the lease is reclaimed and
        the deterministic retry converges on the baseline result."""
        tasks, want = baseline
        sdir = tmp_path / "svc"
        write_submission(ServicePaths(sdir).inbox, build_submission(tasks))
        proc = _serve_subprocess(
            sdir,
            {
                "REPRO_FAULT_INJECT": "exit:times=1",
                "REPRO_FAULT_DIR": str(tmp_path / "faults"),
            },
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        events = [r["event"] for r in _read_events(sdir)]
        assert "task_failed" in events
        state = fold_journal(sdir)
        failed = [
            t for t in state.tasks.values() if t.attempts > 0
        ]
        assert len(failed) == 1
        assert failed[0].state == TaskState.COMPLETED
        _assert_bit_identical(sdir, tasks, want)

    def test_worker_hang_reaped_by_watchdog(self, tmp_path, baseline):
        """A hung worker overruns the task timeout, is SIGKILLed, and
        the retry completes the sweep."""
        tasks, want = baseline
        sdir = tmp_path / "svc"
        write_submission(ServicePaths(sdir).inbox, build_submission(tasks))
        env = {
            "REPRO_FAULT_INJECT": "hang:times=1,seconds=60",
            "REPRO_FAULT_DIR": str(tmp_path / "faults"),
        }
        snippet = (
            "import sys\n"
            "from repro.service import Orchestrator, ServiceConfig\n"
            "config = ServiceConfig(service_dir=sys.argv[1],\n"
            "                       max_workers=2, poll_interval_s=0.01,\n"
            "                       task_timeout_s=2.0)\n"
            "Orchestrator(config).serve(exit_when_idle=True)\n"
        )
        full_env = dict(os.environ)
        full_env["PYTHONPATH"] = (
            SRC_DIR + os.pathsep + full_env.get("PYTHONPATH", "")
        )
        full_env.update(env)
        proc = subprocess.run(
            [sys.executable, "-c", snippet, str(sdir)],
            env=full_env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        events = [r["event"] for r in _read_events(sdir)]
        assert "task_failed" in events
        _assert_bit_identical(sdir, tasks, want)
