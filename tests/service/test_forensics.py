"""Forensics satellites: correlation ids and torn-tail tolerance.

- quarantine records and rejected-submission reason files carry the
  orchestrator's ``run_id``/``span_id``, so an operator can jump from
  a parked task straight to the matching telemetry;
- ``repro-plc status`` (and its ``--json`` document) tolerates a torn
  trailing journal record — the fingerprint of ``kill -9`` mid-append —
  and *reports* it as ``journal_tail: "torn"`` instead of crashing.
"""

import json

from repro.service import Orchestrator, ServiceConfig
from repro.service.journal import JournalWriter, journal_tail_state
from repro.service.orchestrator import ServicePaths
from repro.service.quarantine import (
    read_quarantine_records,
    write_quarantine_record,
)
from repro.service.status import render_service_status, service_status


class TestQuarantineCorrelation:
    def test_record_carries_run_and_span_ids(self, tmp_path):
        path = write_quarantine_record(
            tmp_path / "q",
            task_id="t" * 64,
            description={"kind": "simulate", "payload": {}},
            failures=[{"error": "boom", "error_type": "ValueError"}],
            run_id="run-abc",
            span_id="span-def",
        )
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["run_id"] == "run-abc"
        assert record["span_id"] == "span-def"
        (loaded,) = read_quarantine_records(tmp_path / "q")
        assert loaded["run_id"] == "run-abc"

    def test_ids_optional_for_legacy_callers(self, tmp_path):
        path = write_quarantine_record(
            tmp_path / "q",
            task_id="t" * 64,
            description={"kind": "simulate", "payload": {}},
            failures=[],
        )
        record = json.loads(path.read_text(encoding="utf-8"))
        assert "run_id" not in record
        assert "span_id" not in record

    def test_rejected_reason_file_names_run_and_span(self, tmp_path):
        orch = Orchestrator(
            ServiceConfig(service_dir=tmp_path / "svc", max_workers=0)
        )
        paths = ServicePaths(tmp_path / "svc")
        bad = paths.inbox
        bad.mkdir(parents=True, exist_ok=True)
        garbage = bad / "junk.json"
        garbage.write_text("{not json", encoding="utf-8")
        with orch.lock:
            orch._scan_inbox()
        reasons = list(paths.rejected.glob("*.reason.txt"))
        assert len(reasons) == 1
        text = reasons[0].read_text(encoding="utf-8")
        assert text.splitlines()[0] == "malformed submission"
        assert f"run_id: {orch.trace.run_id}" in text
        orch.journal.close()


class TestTornJournalTail:
    def _journal_with_torn_tail(self, tmp_path):
        sdir = tmp_path / "svc"
        sdir.mkdir(parents=True, exist_ok=True)
        journal = JournalWriter(ServicePaths(sdir).journal)
        journal.append("service_start", pid=1)
        journal.append("service_stop", pid=1)
        journal.close()
        # kill -9 mid-append: the trailing record is half a line.
        with ServicePaths(sdir).journal.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "task_enq')
        return sdir

    def test_tail_state_classifier(self, tmp_path):
        sdir = self._journal_with_torn_tail(tmp_path)
        assert journal_tail_state(ServicePaths(sdir).journal) == "torn"
        assert journal_tail_state(tmp_path / "nope.jsonl") == "missing"

    def test_clean_tail_reported_clean(self, tmp_path):
        sdir = tmp_path / "svc"
        journal = JournalWriter(ServicePaths(sdir).journal)
        journal.append("service_start", pid=1)
        journal.close()
        assert journal_tail_state(ServicePaths(sdir).journal) == "clean"

    def test_status_tolerates_and_reports_torn_tail(self, tmp_path):
        sdir = self._journal_with_torn_tail(tmp_path)
        status = service_status(sdir)  # must not raise
        assert status["journal_tail"] == "torn"
        assert status["corrupt_records"] == 1
        assert json.loads(json.dumps(status)) == status  # --json safe
        rendered = render_service_status(status)
        assert "[tail torn]" in rendered

    def test_status_tolerates_torn_telemetry_lines(self, tmp_path):
        sdir = tmp_path / "svc"
        journal = JournalWriter(ServicePaths(sdir).journal)
        journal.append("service_start", pid=1)
        journal.close()
        telemetry = ServicePaths(sdir).telemetry
        telemetry.mkdir(parents=True, exist_ok=True)
        (telemetry / "trace.jsonl").write_text(
            json.dumps({"event": "run_start", "run_id": "r", "t_s": 0.0})
            + "\n"
            + '{"event": "started", "task_in',  # torn mid-write
            encoding="utf-8",
        )
        status = service_status(sdir)  # must not raise
        assert status["telemetry"]["run_id"] == "r"
