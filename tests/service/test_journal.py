"""The write-ahead journal's durability and integrity contract."""

import json

import pytest

from repro.service.journal import (
    JournalWriter,
    journal_path,
    read_journal,
    seal_record,
    verify_record,
)
from repro.service.state import TaskState, fold_journal, fold_records


class TestSealing:
    def test_sealed_record_verifies(self):
        sealed = seal_record({"event": "task_enqueued", "task_id": "t1"})
        assert verify_record(sealed)

    def test_any_field_tamper_is_detected(self):
        sealed = seal_record({"event": "task_enqueued", "task_id": "t1"})
        tampered = dict(sealed)
        tampered["task_id"] = "t2"
        assert not verify_record(tampered)

    def test_missing_checksum_fails(self):
        assert not verify_record({"event": "task_enqueued"})

    def test_seal_is_field_order_independent(self):
        a = seal_record({"a": 1, "b": 2})
        b = seal_record({"b": 2, "a": 1})
        assert a["check"] == b["check"]


class TestWriterRoundtrip:
    def test_append_and_replay(self, tmp_path):
        path = journal_path(tmp_path)
        with JournalWriter(path) as journal:
            journal.append("service_start", pid=1)
            journal.append("task_enqueued", task_id="t1", task={"kind": "x"})
        records, corrupt = read_journal(path)
        assert corrupt == 0
        assert [r["event"] for r in records] == [
            "service_start",
            "task_enqueued",
        ]
        assert records[0]["seq"] == 0 and records[1]["seq"] == 1

    def test_none_fields_are_dropped(self, tmp_path):
        with JournalWriter(journal_path(tmp_path)) as journal:
            record = journal.append("task_failed", task_id="t", error=None)
        assert "error" not in record

    def test_seq_continues_across_writers(self, tmp_path):
        path = journal_path(tmp_path)
        with JournalWriter(path) as journal:
            journal.append("service_start")
        with JournalWriter(path) as journal:
            assert journal.seq == 1
            record = journal.append("service_resume")
        assert record["seq"] == 1

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == ([], 0)


class TestCorruptionTolerance:
    def _write_valid(self, path, n=3):
        with JournalWriter(path) as journal:
            for i in range(n):
                journal.append("task_enqueued", task_id=f"t{i}")

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = journal_path(tmp_path)
        self._write_valid(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "event": "task_co')  # torn write
        records, corrupt = read_journal(path)
        assert len(records) == 3
        assert corrupt == 1

    def test_bitflip_mid_file_skipped(self, tmp_path):
        path = journal_path(tmp_path)
        self._write_valid(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        middle = json.loads(lines[1])
        middle["task_id"] = "tampered"
        lines[1] = json.dumps(middle)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        records, corrupt = read_journal(path)
        assert [r["task_id"] for r in records] == ["t0", "t2"]
        assert corrupt == 1

    def test_new_writer_survives_torn_tail(self, tmp_path):
        path = journal_path(tmp_path)
        self._write_valid(path, n=2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage not json\n")
        with JournalWriter(path) as journal:
            assert journal.seq == 2
            journal.append("service_resume")
        records, corrupt = read_journal(path)
        assert corrupt == 1
        assert records[-1]["event"] == "service_resume"


class TestFold:
    def test_full_lifecycle(self, tmp_path):
        path = journal_path(tmp_path)
        with JournalWriter(path) as journal:
            journal.append("service_start", pid=1)
            journal.append(
                "task_enqueued", task_id="t1", task={"kind": "simulate"}
            )
            journal.append("lease_granted", task_id="t1", attempt=0)
            journal.append(
                "task_completed", task_id="t1", source="worker"
            )
            journal.append("service_stop", pid=1, drained=True)
        state = fold_journal(tmp_path)
        assert state.tasks["t1"].state == TaskState.COMPLETED
        assert state.tasks["t1"].kind == "simulate"
        assert state.stopped_clean

    def test_failure_returns_to_pending_with_attempt(self):
        state = fold_records(
            [
                {"event": "task_enqueued", "task_id": "t"},
                {"event": "lease_granted", "task_id": "t"},
                {
                    "event": "task_failed",
                    "task_id": "t",
                    "attempt": 1,
                    "error": "boom",
                    "error_type": "RuntimeError",
                },
            ]
        )
        task = state.tasks["t"]
        assert task.state == TaskState.PENDING
        assert task.attempts == 1
        assert task.last_error_type == "RuntimeError"

    def test_reclaim_does_not_consume_attempt(self):
        state = fold_records(
            [
                {"event": "task_enqueued", "task_id": "t"},
                {"event": "lease_granted", "task_id": "t"},
                {"event": "lease_reclaimed", "task_id": "t"},
            ]
        )
        assert state.tasks["t"].state == TaskState.PENDING
        assert state.tasks["t"].attempts == 0

    def test_quarantine_is_terminal_in_counts(self):
        state = fold_records(
            [
                {"event": "task_enqueued", "task_id": "t"},
                {"event": "lease_granted", "task_id": "t"},
                {"event": "task_failed", "task_id": "t", "attempt": 1},
                {
                    "event": "task_quarantined",
                    "task_id": "t",
                    "attempts": 1,
                    "record_path": "/q/t.json",
                },
            ]
        )
        assert state.counts()[TaskState.QUARANTINED] == 1
        assert state.queue_depth == 0

    def test_submission_records_folded(self):
        state = fold_records(
            [
                {
                    "event": "sweep_accepted",
                    "submit_id": "s1",
                    "label": "demo",
                    "task_count": 5,
                    "deduped": 2,
                },
                {
                    "event": "sweep_rejected",
                    "submit_id": "s2",
                    "reason": "queue full",
                },
            ]
        )
        assert state.submits["s1"].accepted
        assert state.submits["s1"].deduped == 2
        assert not state.submits["s2"].accepted
        assert "queue" in state.submits["s2"].reason
