"""Heartbeat files, liveness probes, and the watchdog verdicts."""

import os
import time

from repro.service.leases import (
    HeartbeatWriter,
    classify_lease,
    heartbeat_age_s,
    heartbeat_path,
    pid_alive,
    read_heartbeat_pid,
    write_heartbeat,
)


class TestHeartbeatFile:
    def test_write_and_read_pid(self, tmp_path):
        hb = heartbeat_path(tmp_path, "task1")
        write_heartbeat(hb, 4242)
        assert read_heartbeat_pid(hb) == 4242

    def test_touch_refreshes_mtime_not_content(self, tmp_path):
        hb = heartbeat_path(tmp_path, "task1")
        write_heartbeat(hb, 4242)
        os.utime(hb, (time.time() - 100, time.time() - 100))
        assert heartbeat_age_s(hb) > 50
        write_heartbeat(hb, 9999)  # refresh touches, content stays
        assert heartbeat_age_s(hb) < 5
        assert read_heartbeat_pid(hb) == 4242

    def test_missing_file(self, tmp_path):
        hb = heartbeat_path(tmp_path, "none")
        assert read_heartbeat_pid(hb) is None
        assert heartbeat_age_s(hb) is None


class TestPidAlive:
    def test_own_pid_alive(self):
        assert pid_alive(os.getpid())

    def test_dead_pid(self):
        # Fork a child that exits immediately; after wait, it's gone.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        assert not pid_alive(pid)

    def test_nonsense_pids(self):
        assert not pid_alive(None)
        assert not pid_alive(0)
        assert not pid_alive(-1)


class TestClassify:
    def test_live_fresh_heartbeat(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        write_heartbeat(hb, os.getpid())
        assert (
            classify_lease(hb, lease_ttl_s=5.0, elapsed_s=1.0) == "live"
        )

    def test_missing_heartbeat_within_ttl_is_live(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        assert (
            classify_lease(hb, lease_ttl_s=5.0, elapsed_s=1.0) == "live"
        )

    def test_missing_heartbeat_after_ttl_is_dead(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        assert (
            classify_lease(hb, lease_ttl_s=5.0, elapsed_s=9.0) == "dead"
        )

    def test_dead_pid_is_dead(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        write_heartbeat(hb, pid)
        # Rewrite content with the dead pid (write_heartbeat would
        # only touch an existing file).
        hb.write_text(str(pid), encoding="utf-8")
        assert (
            classify_lease(hb, lease_ttl_s=5.0, elapsed_s=1.0) == "dead"
        )

    def test_stale_heartbeat_with_live_pid(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        write_heartbeat(hb, os.getpid())
        old = time.time() - 60
        os.utime(hb, (old, old))
        assert (
            classify_lease(hb, lease_ttl_s=5.0, elapsed_s=60.0)
            == "stale"
        )

    def test_overrun_wins_over_live(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        write_heartbeat(hb, os.getpid())
        verdict = classify_lease(
            hb, lease_ttl_s=5.0, elapsed_s=100.0, task_timeout_s=50.0
        )
        assert verdict == "overrun"


class TestHeartbeatWriter:
    def test_thread_keeps_beat_alive(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        with HeartbeatWriter(hb, interval_s=0.05):
            time.sleep(0.2)
            assert read_heartbeat_pid(hb) == os.getpid()
            old = time.time() - 30
            os.utime(hb, (old, old))
            deadline = time.time() + 2.0
            while heartbeat_age_s(hb) > 5 and time.time() < deadline:
                time.sleep(0.05)
            assert heartbeat_age_s(hb) < 5

    def test_stop_stops_touching(self, tmp_path):
        hb = heartbeat_path(tmp_path, "t")
        writer = HeartbeatWriter(hb, interval_s=0.05)
        writer.start()
        writer.stop()
        old = time.time() - 30
        os.utime(hb, (old, old))
        time.sleep(0.2)
        assert heartbeat_age_s(hb) > 5
