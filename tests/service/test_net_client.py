"""Sweep-client fault tolerance: breakers, retries, graceful degradation.

The headline robustness property (ISSUE acceptance): with every host
unreachable, :meth:`SweepClient.run_sweep` must not raise — it degrades
to a local runner with a structured ``degraded_local`` trace event and
bit-identical results.
"""

import threading

import pytest

from repro.core.config import ScenarioConfig
from repro.runner import ExperimentRunner, FullJitterBackoff, SeedSpec, Task, TaskKind
from repro.runner.serialize import scenario_to_jsonable
from repro.service import Orchestrator, ServiceConfig
from repro.service.net import (
    AllHostsUnreachable,
    CircuitBreaker,
    SweepClient,
    serve_http,
)
from repro.service.net.worker import work_loop

SIM_TIME_US = 1e5


def _tasks(count=2):
    out = []
    for i in range(count):
        scenario = ScenarioConfig.homogeneous(
            num_stations=i + 2, sim_time_us=SIM_TIME_US, seed=1
        )
        out.append(
            Task(
                kind=TaskKind.SIMULATE,
                payload={"scenario": scenario_to_jsonable(scenario)},
                seed=SeedSpec(root_seed=1, point_index=i, repetition=0),
            )
        )
    return out


def _fast_client(hosts, **kwargs):
    kwargs.setdefault("timeout_s", 2.0)
    kwargs.setdefault("retries", 1)
    kwargs.setdefault(
        "backoff", FullJitterBackoff(base_s=0.01, max_s=0.02, seed=1)
    )
    return SweepClient(hosts, **kwargs)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=lambda: clock[0])
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()

    def test_half_open_probe_after_cooldown(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        b.record_failure()
        assert not b.allow()
        clock[0] = 5.1
        assert b.allow()  # the single half-open probe
        assert b.state == "half-open"
        assert not b.allow()  # only one probe at a time
        b.record_success()
        assert b.state == "closed" and b.allow()

    def test_failed_probe_reopens(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        b.record_failure()
        clock[0] = 6.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        clock[0] = 10.0
        assert not b.allow()  # cooldown restarts from the reopen
        clock[0] = 11.1
        assert b.allow()

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"


class TestRequestLoop:
    def test_unreachable_hosts_raise_all_hosts_unreachable(self):
        client = _fast_client(
            ["http://127.0.0.1:9", "http://127.0.0.1:10"]
        )
        with pytest.raises(AllHostsUnreachable):
            client._request("GET", "/v1/status")
        assert client.breakers["http://127.0.0.1:9"]._failures >= 1

    def test_failover_to_healthy_host(self, tmp_path):
        orch = Orchestrator(
            ServiceConfig(service_dir=tmp_path / "svc", max_workers=0)
        )
        with serve_http(orch, ":0") as server:
            client = _fast_client(["http://127.0.0.1:9", server.url])
            doc = client.service_status()
            assert doc["serving"] is True
            # The answering host becomes sticky-preferred.
            assert client._preferred == server.url
        orch.journal.close()

    def test_open_breaker_skips_dead_host(self, tmp_path):
        orch = Orchestrator(
            ServiceConfig(service_dir=tmp_path / "svc", max_workers=0)
        )
        with serve_http(orch, ":0") as server:
            client = _fast_client(
                ["http://127.0.0.1:9", server.url], breaker_threshold=1
            )
            client.service_status()
            assert not client.breakers["http://127.0.0.1:9"].allow()
            # Subsequent requests never touch the dead host again
            # (inside the cooldown) and still succeed.
            assert client.service_status()["serving"] is True
        orch.journal.close()


class TestGracefulDegradation:
    def test_run_sweep_degrades_local_without_raising(self, tmp_path):
        tasks = _tasks()
        want = ExperimentRunner().run(tasks)
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        client = _fast_client(["http://127.0.0.1:9"], retries=0)
        out = client.run_sweep(tasks, local_runner=runner)
        assert out["source"] == "degraded_local"
        assert "unreachable" in out["reason"]
        assert out["results"] == want
        # Truthful accounting: the counter and a structured trace event.
        assert runner.counters.degraded_local == 1
        events = runner.trace.of_kind("degraded_local")
        assert len(events) == 1
        assert "unreachable" in events[0].detail

    def test_run_sweep_remote_when_service_up(self, tmp_path):
        tasks = _tasks()
        want = ExperimentRunner().run(tasks)
        orch = Orchestrator(
            ServiceConfig(
                service_dir=tmp_path / "svc",
                max_workers=0,
                poll_interval_s=0.01,
                idle_grace_s=1.0,
            )
        )
        with serve_http(orch, ":0") as server:
            serve_thread = threading.Thread(
                target=orch.serve,
                kwargs={"exit_when_idle": True},
                daemon=True,
            )
            serve_thread.start()
            worker = threading.Thread(
                target=work_loop,
                args=(server.url,),
                kwargs={"poll_s": 0.02, "max_tasks": len(tasks)},
                daemon=True,
            )
            worker.start()
            client = _fast_client([server.url])
            out = client.run_sweep(tasks, timeout_s=120)
            worker.join(timeout=60)
            serve_thread.join(timeout=60)
        assert out["source"] == "remote"
        assert out["results"] == want
