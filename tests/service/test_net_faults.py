"""End-to-end network fault suite: real server + worker processes.

Each test runs a real sweep through ``repro-plc serve --http`` and
``repro-plc work --connect`` subprocesses while killing or partitioning
one role, then asserts the final result cache is **bit-identical** to
an uninterrupted in-process :class:`ExperimentRunner` — the same
convergence bar the PR 9 crash suite sets for local kill points.

Covered roles (ISSUE acceptance: each of {server, worker, client}
killed/partitioned once):

- **server** — SIGKILLed mid-sweep and restarted; the surviving worker
  polls through the outage and the restarted incarnation re-leases
  from the journal;
- **worker** — dies hard (``REPRO_FAULT_INJECT=exit``) mid-task; the
  watchdog classifies the silent host dead and reclaims the shard
  *without consuming a retry attempt*;
- **client** — its submission response is dropped
  (``REPRO_NET_FAULT=drop``); the retried POST dedupes idempotently;
- **drain under load** — SIGTERM mid-sweep: in-flight tasks finish,
  new submissions get 503 + Retry-After, the process exits 143, and no
  lease leaks.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.config import ScenarioConfig
from repro.runner import ExperimentRunner, SeedSpec, Task, TaskKind
from repro.runner.cache import ResultCache, cache_key
from repro.runner.serialize import scenario_to_jsonable
from repro.service import TaskState, build_submission, fold_journal
from repro.service.journal import read_journal
from repro.service.net import NetRequestError, SweepClient, http_json
from repro.service.orchestrator import ServicePaths

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
SIM_TIME_US = 1e5


def _tasks(count=4, sim_time_us=SIM_TIME_US):
    out = []
    for i in range(count):
        scenario = ScenarioConfig.homogeneous(
            num_stations=(i % 3) + 2, sim_time_us=sim_time_us, seed=1
        )
        out.append(
            Task(
                kind=TaskKind.SIMULATE,
                payload={"scenario": scenario_to_jsonable(scenario)},
                seed=SeedSpec(root_seed=1, point_index=i, repetition=0),
            )
        )
    return out


def _env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_NET_FAULT", None)
    env.pop("REPRO_NET_FAULT_DIR", None)
    env.update(extra or {})
    return env


def _free_port():
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn(args, extra_env=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli"] + args,
        env=_env(extra_env),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _serve_args(sdir, port, **kw):
    args = [
        "serve",
        "--service-dir", str(sdir),
        "--http", f"127.0.0.1:{port}",
        "--workers", str(kw.get("workers", 0)),
        "--lease-ttl", str(kw.get("lease_ttl", 2.0)),
    ]
    if kw.get("exit_when_idle", True):
        args += ["--exit-when-idle", "--idle-grace",
                 str(kw.get("idle_grace", 2.0))]
    return args


def _work_args(port, worker_id, **kw):
    args = [
        "work",
        "--connect", f"http://127.0.0.1:{port}",
        "--worker-id", worker_id,
        "--poll", "0.05",
    ]
    if kw.get("exit_when_idle", True):
        args += ["--exit-when-idle", "--idle-grace",
                 str(kw.get("idle_grace", 1.0))]
    if kw.get("give_up_after"):
        args += ["--give-up-after", str(kw["give_up_after"])]
    return args


def _wait_serving(port, timeout_s=30.0):
    # A liveness probe hammers a not-yet-bound port, so give the
    # breaker a tiny cooldown — its production default (5s) would
    # outlast the idle-grace of short-lived test servers.
    client = SweepClient(
        f"http://127.0.0.1:{port}",
        retries=0,
        timeout_s=2.0,
        breaker_cooldown_s=0.05,
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if client.service_status().get("serving"):
                return client
        except Exception:
            time.sleep(0.1)
    raise AssertionError(f"server on :{port} never came up")


def _finish(proc, timeout=180, name="process"):
    try:
        out, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        raise AssertionError(f"{name} hung; output:\n{out[-3000:]}")
    return proc.returncode, out


def _assert_bit_identical(service_dir, tasks, baseline):
    state = fold_journal(service_dir)
    assert state.counts()[TaskState.COMPLETED] == len(tasks)
    cache = ResultCache(ServicePaths(service_dir).cache)
    for task, want in zip(tasks, baseline):
        assert cache.get(cache_key(task.describe())) == want


def _events(service_dir):
    records, _ = read_journal(ServicePaths(service_dir).journal)
    return records


@pytest.fixture(scope="module")
def baseline():
    tasks = _tasks()
    return tasks, ExperimentRunner().run(tasks)


class TestShardedSweep:
    def test_two_workers_shard_bit_identical(self, tmp_path, baseline):
        tasks, want = baseline
        sdir = tmp_path / "svc"
        port = _free_port()
        server = _spawn(_serve_args(sdir, port, idle_grace=3.0))
        try:
            client = _wait_serving(port)
            verdict = client.submit(build_submission(tasks))
            assert verdict["accepted"]
            workers = [
                _spawn(_work_args(port, f"shard-{i}")) for i in (1, 2)
            ]
            for proc in workers:
                code, out = _finish(proc)
                assert code == 0, out[-3000:]
            code, out = _finish(server)
            assert code == 0, out[-3000:]
        finally:
            if server.poll() is None:
                server.kill()
        _assert_bit_identical(sdir, tasks, want)
        granted = [
            r for r in _events(sdir) if r["event"] == "lease_granted"
        ]
        assert granted and all(
            r["worker"].startswith("shard-") for r in granted
        )

    def test_server_killed_and_restarted_converges(
        self, tmp_path, baseline
    ):
        tasks, want = baseline
        sdir = tmp_path / "svc"
        port = _free_port()
        server = _spawn(_serve_args(sdir, port, exit_when_idle=False))
        worker = None
        try:
            client = _wait_serving(port)
            client.submit(build_submission(tasks))
            worker = _spawn(
                _work_args(
                    port, "survivor", idle_grace=2.0, give_up_after=60
                )
            )
            # Let the sweep start, then kill the server hard.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(
                    r["event"] == "lease_granted" for r in _events(sdir)
                ):
                    break
                time.sleep(0.05)
            server.kill()
            server.wait(timeout=30)
            # Restart on the same port + service dir; the journal
            # re-derives the queue, the worker reconnects and finishes.
            # The idle grace must outlast the worker's open breaker
            # (5s cooldown after the kill window) or the restarted
            # server can idle-exit before the worker's half-open probe
            # ever reaches it — stranding the worker on a dead port.
            # --give-up-after is the backstop for that stranding.
            server = _spawn(_serve_args(sdir, port, idle_grace=8.0))
            code, out = _finish(worker)
            worker = None
            assert code == 0, out[-3000:]
            code, out = _finish(server)
            assert code == 0, out[-3000:]
        finally:
            if worker is not None and worker.poll() is None:
                worker.kill()
            if server.poll() is None:
                server.kill()
        _assert_bit_identical(sdir, tasks, want)
        events = [r["event"] for r in _events(sdir)]
        assert "service_resume" in events

    def test_worker_killed_reclaim_consumes_no_attempt(
        self, tmp_path, baseline
    ):
        tasks, want = baseline
        sdir = tmp_path / "svc"
        port = _free_port()
        server = _spawn(
            _serve_args(sdir, port, lease_ttl=1.5, idle_grace=4.0)
        )
        doomed = survivor = None
        try:
            client = _wait_serving(port)
            client.submit(build_submission(tasks))
            # This worker dies hard (os._exit) inside its first task:
            # no fail POST, no heartbeat — just silence.
            doomed = _spawn(
                _work_args(port, "doomed", exit_when_idle=False),
                extra_env={
                    "REPRO_FAULT_INJECT": "exit:times=1",
                    "REPRO_FAULT_DIR": str(tmp_path / "faults"),
                },
            )
            doomed.wait(timeout=120)
            assert doomed.returncode != 0
            survivor = _spawn(
                _work_args(port, "survivor", idle_grace=2.0)
            )
            code, out = _finish(survivor)
            survivor = None
            assert code == 0, out[-3000:]
            code, out = _finish(server)
            assert code == 0, out[-3000:]
        finally:
            for proc in (doomed, survivor):
                if proc is not None and proc.poll() is None:
                    proc.kill()
            if server.poll() is None:
                server.kill()
        _assert_bit_identical(sdir, tasks, want)
        records = _events(sdir)
        reclaims = [
            r for r in records if r["event"] == "lease_reclaimed"
        ]
        assert any(
            "watchdog: remote" in (r.get("reason") or "")
            for r in reclaims
        )
        # Reclaim is not evidence against the task: the silent death
        # consumed no retry attempt, so no task_failed was journaled.
        assert not any(r["event"] == "task_failed" for r in records)
        state = fold_journal(sdir)
        assert all(t.attempts == 0 for t in state.tasks.values())


class TestNetFaultInjection:
    def test_client_dropped_response_dedupes_on_retry(
        self, tmp_path, baseline, monkeypatch
    ):
        """The lost-ack case: the server accepts the sweep but the
        client never sees the 202; the retried POST converges on the
        same submit hash with zero new tasks."""
        tasks, want = baseline
        sdir = tmp_path / "svc"
        port = _free_port()
        server = _spawn(_serve_args(sdir, port, idle_grace=3.0))
        try:
            _wait_serving(port)
            # A retrying client (the probe client above deliberately
            # has retries=0) — the drop must be absorbed by a retry.
            client = SweepClient(
                f"http://127.0.0.1:{port}", retries=2, timeout_s=10.0
            )
            # Arm the drop only now, so the liveness probe above does
            # not consume the single fault slot: the next client-role
            # request — the submission POST — loses its response.
            monkeypatch.setenv(
                "REPRO_NET_FAULT", "drop:times=1,role=client"
            )
            monkeypatch.setenv(
                "REPRO_NET_FAULT_DIR", str(tmp_path / "net-faults")
            )
            verdict = client.submit(build_submission(tasks))
            # The client-side retry absorbed the drop invisibly.
            assert verdict["accepted"]
            assert verdict["new"] == 0 and verdict["deduped"] == len(tasks)
            worker = _spawn(_work_args(port, "w1"))
            code, out = _finish(worker)
            assert code == 0, out[-3000:]
            code, out = _finish(server)
            assert code == 0, out[-3000:]
        finally:
            if server.poll() is None:
                server.kill()
        _assert_bit_identical(sdir, tasks, want)
        # Idempotency on the journal: the dropped POST and its retry
        # are both admitted (each is journaled), but they converge on
        # one submit hash and the retry enqueues zero new tasks.
        records = _events(sdir)
        accepted = [r for r in records if r["event"] == "sweep_accepted"]
        assert {r["submit_id"] for r in accepted} == {verdict["submit_id"]}
        enqueued = [r for r in records if r["event"] == "task_enqueued"]
        assert len(enqueued) == len(tasks)

    def test_partitioned_worker_converges(self, tmp_path, baseline):
        tasks, want = baseline
        sdir = tmp_path / "svc"
        port = _free_port()
        server = _spawn(
            _serve_args(sdir, port, lease_ttl=2.0, idle_grace=3.0)
        )
        try:
            client = _wait_serving(port)
            client.submit(build_submission(tasks))
            worker = _spawn(
                _work_args(port, "flaky", idle_grace=2.0),
                extra_env={
                    "REPRO_NET_FAULT": "partition:times=2,role=worker",
                    "REPRO_NET_FAULT_DIR": str(tmp_path / "net-faults"),
                },
            )
            code, out = _finish(worker)
            assert code == 0, out[-3000:]
            code, out = _finish(server)
            assert code == 0, out[-3000:]
        finally:
            if server.poll() is None:
                server.kill()
        _assert_bit_identical(sdir, tasks, want)


class TestDrainUnderLoad:
    def test_sigterm_drains_clean_503_and_143(self, tmp_path):
        # Tasks long enough (~19s wall each) that SIGTERM lands while
        # they are genuinely in flight: the drain window (default 10s)
        # expires first, so the workers are terminated and their
        # leases *released* — the observable drain the test needs.
        # (2e6us sims finish in ~20ms — a 5ms drain window no probe
        # can hit.)
        tasks = _tasks(count=2, sim_time_us=5e9)
        sdir = tmp_path / "svc"
        port = _free_port()
        server = _spawn(
            _serve_args(sdir, port, workers=2, exit_when_idle=False)
        )
        try:
            client = _wait_serving(port)
            client.submit(build_submission(tasks))
            # Wait for in-flight work, then ask for a clean stop.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(
                    r["event"] == "lease_granted" for r in _events(sdir)
                ):
                    break
                time.sleep(0.05)
            server.send_signal(signal.SIGTERM)
            # During the drain: new submissions are refused with 503 +
            # Retry-After, not dropped on the floor.
            saw_503 = False
            for _ in range(100):
                try:
                    http_json(
                        "POST",
                        f"http://127.0.0.1:{port}/v1/sweeps",
                        body=build_submission(_tasks(1), label="late"),
                        timeout_s=5.0,
                    )
                except NetRequestError as exc:
                    if exc.status == 503:
                        assert exc.retry_after_s is not None
                        saw_503 = True
                        break
                    # status None is either connection-refused (drain
                    # already finished — the server is gone) or a
                    # starved-box timeout (keep probing).
                    if exc.status is None and server.poll() is not None:
                        break
                time.sleep(0.05)
            code, out = _finish(server)
        finally:
            if server.poll() is None:
                server.kill()
        # Supervisor convention: SIGTERM drain exits 128 + 15.
        assert code == 143, out[-3000:]
        records = _events(sdir)
        events = [r["event"] for r in records]
        assert "drain_start" in events
        assert events[-1] == "service_stop"
        # No leaked leases: every grant reached a terminal record, and
        # the fold shows nothing still leased.
        state = fold_journal(sdir)
        assert state.counts()[TaskState.LEASED] == 0
        # In-flight work finished during the drain window.
        granted = {
            r["task_id"] for r in records if r["event"] == "lease_granted"
        }
        completed = {
            r["task_id"] for r in records if r["event"] == "task_completed"
        }
        released = {
            r["task_id"]
            for r in records
            if r["event"] in ("lease_released", "lease_reclaimed")
        }
        assert granted <= (completed | released)
        assert saw_503 or not granted  # the drain window was observable
