"""In-process HTTP front-end tests: idempotency, backpressure, ETags.

One orchestrator + one :class:`ServiceHTTPServer` per test, exercised
through real sockets with :func:`repro.service.net.wire.http_json` —
the same code path the sweep client and remote workers use.
"""

import threading

import pytest

from repro.core.config import ScenarioConfig
from repro.runner import ExperimentRunner, SeedSpec, Task, TaskKind
from repro.runner.cache import cache_key
from repro.runner.serialize import scenario_to_jsonable
from repro.service import Orchestrator, ServiceConfig, TaskState
from repro.service.net import NetRequestError, http_json, serve_http
from repro.service.net.worker import work_loop
from repro.service.submit import build_submission
from repro.telemetry.openmetrics import validate_openmetrics

SIM_TIME_US = 1e5


def _tasks(count=2):
    out = []
    for i in range(count):
        scenario = ScenarioConfig.homogeneous(
            num_stations=i + 2, sim_time_us=SIM_TIME_US, seed=1
        )
        out.append(
            Task(
                kind=TaskKind.SIMULATE,
                payload={"scenario": scenario_to_jsonable(scenario)},
                seed=SeedSpec(root_seed=1, point_index=i, repetition=0),
            )
        )
    return out


@pytest.fixture()
def front(tmp_path):
    """(orchestrator, server) with no serve loop running."""
    orch = Orchestrator(
        ServiceConfig(
            service_dir=tmp_path / "svc",
            max_workers=0,
            poll_interval_s=0.01,
            idle_grace_s=0.5,
        )
    )
    with serve_http(orch, ":0") as server:
        yield orch, server
    orch.journal.close()


class TestSubmission:
    def test_post_is_idempotent_same_submit_id_as_cli_hash(self, front):
        orch, server = front
        tasks = _tasks()
        submission = build_submission(tasks, label="t")
        status, verdict, headers = http_json(
            "POST", server.url + "/v1/sweeps", body=submission
        )
        assert status == 202
        assert verdict["accepted"] is True
        # Server-side hash equals the client-side content hash.
        assert verdict["submit_id"] == submission["submit_id"]
        assert verdict["new"] == len(tasks)
        assert "ETag" in headers

        status2, verdict2, _ = http_json(
            "POST", server.url + "/v1/sweeps", body=submission
        )
        assert status2 == 202
        assert verdict2["submit_id"] == verdict["submit_id"]
        assert verdict2["new"] == 0
        assert verdict2["deduped"] == len(tasks)
        # Journal holds exactly one task_enqueued per task.
        with orch.lock:
            assert len(orch.state.tasks) == len(tasks)

    def test_submit_id_is_servers_not_clients(self, front):
        _orch, server = front
        submission = build_submission(_tasks(), label="t")
        submission["submit_id"] = "f" * 64  # lying client
        _status, verdict, _ = http_json(
            "POST", server.url + "/v1/sweeps", body=submission
        )
        assert verdict["submit_id"] != "f" * 64

    def test_malformed_submission_is_400(self, front):
        _orch, server = front
        status, body, _ = http_json(
            "POST", server.url + "/v1/sweeps", body={"tasks": []}
        )
        assert status == 400
        assert "error" in body

    def test_admission_control_429_with_retry_after(self, tmp_path):
        orch = Orchestrator(
            ServiceConfig(
                service_dir=tmp_path / "svc",
                max_workers=0,
                max_queue_depth=1,
            )
        )
        with serve_http(orch, ":0") as server:
            status, verdict, _ = http_json(
                "POST",
                server.url + "/v1/sweeps",
                body=build_submission(_tasks(1)),
            )
            assert status == 202
            with pytest.raises(NetRequestError) as info:
                http_json(
                    "POST",
                    server.url + "/v1/sweeps",
                    body=build_submission(_tasks(3), label="too big"),
                )
            assert info.value.status == 429
            assert info.value.retry_after_s is not None
        orch.journal.close()

    def test_draining_post_is_503_with_retry_after(self, front):
        orch, server = front
        orch.draining = True
        with pytest.raises(NetRequestError) as info:
            http_json(
                "POST",
                server.url + "/v1/sweeps",
                body=build_submission(_tasks(1)),
            )
        assert info.value.status == 503
        assert info.value.retry_after_s is not None


class TestStatusRoutes:
    def test_sweep_status_etag_304(self, front):
        _orch, server = front
        submission = build_submission(_tasks())
        http_json("POST", server.url + "/v1/sweeps", body=submission)
        url = server.url + f"/v1/sweeps/{submission['submit_id']}"
        status, doc, headers = http_json("GET", url)
        assert status == 200
        assert doc["done"] is False
        assert doc["counts"][TaskState.PENDING] == 2
        etag = headers["ETag"]
        status2, doc2, headers2 = http_json("GET", url, etag=etag)
        assert status2 == 304
        assert doc2 == {}
        assert headers2["ETag"] == etag

    def test_task_status_and_unknown_404(self, front):
        _orch, server = front
        tasks = _tasks()
        http_json(
            "POST", server.url + "/v1/sweeps", body=build_submission(tasks)
        )
        task_id = cache_key(tasks[0].describe())
        status, doc, _ = http_json(
            "GET", server.url + f"/v1/tasks/{task_id}"
        )
        assert status == 200
        assert doc["state"] == TaskState.PENDING
        assert doc["cached"] is False
        status404, _doc, _ = http_json(
            "GET", server.url + "/v1/tasks/" + "0" * 64
        )
        assert status404 == 404

    def test_service_status_route(self, front):
        orch, server = front
        status, doc, headers = http_json("GET", server.url + "/v1/status")
        assert status == 200
        assert doc["serving"] is True
        assert doc["draining"] is False
        assert doc["run_id"] == orch.trace.run_id
        # /v1/status is a poll target too: it honours If-None-Match.
        etag = headers["ETag"]
        status, _doc, _ = http_json(
            "GET", server.url + "/v1/status", etag=etag
        )
        assert status == 304

    def test_unknown_route_404(self, front):
        _orch, server = front
        status, _body, _ = http_json("GET", server.url + "/v1/nope")
        assert status == 404


class TestMetrics:
    def test_openmetrics_valid_and_counts_requests(self, front):
        _orch, server = front
        http_json("GET", server.url + "/v1/status")
        http_json("GET", server.url + "/v1/status")
        import urllib.request

        with urllib.request.urlopen(
            server.url + "/v1/metrics", timeout=10
        ) as resp:
            text = resp.read().decode("utf-8")
        assert validate_openmetrics(text) == []
        assert "service_http_requests_total" in text
        value = server._requests.value(
            method="GET", route="/v1/status", status="200"
        )
        assert value >= 2


class TestRemoteExecution:
    def test_worker_loop_completes_sweep_bit_identical(self, front):
        orch, server = front
        tasks = _tasks()
        want = ExperimentRunner().run(tasks)
        submission = build_submission(tasks)
        http_json("POST", server.url + "/v1/sweeps", body=submission)
        serve_thread = threading.Thread(
            target=orch.serve, kwargs={"exit_when_idle": True}, daemon=True
        )
        serve_thread.start()
        stats = work_loop(
            server.url, worker_id="t-worker", poll_s=0.02,
            exit_when_idle=True,
        )
        serve_thread.join(timeout=60)
        assert not serve_thread.is_alive()
        assert stats["completed"] == len(tasks)
        assert stats["failed"] == 0
        for task, expected in zip(tasks, want):
            assert orch.cache.get(cache_key(task.describe())) == expected

    def test_duplicate_commit_converges(self, front):
        orch, server = front
        tasks = _tasks(1)
        http_json(
            "POST", server.url + "/v1/sweeps", body=build_submission(tasks)
        )
        status, shard, _ = http_json(
            "POST", server.url + "/v1/claims", body={"worker_id": "w1"}
        )
        assert status == 200 and shard["task_id"]
        from repro.runner.tasks import run_task
        from repro.service.worker import task_from_description

        envelope = run_task(task_from_description(shard["task"]))
        body = {"worker_id": "w1", "result": envelope["result"]}
        url = server.url + f"/v1/tasks/{shard['task_id']}/result"
        _s, doc, _ = http_json("POST", url, body=body)
        assert doc["status"] == "committed"
        # The retried (lost-ack) commit is answered "duplicate".
        _s, doc2, _ = http_json("POST", url, body=body)
        assert doc2["status"] == "duplicate"

    def test_heartbeat_409_after_reclaim(self, front):
        orch, server = front
        tasks = _tasks(1)
        http_json(
            "POST", server.url + "/v1/sweeps", body=build_submission(tasks)
        )
        _s, shard, _ = http_json(
            "POST", server.url + "/v1/claims", body={"worker_id": "w1"}
        )
        task_id = shard["task_id"]
        hb_url = server.url + f"/v1/leases/{task_id}"
        status, doc, _ = http_json(
            "PUT", hb_url, body={"worker_id": "w1"}
        )
        assert status == 200 and doc["ok"] is True
        # Another worker's heartbeat for the same lease: refused.
        status2, _doc, _ = http_json(
            "PUT", hb_url, body={"worker_id": "imposter"}
        )
        assert status2 == 409
        # Reclaim (as the watchdog would), then the holder gets 409 too.
        with orch.lock:
            orch.journal.append(
                "lease_reclaimed", task_id=task_id, reason="test"
            )
            orch.state.tasks[task_id].state = TaskState.PENDING
            del orch._remote[task_id]
        status3, _doc, _ = http_json("PUT", hb_url, body={"worker_id": "w1"})
        assert status3 == 409

    def test_claims_refused_while_draining(self, front):
        orch, server = front
        orch.draining = True
        with pytest.raises(NetRequestError) as info:
            http_json(
                "POST",
                server.url + "/v1/claims",
                body={"worker_id": "w1"},
            )
        assert info.value.status == 503
