"""The orchestrator's scheduling contract, exercised in-process.

Everything here runs ``serve(exit_when_idle=True)`` in the test
process (workers are still real child processes); the crash-injection
suite lives in ``test_crash_resume.py``.
"""

import json

import pytest

from repro.core.config import ScenarioConfig
from repro.runner import ExperimentRunner, SeedSpec, Task, TaskKind
from repro.runner.cache import ResultCache, cache_key
from repro.runner.serialize import scenario_to_jsonable
from repro.service import (
    Orchestrator,
    ServiceConfig,
    TaskState,
    build_submission,
    fold_journal,
    read_quarantine_records,
    write_submission,
)
from repro.service.orchestrator import ServicePaths, request_drain
from repro.service.state import TaskRecord

SIM_TIME_US = 1e5


def _sim_task(n=2, seed=1, rep=0, point=0):
    scenario = ScenarioConfig.homogeneous(
        num_stations=n, sim_time_us=SIM_TIME_US, seed=seed
    )
    return Task(
        kind=TaskKind.SIMULATE,
        payload={"scenario": scenario_to_jsonable(scenario)},
        seed=SeedSpec(root_seed=seed, point_index=point, repetition=rep),
    )


def _poison_task():
    """A payload every ``simulate`` attempt fails on (missing scenario)."""
    return Task(kind=TaskKind.SIMULATE, payload={"broken": True})


def _submit(service_dir, tasks, label=None):
    paths = ServicePaths(service_dir)
    submission = build_submission(tasks, label=label)
    write_submission(paths.inbox, submission)
    return submission


def _serve(service_dir, **overrides):
    config = ServiceConfig(
        service_dir=service_dir,
        max_workers=overrides.pop("max_workers", 2),
        poll_interval_s=0.01,
        **overrides,
    )
    orchestrator = Orchestrator(config)
    state = orchestrator.serve(exit_when_idle=True)
    return orchestrator, state


class TestHappyPath:
    def test_sweep_completes_bit_identical_to_runner(self, tmp_path):
        tasks = [_sim_task(n, point=i) for i, n in enumerate((2, 3))]
        baseline = ExperimentRunner().run(tasks)
        _submit(tmp_path / "svc", tasks)
        _, state = _serve(tmp_path / "svc")
        assert state.counts()[TaskState.COMPLETED] == len(tasks)
        cache = ResultCache(ServicePaths(tmp_path / "svc").cache)
        for task, want in zip(tasks, baseline):
            assert cache.get(cache_key(task.describe())) == want

    def test_journal_records_full_lifecycle(self, tmp_path):
        _submit(tmp_path / "svc", [_sim_task()])
        _serve(tmp_path / "svc")
        from repro.service.journal import read_journal

        records, corrupt = read_journal(
            ServicePaths(tmp_path / "svc").journal
        )
        assert corrupt == 0
        events = [r["event"] for r in records]
        assert events[0] == "service_start"
        assert "sweep_accepted" in events
        assert "task_enqueued" in events
        assert "lease_granted" in events
        assert "task_completed" in events
        assert events[-1] == "service_stop"

    def test_telemetry_written_runner_compatible(self, tmp_path):
        _submit(tmp_path / "svc", [_sim_task()])
        _serve(tmp_path / "svc")
        telemetry = ServicePaths(tmp_path / "svc").telemetry
        trace = [
            json.loads(line)
            for line in (telemetry / "trace.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        events = {record["event"] for record in trace}
        assert {"run_start", "queued", "started", "finished", "run_end"} \
            <= events
        assert (telemetry / "spans.jsonl").is_file()
        assert (telemetry / "metrics.prom").is_file()
        from repro.telemetry.console import SweepStatus

        status = SweepStatus()
        for record in trace:
            status.update(record)
        assert status.run_ended
        assert status.kinds["simulate"].finished == 1

    def test_worker_attempt_spans_adopted(self, tmp_path):
        _submit(tmp_path / "svc", [_sim_task()])
        _serve(tmp_path / "svc")
        spans = [
            json.loads(line)
            for line in (
                ServicePaths(tmp_path / "svc").telemetry / "spans.jsonl"
            )
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        names = {s["name"] for s in spans}
        assert {"service", "point", "attempt"} <= names


class TestDedupe:
    def test_resubmission_dedupes_completed_tasks(self, tmp_path):
        tasks = [_sim_task()]
        _submit(tmp_path / "svc", tasks)
        _serve(tmp_path / "svc")
        _submit(tmp_path / "svc", tasks)
        _, state = _serve(tmp_path / "svc")
        submits = list(state.submits.values())
        assert len(submits) == 1  # same submit_id both times
        assert state.counts()[TaskState.COMPLETED] == 1
        # The second acceptance deduped the task instead of re-running.
        assert submits[0].deduped == 1

    def test_cached_result_completes_without_execution(self, tmp_path):
        task = _sim_task()
        key = cache_key(task.describe())
        result = ExperimentRunner().run([task])[0]
        cache = ResultCache(ServicePaths(tmp_path / "svc").cache)
        cache.put(key, result, task.describe())
        _submit(tmp_path / "svc", [task])
        _, state = _serve(tmp_path / "svc")
        record = state.tasks[key]
        assert record.state == TaskState.COMPLETED
        assert record.completed_from == "cache"
        from repro.service.journal import read_journal

        records, _ = read_journal(ServicePaths(tmp_path / "svc").journal)
        assert not any(r["event"] == "lease_granted" for r in records)


class TestQuarantine:
    def test_poison_task_quarantined_sweep_completes(self, tmp_path):
        poison = _poison_task()
        healthy = _sim_task()
        _submit(tmp_path / "svc", [poison, healthy])
        _, state = _serve(tmp_path / "svc", max_retries=1)
        counts = state.counts()
        assert counts[TaskState.COMPLETED] == 1
        assert counts[TaskState.QUARANTINED] == 1
        parked = state.tasks[cache_key(poison.describe())]
        assert parked.attempts == 2  # 1 + max_retries deterministic tries
        records = read_quarantine_records(
            ServicePaths(tmp_path / "svc").quarantine
        )
        assert len(records) == 1
        record = records[0]
        assert record["task_id"] == parked.task_id
        assert record["task"] == poison.describe()
        assert len(record["failures"]) == 2
        assert record["failures"][0]["error_type"] == "KeyError"
        assert record["failures"][0]["traceback"]

    def test_requarantined_task_can_be_resubmitted(self, tmp_path):
        poison = _poison_task()
        _submit(tmp_path / "svc", [poison])
        _serve(tmp_path / "svc", max_retries=0)
        # Resubmission re-enqueues a quarantined task (the operator
        # fixed the environment and wants a retry).
        _submit(tmp_path / "svc", [poison])
        _, state = _serve(tmp_path / "svc", max_retries=0)
        parked = state.tasks[cache_key(poison.describe())]
        assert parked.state == TaskState.QUARANTINED


class TestAdmissionControl:
    def test_over_depth_submission_rejected(self, tmp_path):
        tasks = [_sim_task(n, point=i) for i, n in enumerate((2, 3, 5))]
        submission = _submit(tmp_path / "svc", tasks)
        _, state = _serve(tmp_path / "svc", max_queue_depth=2)
        submit = state.submits[submission["submit_id"]]
        assert not submit.accepted
        assert "depth" in submit.reason
        assert state.counts()[TaskState.COMPLETED] == 0
        rejected = ServicePaths(tmp_path / "svc").rejected
        assert list(rejected.glob("*.json"))
        assert list(rejected.glob("*.reason.txt"))

    def test_malformed_submission_rejected(self, tmp_path):
        paths = ServicePaths(tmp_path / "svc")
        paths.inbox.mkdir(parents=True)
        (paths.inbox / "bad.json").write_text(
            "not json", encoding="utf-8"
        )
        _, state = _serve(tmp_path / "svc")
        assert any(
            not submit.accepted for submit in state.submits.values()
        )
        assert not list(paths.inbox.glob("*.json"))


class TestRecovery:
    def test_orphaned_lease_reclaimed_and_completed(self, tmp_path):
        """A journal that ends mid-lease (dead worker) is recovered."""
        from repro.service.journal import JournalWriter

        task = _sim_task()
        key = cache_key(task.describe())
        paths = ServicePaths(tmp_path / "svc")
        paths.root.mkdir(parents=True)
        with JournalWriter(paths.journal) as journal:
            journal.append("service_start", pid=1)
            journal.append(
                "sweep_accepted", submit_id="s", task_count=1, deduped=0
            )
            journal.append(
                "task_enqueued",
                task_id=key,
                submit_id="s",
                task=task.describe(),
            )
            journal.append(
                "lease_granted", task_id=key, ttl_s=10.0, attempt=0
            )
            # ... and the orchestrator died here: no heartbeat, no
            # worker, no outcome.
        _, state = _serve(tmp_path / "svc")
        assert state.tasks[key].state == TaskState.COMPLETED
        from repro.service.journal import read_journal

        records, _ = read_journal(paths.journal)
        events = [r["event"] for r in records]
        assert "service_resume" in events
        assert "lease_reclaimed" in events
        # The reclaim consumed no attempt: the completion is attempt 0.
        assert state.tasks[key].attempts == 0

    def test_resume_is_bit_identical(self, tmp_path):
        """Interrupted-then-resumed == uninterrupted, bit for bit."""
        task = _sim_task()
        key = cache_key(task.describe())
        baseline = ExperimentRunner().run([task])[0]
        from repro.service.journal import JournalWriter

        paths = ServicePaths(tmp_path / "svc")
        paths.root.mkdir(parents=True)
        with JournalWriter(paths.journal) as journal:
            journal.append("service_start", pid=1)
            journal.append(
                "task_enqueued", task_id=key, task=task.describe()
            )
            journal.append("lease_granted", task_id=key, attempt=0)
        _serve(tmp_path / "svc")
        assert ResultCache(paths.cache).get(key) == baseline


class TestDrain:
    def test_drain_marker_stops_loop_with_pending_work(self, tmp_path):
        tasks = [_sim_task(n, point=i) for i, n in enumerate((2, 3))]
        _submit(tmp_path / "svc", tasks)
        request_drain(tmp_path / "svc")
        orchestrator, state = _serve(tmp_path / "svc")
        # Drained before dispatching anything: everything still owed.
        assert state.counts()[TaskState.COMPLETED] == 0
        assert state.stopped_clean
        from repro.service.journal import read_journal

        records, _ = read_journal(
            ServicePaths(tmp_path / "svc").journal
        )
        events = [r["event"] for r in records]
        assert "drain_start" in events
        assert events[-1] == "service_stop"
        # The marker is consumed so a restart serves normally.
        assert not ServicePaths(tmp_path / "svc").drain_marker.exists()

    def test_serve_after_drain_finishes_the_work(self, tmp_path):
        tasks = [_sim_task()]
        _submit(tmp_path / "svc", tasks)
        request_drain(tmp_path / "svc")
        _serve(tmp_path / "svc")
        _, state = _serve(tmp_path / "svc")
        assert state.counts()[TaskState.COMPLETED] == 1
