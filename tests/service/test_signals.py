"""Signal handling: raise-mode unwinding, flag-mode drain, CLI flush."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.service.signals import (
    SHUTDOWN_SIGNALS,
    ShutdownRequested,
    handle_signals,
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestRaiseMode:
    @pytest.mark.parametrize("signum", SHUTDOWN_SIGNALS)
    def test_signal_raises_shutdown_requested(self, signum):
        with pytest.raises(ShutdownRequested) as excinfo:
            with handle_signals(mode="raise"):
                os.kill(os.getpid(), signum)
                time.sleep(5)  # the raise lands before this expires
        assert excinfo.value.signum == signum
        assert excinfo.value.exit_status == 128 + signum

    def test_finally_blocks_run_on_signal(self):
        cleaned = []
        with pytest.raises(ShutdownRequested):
            with handle_signals(mode="raise"):
                try:
                    os.kill(os.getpid(), signal.SIGTERM)
                    time.sleep(5)
                finally:
                    cleaned.append(True)
        assert cleaned == [True]

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with handle_signals(mode="raise"):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_shutdown_requested_is_not_an_exception_subclass(self):
        # ``except Exception`` must not swallow a shutdown request.
        assert not issubclass(ShutdownRequested, Exception)
        assert issubclass(ShutdownRequested, BaseException)


class TestFlagMode:
    def test_flag_set_without_raising(self):
        with handle_signals(mode="flag") as flag:
            assert not flag.is_set()
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.time() + 2
            while not flag.is_set() and time.time() < deadline:
                time.sleep(0.01)
            assert flag.is_set()
            assert flag.signum == signal.SIGTERM

    def test_noop_off_main_thread(self):
        results = {}

        def worker():
            with handle_signals(mode="flag") as flag:
                results["flag"] = flag

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # Installing handlers off the main thread is impossible; the
        # context still yields a (never-set) flag instead of crashing.
        assert not results["flag"].is_set()


class TestCliInterruption:
    def test_sigterm_mid_sweep_flushes_telemetry(self, tmp_path):
        """satellite (b): SIGTERM during ``repro-plc sweep`` exits 143
        with spans closed and the trace JSONL flushed and parseable."""
        telemetry = tmp_path / "telemetry"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.tools.cli",
                "sweep",
                "--counts",
                "30",
                "40",
                "--sim-time",
                "2e7",
                "--reps",
                "2",
                "--workers",
                "2",
                "--telemetry-dir",
                str(telemetry),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Wait for the sweep to actually start writing telemetry so the
        # signal lands mid-run, not during argparse.
        deadline = time.time() + 60
        while time.time() < deadline:
            if (telemetry / "trace.jsonl").exists():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        assert proc.poll() is None, proc.communicate()[1][-2000:]
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 128 + signal.SIGTERM
        assert "interrupted" in stderr
        trace_lines = (
            (telemetry / "trace.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        )
        records = [json.loads(line) for line in trace_lines]
        assert any(r["event"] == "run_start" for r in records)
        spans = [
            json.loads(line)
            for line in (telemetry / "spans.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        # Every span record is complete (closed), none torn.
        assert spans
        for record in spans:
            assert "span_id" in record and "name" in record
