"""BatchRunner telemetry: spans, trace events, and run_id stamping.

Regression suite for the batch path specifically — its trace events
are emitted from vectorized code, not from ``ExperimentRunner``, so
the scalar propagation tests do not cover it (a ``task.kind.value``
crash on the cache-hit path once slipped through exactly this gap).
"""

import json

from repro.core import ScenarioConfig
from repro.runner import BatchRunner
import repro.runner.batch as batch_module
from repro.telemetry.openmetrics import validate_openmetrics

SIM_TIME_US = 1e5


def _scenarios():
    return [
        ScenarioConfig.homogeneous(2, sim_time_us=SIM_TIME_US),
        ScenarioConfig.homogeneous(3, sim_time_us=SIM_TIME_US),
    ]


def _read_jsonl(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_batch_run_emits_correlated_telemetry(tmp_path, monkeypatch):
    # The kernel currently admits every scenario, so force the last
    # point onto the scalar fallback to cover its span too.
    scenarios = _scenarios() + [
        ScenarioConfig.homogeneous(4, sim_time_us=SIM_TIME_US)
    ]
    fallback = scenarios[-1]
    monkeypatch.setattr(
        batch_module,
        "supports_scenario",
        lambda scenario: scenario != fallback,
    )
    tel = tmp_path / "tel"
    runner = BatchRunner(telemetry_dir=tel)
    runner.run_scenarios(scenarios, root_seed=3)

    trace = _read_jsonl(tel / "trace.jsonl")
    spans = _read_jsonl(tel / "spans.jsonl")
    assert trace and spans
    for record in trace + spans:
        assert record["run_id"] == runner.run_id

    events = [r["event"] for r in trace]
    assert events[0] == "run_start"
    assert events[-1] == "run_end"
    # One queued + started + finished triple per point, kind stamped
    # as the plain string the scalar runner uses.
    per_point = [r for r in trace if r["event"] == "queued"]
    assert len(per_point) == 3
    assert all(r["kind"] == "simulate" for r in per_point)
    assert sum(1 for r in trace if r["event"] == "finished") == 3

    names = {r["name"] for r in spans if r["event"] == "span_start"}
    assert "batch_sweep" in names
    assert "batch_chunk" in names
    assert "scalar_fallback" in names  # the unsupported point
    started = {r["span_id"] for r in spans if r["event"] == "span_start"}
    ended = {r["span_id"] for r in spans if r["event"] == "span_end"}
    assert started == ended

    prom = (tel / "metrics.prom").read_text(encoding="utf-8")
    assert validate_openmetrics(prom) == []
    assert runner.run_id in prom


def test_batch_cache_hits_traced(tmp_path):
    cache = tmp_path / "cache"
    scenarios = _scenarios()
    cold = BatchRunner(cache_dir=cache, telemetry_dir=tmp_path / "t1")
    warm = BatchRunner(cache_dir=cache, telemetry_dir=tmp_path / "t2")
    baseline = cold.run_scenarios(scenarios, root_seed=3)
    resumed = warm.run_scenarios(scenarios, root_seed=3)
    assert baseline == resumed

    warm_trace = _read_jsonl(tmp_path / "t2" / "trace.jsonl")
    hits = [r for r in warm_trace if r["event"] == "cache_hit"]
    assert len(hits) == len(scenarios)
    assert all(r["kind"] == "simulate" for r in hits)
    assert all(r["run_id"] == warm.run_id for r in warm_trace)
    assert not any(r["event"] == "queued" for r in warm_trace)


def test_batch_results_identical_with_and_without_telemetry(tmp_path):
    scenarios = _scenarios()
    bare = BatchRunner().run_scenarios(scenarios, root_seed=5)
    traced = BatchRunner(telemetry_dir=tmp_path / "tel").run_scenarios(
        scenarios, root_seed=5
    )
    assert bare == traced


def test_batch_zero_cost_when_disabled(tmp_path):
    runner = BatchRunner()
    assert runner.trace is None
    assert runner.spans is None
    assert runner.run_id is None
    runner.run_scenarios(_scenarios(), root_seed=5)
    assert not list(tmp_path.rglob("*.jsonl"))
