"""The committed BENCH_summary.json stays in sync with its inputs."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO / "benchmarks"


def test_committed_summary_is_current():
    result = subprocess.run(
        [sys.executable, str(BENCH_DIR / "bench_summary.py"), "--check"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_summary_covers_every_artifact():
    summary = json.loads(
        (BENCH_DIR / "BENCH_summary.json").read_text(encoding="utf-8")
    )
    committed = {
        path.name
        for path in BENCH_DIR.glob("BENCH_*.json")
        if path.name != "BENCH_summary.json"
    }
    listed = {entry["name"] + ".json" for entry in summary["artifacts"]}
    assert listed == committed
    assert summary["artifact_count"] == len(committed)
    for entry in summary["artifacts"]:
        assert "error" in entry or entry["metrics"], entry["name"]
