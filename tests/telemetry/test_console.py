"""SweepStatus folding, rendering, and the follow() driver."""

import json

from repro.telemetry.console import (
    SweepStatus,
    follow,
    render_status,
)


def _trace(run_id="a" * 16):
    return [
        {"event": "run_start", "t_s": 0.0, "epoch_s": 1000.0,
         "run_id": run_id},
        {"event": "queued", "t_s": 0.1, "kind": "simulate",
         "run_id": run_id},
        {"event": "queued", "t_s": 0.1, "kind": "simulate",
         "run_id": run_id},
        {"event": "cache_hit", "t_s": 0.1, "kind": "simulate",
         "run_id": run_id},
        {"event": "started", "t_s": 0.2, "kind": "simulate",
         "run_id": run_id},
        {"event": "finished", "t_s": 1.2, "kind": "simulate",
         "duration_s": 1.0, "run_id": run_id},
        {"event": "started", "t_s": 1.3, "kind": "simulate",
         "run_id": run_id},
        {"event": "timeout", "t_s": 2.0, "kind": "simulate",
         "run_id": run_id},
        {"event": "retried", "t_s": 2.0, "kind": "simulate",
         "run_id": run_id},
        {"event": "started", "t_s": 2.1, "kind": "simulate",
         "run_id": run_id},
    ]


class TestFolding:
    def test_counters(self):
        status = SweepStatus()
        status.update_all(_trace())
        assert status.run_id == "a" * 16
        kind = status.kinds["simulate"]
        assert kind.queued == 2
        assert kind.cache_hits == 1
        assert kind.started == 3
        assert kind.finished == 1
        assert kind.retried == 1
        assert kind.timeouts == 1
        assert status.total == 3  # 2 queued + 1 cache hit
        assert status.done == 2  # 1 finished + 1 cache hit
        assert not status.run_ended

    def test_eta_from_completed_throughput(self):
        status = SweepStatus()
        status.update_all(_trace())
        # 1 completed (finished) over 2.1s elapsed, 1 remaining.
        eta = status.eta_s()
        assert eta is not None and abs(eta - 2.1) < 1e-9

    def test_run_end_zeroes_eta(self):
        status = SweepStatus()
        status.update_all(_trace())
        status.update({"event": "run_end", "t_s": 3.0})
        assert status.run_ended
        assert status.eta_s() == 0.0

    def test_rates(self):
        status = SweepStatus()
        status.update_all(_trace())
        rates = status.rates()
        assert abs(rates["cache_hit_rate"] - 1 / 3) < 1e-9
        assert abs(rates["retry_rate"] - 1 / 3) < 1e-9
        assert abs(rates["timeout_rate"] - 1 / 3) < 1e-9

    def test_chaos_episode_tracking(self):
        status = SweepStatus()
        status.update({"event": "span_start", "span_id": "s1",
                       "name": "chaos_test", "t_s": 0.5})
        status.update({"event": "span_start", "span_id": "s2",
                       "name": "point", "t_s": 0.6})
        episodes = status.chaos_episodes()
        assert [e["span_id"] for e in episodes] == ["s1"]
        status.update({"event": "span_end", "span_id": "s1",
                       "name": "chaos_test", "t_s": 1.5})
        assert status.chaos_episodes() == []
        assert len(status.open_spans) == 1

    def test_as_dict_is_jsonable(self):
        status = SweepStatus()
        status.update_all(_trace())
        json.dumps(status.as_dict())


class TestRender:
    def test_frame_contents(self):
        status = SweepStatus()
        status.update_all(_trace())
        frame = render_status(status)
        assert "a" * 16 in frame
        assert "2/3" in frame
        assert "simulate" in frame
        assert "cache-hit 33%" in frame

    def test_progress_bar_full_when_done(self):
        status = SweepStatus()
        status.update_all(_trace())
        status.update({"event": "finished", "t_s": 3.0,
                       "kind": "simulate", "duration_s": 0.1})
        frame = render_status(status)
        assert "3/3" in frame
        assert "#" * 24 in frame


class TestFollow:
    def test_once_mode_reads_current_state(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for record in _trace() + [{"event": "run_end", "t_s": 3.0}]:
                handle.write(json.dumps(record) + "\n")
        frames = []
        status = follow(trace, once=True, emit=frames.append)
        assert status.run_ended
        assert len(frames) == 1
        assert "ended" in frames[0]

    def test_follow_stops_on_run_end(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        spans = tmp_path / "spans.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for record in _trace() + [{"event": "run_end", "t_s": 3.0}]:
                handle.write(json.dumps(record) + "\n")
        with open(spans, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"event": "span_start", "span_id": "x", "name": "sweep",
                 "t_s": 0.0}) + "\n")
        frames = []
        status = follow(
            trace, spans_path=spans, interval_s=0.01, emit=frames.append
        )
        assert status.run_ended
        assert status.spans_seen == 1
        assert frames
