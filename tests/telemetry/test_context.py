"""Ambient telemetry context: activation stack and the span() helper."""

import pytest

from repro.telemetry.context import (
    TelemetryContext,
    activate,
    current,
    current_ids,
    new_run_id,
    new_span_id,
    span,
)
from repro.telemetry.spans import SpanRecorder


class TestIds:
    def test_shape(self):
        run = new_run_id()
        assert len(run) == 16
        int(run, 16)  # hex

    def test_unique(self):
        assert len({new_run_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64


class TestActivation:
    def test_no_context_by_default(self):
        assert current() is None
        assert current_ids() is None

    def test_activate_and_restore(self):
        context = TelemetryContext("r" * 16, "s" * 16)
        with activate(context):
            assert current() is context
            assert current_ids() == {
                "run_id": "r" * 16,
                "span_id": "s" * 16,
            }
        assert current() is None

    def test_nesting_inner_wins(self):
        outer = TelemetryContext("a" * 16, "1" * 16)
        inner = TelemetryContext("b" * 16, "2" * 16)
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_restore_on_exception(self):
        context = TelemetryContext("r" * 16, "s" * 16)
        with pytest.raises(RuntimeError):
            with activate(context):
                raise RuntimeError("boom")
        assert current() is None


class TestSpanHelper:
    def test_noop_without_context(self):
        with span("anything") as span_id:
            assert span_id is None
        assert current() is None

    def test_records_child_span(self):
        recorder = SpanRecorder(run_id="f" * 16)
        root = recorder.start("root")
        with activate(TelemetryContext("f" * 16, root, recorder=recorder)):
            with span("child", foo=1) as child_id:
                assert child_id is not None
                # The ambient span becomes the child for the body.
                assert current().span_id == child_id
            assert current().span_id == root
        events = [dict(e) for e in recorder.events]
        starts = [e for e in events if e["event"] == "span_start"]
        ends = [e for e in events if e["event"] == "span_end"]
        assert [s["name"] for s in starts] == ["root", "child"]
        assert starts[1]["parent_id"] == root
        assert starts[1]["attrs"] == {"foo": 1}
        assert len(ends) == 1 and ends[0]["status"] == "ok"

    def test_error_status_on_exception(self):
        recorder = SpanRecorder(run_id="f" * 16)
        root = recorder.start("root")
        with activate(TelemetryContext("f" * 16, root, recorder=recorder)):
            with pytest.raises(ValueError):
                with span("child"):
                    raise ValueError("nope")
        ends = [
            dict(e) for e in recorder.events if e["event"] == "span_end"
        ]
        assert ends and ends[-1]["status"] == "error"
