"""OpenMetrics rendering + the dependency-free format validator."""

from repro.core.metrics import RunnerCounters
from repro.obs.registry import MetricsRegistry
from repro.telemetry.openmetrics import (
    render_openmetrics,
    render_runner_counters,
    validate_openmetrics,
    write_openmetrics,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "mac_slots_total", "slots", labelnames=("outcome",)
    )
    counter.inc(3, outcome="success")
    counter.inc(1, outcome="collision")
    gauge = registry.gauge("queue_depth", "depth", labelnames=("station",))
    gauge.set(4, station="sta1")
    histogram = registry.histogram(
        "burst_airtime_us", "airtime", buckets=(100.0, 1000.0)
    )
    for value in (50.0, 150.0, 2500.0):
        histogram.observe(value)
    return registry


class TestRender:
    def test_counter_family_and_samples(self):
        text = render_openmetrics(metrics=_registry())
        assert "# TYPE mac_slots counter" in text
        assert 'mac_slots_total{outcome="success"} 3' in text
        assert 'mac_slots_total{outcome="collision"} 1' in text

    def test_gauge(self):
        text = render_openmetrics(metrics=_registry())
        assert "# TYPE queue_depth gauge" in text
        assert 'queue_depth{station="sta1"} 4' in text

    def test_histogram_cumulative_buckets(self):
        text = render_openmetrics(metrics=_registry())
        assert "# TYPE burst_airtime_us histogram" in text
        assert 'burst_airtime_us_bucket{le="100"} 1' in text
        assert 'burst_airtime_us_bucket{le="1000"} 2' in text
        assert 'burst_airtime_us_bucket{le="+Inf"} 3' in text
        assert "burst_airtime_us_count 3" in text

    def test_histogram_summary_quantiles(self):
        text = render_openmetrics(metrics=_registry())
        assert "# TYPE burst_airtime_us_summary summary" in text
        assert 'burst_airtime_us_summary{quantile="0.5"}' in text
        assert 'burst_airtime_us_summary{quantile="0.99"}' in text
        assert "burst_airtime_us_summary_count 3" in text

    def test_registry_and_snapshot_render_identically(self):
        registry = _registry()
        assert render_openmetrics(metrics=registry) == render_openmetrics(
            metrics=registry.as_dict()
        )

    def test_run_info_and_eof(self):
        text = render_openmetrics(run_id="abcd" * 4)
        assert 'run_info{run_id="abcdabcdabcdabcd"} 1' in text
        assert text.endswith("# EOF\n")

    def test_runner_counters(self):
        counters = RunnerCounters()
        counters.points_total = 9
        counters.executed = 7
        counters.workers = 2
        lines = render_runner_counters(counters)
        assert "# TYPE runner_points counter" in lines
        assert "runner_points_total 9" in lines
        assert "# TYPE runner_executed counter" in lines
        assert "runner_executed_total 7" in lines
        assert "# TYPE runner_workers gauge" in lines
        assert "runner_workers 2" in lines


class TestValidate:
    def test_full_exposition_passes(self):
        counters = RunnerCounters()
        counters.points_total = 3
        text = render_openmetrics(
            metrics=_registry(), runner_counters=counters, run_id="e" * 16
        )
        assert validate_openmetrics(text) == []

    def test_missing_eof(self):
        problems = validate_openmetrics("# TYPE x gauge\nx 1\n")
        assert any("EOF" in p for p in problems)

    def test_undeclared_family(self):
        problems = validate_openmetrics("mystery_metric 1\n# EOF\n")
        assert any("no # TYPE family" in p for p in problems)

    def test_duplicate_family(self):
        text = "# TYPE x gauge\nx 1\n# TYPE x gauge\nx 2\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("declared twice" in p for p in problems)

    def test_non_numeric_value(self):
        text = "# TYPE x gauge\nx banana\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("non-numeric" in p for p in problems)

    def test_special_values_allowed(self):
        text = "# TYPE x gauge\nx +Inf\nx NaN\n# EOF\n"
        assert validate_openmetrics(text) == []


class TestWrite:
    def test_atomic_write(self, tmp_path):
        path = tmp_path / "nested" / "metrics.prom"
        counters = RunnerCounters()
        counters.points_total = 1
        out = write_openmetrics(path, runner_counters=counters)
        assert out == path
        text = path.read_text(encoding="utf-8")
        assert validate_openmetrics(text) == []
        assert not list(tmp_path.glob("**/*.tmp"))
