"""Locks in the telemetry cost model: <5 % enabled, ~zero disabled.

A direct with/without wall-clock comparison is hopelessly noisy on
shared CI hardware, so — like ``tests/obs/test_overhead.py`` — the
bounds are established deterministically:

1. run a fixed collision-test point once through an uninstrumented
   runner (the baseline wall time) and once through a telemetry-enabled
   runner, counting every trace/span record it flushes;
2. each record corresponds to one guarded emission site, so the record
   count is the number of ``spans is not None``-shaped guard passes a
   telemetry-free run pays for the same work;
3. micro-benchmark the guard and the actual recording calls (loop
   overhead included, i.e. conservatively high) and assert that
   ``sites x cost`` stays under 5 % of the baseline in both modes.

The key property being locked in: telemetry cost scales with the
number of *lifecycle* records (a handful per task), never with the
number of simulated events.
"""

import json
import time
import timeit

from repro.core import ScenarioConfig
from repro.runner import ExperimentRunner, Task, TaskKind
from repro.runner.seeding import SeedSpec
from repro.runner.serialize import scenario_to_jsonable
from repro.telemetry.spans import SpanRecorder
from repro.runner.telemetry import TraceRecorder

STATIONS = 3
SIM_TIME_US = 1.0e6
SEED = 11


class _Site:
    """Stand-in for a guarded emission site: same shape as the runner."""

    __slots__ = ("spans",)

    def __init__(self):
        self.spans = None


def _task() -> Task:
    return Task(
        kind=TaskKind.SIMULATE,
        payload={
            "scenario": scenario_to_jsonable(
                ScenarioConfig.homogeneous(
                    num_stations=STATIONS, sim_time_us=SIM_TIME_US, seed=SEED
                )
            ),
            "record_winners": False,
        },
        seed=SeedSpec(root_seed=SEED, point_index=0, repetition=0),
    )


def _count_lines(path) -> int:
    if not path.exists():
        return 0
    with open(path, encoding="utf-8") as handle:
        return sum(1 for line in handle if line.strip())


def _guard_cost_s() -> float:
    """Seconds per ``spans is not None`` guard, loop overhead included."""
    site = _Site()
    number = 200_000
    return (
        timeit.timeit(
            "site.spans is not None", globals={"site": site}, number=number
        )
        / number
    )


def _record_cost_s() -> float:
    """Seconds per in-memory trace record (the enabled-path unit cost)."""
    trace = TraceRecorder()
    number = 20_000
    return (
        timeit.timeit(
            'trace.record("started", kind="simulate", task_index=0)',
            globals={"trace": trace},
            number=number,
        )
        / number
    )


def _span_pair_cost_s() -> float:
    """Seconds per start+end span pair, ids and timestamps included."""
    spans = SpanRecorder(run_id="f" * 16)
    number = 5_000
    return (
        timeit.timeit(
            'spans.end(spans.start("attempt"))',
            globals={"spans": spans},
            number=number,
        )
        / number
    )


def test_telemetry_budget_under_5_percent(tmp_path):
    started = time.perf_counter()
    (baseline,) = ExperimentRunner(max_workers=1).run([_task()])
    baseline_s = time.perf_counter() - started

    telemetry_dir = tmp_path / "tel"
    traced_runner = ExperimentRunner(
        max_workers=1, telemetry_dir=telemetry_dir
    )
    (traced,) = traced_runner.run([_task()])
    assert traced == baseline  # telemetry never perturbs results

    trace_records = _count_lines(telemetry_dir / "trace.jsonl")
    span_records = _count_lines(telemetry_dir / "spans.jsonl")
    assert trace_records > 0 and span_records > 0
    sites = trace_records + span_records
    # Lifecycle telemetry is a handful of records per task — if this
    # ever scales with simulated events the budget math below is moot.
    assert sites < 200, f"{sites} records for one task: per-event leak?"

    # Disabled mode: every emission site degenerates to one guard.
    guard_budget_s = sites * _guard_cost_s()
    assert guard_budget_s < 0.05 * baseline_s, (
        f"{sites} guards x {_guard_cost_s()*1e9:.0f} ns "
        f"= {guard_budget_s*1e3:.3f} ms, over 5% of the "
        f"{baseline_s*1e3:.0f} ms baseline"
    )

    # Enabled mode: records are appended in memory and flushed once.
    span_pairs = span_records // 2
    recording_budget_s = (
        trace_records * _record_cost_s() + span_pairs * _span_pair_cost_s()
    )
    assert recording_budget_s < 0.05 * baseline_s, (
        f"{trace_records} trace records + {span_pairs} span pairs "
        f"= {recording_budget_s*1e3:.1f} ms, over 5% of the "
        f"{baseline_s*1e3:.0f} ms baseline"
    )


def test_jsonl_stamp_is_skipped_without_active_run(tmp_path):
    """The per-line run_id stamp costs one dict lookup when inactive."""
    from repro.obs.recording import append_jsonl

    path = tmp_path / "events.jsonl"
    append_jsonl(path, [{"event": "slot"}])
    with open(path, encoding="utf-8") as handle:
        (line,) = handle.readlines()
    assert "run_id" not in json.loads(line)
