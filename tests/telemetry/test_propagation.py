"""End-to-end run_id correlation across every JSONL family.

The ISSUE-level acceptance test: one chaos + checkpoint sweep with
telemetry enabled must leave runner trace, span, obs (MAC/SoF/chaos
ledger) and checkpoint-journal JSONL streams that all carry the same
``run_id`` — the property that makes any line from any stream joinable
back to its run.
"""

import json
from pathlib import Path

from repro.chaos.plan import preset_plan
from repro.core import ScenarioConfig
from repro.runner import ExperimentRunner, Task, TaskKind
from repro.runner.seeding import SeedSpec
from repro.runner.serialize import scenario_to_jsonable
from repro.telemetry.openmetrics import validate_openmetrics

STATIONS = 2
DURATION_US = 1.2e6
WARMUP_US = 0.2e6


def _tasks(obs_dir: Path):
    # The "full" preset at this duration/seed deterministically fires
    # churn + SACK faults (see tests/chaos/test_runner_chaos.py), so
    # the chaos ledger is guaranteed to be non-empty.
    plan = preset_plan("full", DURATION_US, seed=3)
    chaos_obs = Task(
        kind=TaskKind.COLLISION_TEST,
        payload={
            "num_stations": STATIONS,
            "duration_us": DURATION_US,
            "warmup_us": WARMUP_US,
            "seed": 1,
            "testbed_kwargs": {},
            "chaos": plan.as_jsonable(),
            "obs": {"dir": str(obs_dir), "label": "chaos"},
        },
    )
    checkpointed = Task(
        kind=TaskKind.COLLISION_TEST,
        payload={
            "num_stations": STATIONS,
            "duration_us": DURATION_US,
            "warmup_us": WARMUP_US,
            "seed": 2,
            "testbed_kwargs": {},
        },
    )
    simulate = Task(
        kind=TaskKind.SIMULATE,
        payload={
            "scenario": scenario_to_jsonable(
                ScenarioConfig.homogeneous(
                    num_stations=STATIONS, sim_time_us=0.5e6, seed=3
                )
            ),
            "record_winners": False,
        },
        seed=SeedSpec(root_seed=3, point_index=0, repetition=0),
    )
    return [chaos_obs, checkpointed, simulate]


def _jsonl_lines(root: Path):
    for path in sorted(Path(root).rglob("*.jsonl")):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    yield path, json.loads(line)


class TestRunIdPropagation:
    def test_one_run_id_across_all_streams(self, tmp_path):
        telemetry_dir = tmp_path / "tel"
        obs_dir = tmp_path / "obs"
        checkpoint_dir = tmp_path / "ckpt"
        runner = ExperimentRunner(
            max_workers=1,
            telemetry_dir=telemetry_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_us=2e5,
        )
        results = runner.run(_tasks(obs_dir))
        assert all(result is not None for result in results)
        run_id = runner.run_id

        # Every JSONL family under every directory carries the run_id.
        for path, record in _jsonl_lines(tmp_path):
            assert record.get("run_id") == run_id, (
                f"{path.name}: line without the run's id: {record}"
            )

        # All four stream families actually exist (else the assertion
        # above is vacuous): runner trace+spans, obs traces, the chaos
        # ledger, and the checkpoint journal.
        names = {path.name for path, _ in _jsonl_lines(tmp_path)}
        assert "trace.jsonl" in names
        assert "spans.jsonl" in names
        assert "journal.jsonl" in names
        assert any(name.startswith("mac_trace") for name in names)
        assert any(name.startswith("chaos_ledger") for name in names)

        # The journal recorded the checkpoint saves of this run.
        journal = [
            record
            for path, record in _jsonl_lines(checkpoint_dir)
            if path.name == "journal.jsonl"
        ]
        assert any(r["event"] == "checkpoint_save" for r in journal)

        # Spans: sweep -> point -> attempt hierarchy, all closed.
        spans = [
            record
            for path, record in _jsonl_lines(telemetry_dir)
            if path.name == "spans.jsonl"
        ]
        starts = [r for r in spans if r["event"] == "span_start"]
        names = {r["name"] for r in starts}
        assert {"sweep", "point", "attempt"} <= names
        assert "chaos_test" in names  # the injected episode's span
        started = {r["span_id"] for r in starts}
        ended = {r["span_id"] for r in spans if r["event"] == "span_end"}
        assert started == ended

        # The OpenMetrics textfile was written and passes the format
        # self-check, and carries the run_id.
        prom = (telemetry_dir / "metrics.prom").read_text(encoding="utf-8")
        assert validate_openmetrics(prom) == []
        assert run_id in prom

    def test_resume_journals_under_new_run_id(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        task = Task(
            kind=TaskKind.COLLISION_TEST,
            payload={
                "num_stations": STATIONS,
                "duration_us": DURATION_US,
                "warmup_us": WARMUP_US,
                "seed": 5,
                "testbed_kwargs": {},
            },
        )
        first = ExperimentRunner(
            max_workers=1,
            telemetry_dir=tmp_path / "tel1",
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_us=2e5,
        )
        (baseline,) = first.run([task])
        # No cache: the second run recomputes but resumes from the
        # first run's newest snapshot, journaling under its own run_id.
        second = ExperimentRunner(
            max_workers=1,
            telemetry_dir=tmp_path / "tel2",
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_us=2e5,
        )
        (resumed,) = second.run([task])
        assert resumed == baseline  # resume is bit-identical
        assert second.run_id != first.run_id
        journal = [
            record
            for _, record in _jsonl_lines(checkpoint_dir)
        ]
        resumes = [
            r for r in journal if r["event"] == "checkpoint_resume"
        ]
        assert resumes
        assert all(r["run_id"] == second.run_id for r in resumes)
        # The saves were journaled under the first run's id (the
        # second run resumed from the final snapshot, so it had
        # nothing new to save).
        saves = [r for r in journal if r["event"] == "checkpoint_save"]
        assert saves
        assert first.run_id in {r["run_id"] for r in saves}


class TestZeroCostWhenDisabled:
    def test_no_telemetry_no_artifacts(self, tmp_path):
        runner = ExperimentRunner(max_workers=1)
        assert runner.spans is None
        task = Task(
            kind=TaskKind.SIMULATE,
            payload={
                "scenario": scenario_to_jsonable(
                    ScenarioConfig.homogeneous(
                        num_stations=2, sim_time_us=0.2e6, seed=1
                    )
                ),
                "record_winners": False,
            },
            seed=SeedSpec(root_seed=1, point_index=0, repetition=0),
        )
        (result,) = runner.run([task])
        assert result is not None
        assert not list(tmp_path.rglob("*.jsonl"))

    def test_results_identical_with_and_without_telemetry(self, tmp_path):
        task = Task(
            kind=TaskKind.SIMULATE,
            payload={
                "scenario": scenario_to_jsonable(
                    ScenarioConfig.homogeneous(
                        num_stations=3, sim_time_us=0.5e6, seed=7
                    )
                ),
                "record_winners": False,
            },
            seed=SeedSpec(root_seed=7, point_index=0, repetition=0),
        )
        bare = ExperimentRunner(max_workers=1).run([task])
        traced = ExperimentRunner(
            max_workers=1, telemetry_dir=tmp_path / "tel"
        ).run([task])
        assert bare == traced
