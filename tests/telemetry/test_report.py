"""Post-hoc reports: span tree, critical path, slowest, failures."""

import json

from repro.telemetry.report import build_report, format_report


def _write_jsonl(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def _make_run_dir(tmp_path, crashed=False):
    run_id = "a" * 16
    trace = [
        {"event": "run_start", "t_s": 0.0, "epoch_s": 1000.0,
         "run_id": run_id},
        {"event": "queued", "t_s": 0.0, "kind": "simulate",
         "task_index": 0, "run_id": run_id},
        {"event": "queued", "t_s": 0.0, "kind": "simulate",
         "task_index": 1, "run_id": run_id},
        {"event": "finished", "t_s": 1.0, "kind": "simulate",
         "task_index": 0, "duration_s": 1.0, "run_id": run_id},
        {"event": "finished", "t_s": 3.0, "kind": "simulate",
         "task_index": 1, "duration_s": 2.0, "run_id": run_id},
        {"event": "failed", "t_s": 3.5, "kind": "simulate",
         "task_index": 2, "attempt": 2, "error": "Boom",
         "run_id": run_id},
    ]
    spans = [
        {"event": "span_start", "run_id": run_id, "span_id": "sweep1",
         "name": "sweep", "t_s": 0.0},
        {"event": "span_start", "run_id": run_id, "span_id": "pt1",
         "name": "point", "parent_id": "sweep1", "t_s": 0.1},
        {"event": "span_end", "run_id": run_id, "span_id": "pt1",
         "name": "point", "t_s": 1.0, "duration_s": 0.9,
         "status": "ok"},
        {"event": "span_start", "run_id": run_id, "span_id": "pt2",
         "name": "point", "parent_id": "sweep1", "t_s": 1.0},
        {"event": "span_end", "run_id": run_id, "span_id": "pt2",
         "name": "point", "t_s": 3.0, "duration_s": 2.0,
         "status": "ok"},
    ]
    if not crashed:
        trace.append({"event": "run_end", "t_s": 4.0, "run_id": run_id})
        spans.append(
            {"event": "span_end", "run_id": run_id, "span_id": "sweep1",
             "name": "sweep", "t_s": 4.0, "duration_s": 4.0,
             "status": "ok"}
        )
    _write_jsonl(tmp_path / "trace.jsonl", trace)
    _write_jsonl(tmp_path / "spans.jsonl", spans)
    return run_id


class TestBuildReport:
    def test_span_tree(self, tmp_path):
        run_id = _make_run_dir(tmp_path)
        report = build_report(tmp_path)
        assert report["summary"]["run_id"] == run_id
        roots = report["span_tree"]
        assert len(roots) == 1
        assert roots[0]["name"] == "sweep"
        assert [c["name"] for c in roots[0]["children"]] == [
            "point",
            "point",
        ]

    def test_critical_path_descends_longest_child(self, tmp_path):
        _make_run_dir(tmp_path)
        report = build_report(tmp_path)
        path = report["critical_path"]
        assert [step["name"] for step in path] == ["sweep", "point"]
        assert path[1]["span_id"] == "pt2"  # 2.0s beats 0.9s

    def test_slowest_points_sorted(self, tmp_path):
        _make_run_dir(tmp_path)
        report = build_report(tmp_path, slowest=1)
        slowest = report["slowest_points"]
        assert len(slowest) == 1
        assert slowest[0]["task_index"] == 1
        assert slowest[0]["duration_s"] == 2.0

    def test_failures_table(self, tmp_path):
        _make_run_dir(tmp_path)
        report = build_report(tmp_path)
        assert report["failures"] == [
            {"task_index": 2, "kind": "simulate", "attempt": 2,
             "error": "Boom", "span_id": None}
        ]

    def test_crashed_run_shows_open_spans(self, tmp_path):
        _make_run_dir(tmp_path, crashed=True)
        report = build_report(tmp_path)
        assert report["open_span_count"] == 1
        assert not report["summary"]["run_ended"]
        roots = report["span_tree"]
        assert roots[0]["status"] == "open"

    def test_report_is_jsonable(self, tmp_path):
        _make_run_dir(tmp_path)
        json.dumps(build_report(tmp_path))

    def test_empty_dir(self, tmp_path):
        report = build_report(tmp_path)
        assert report["span_tree"] == []
        assert report["critical_path"] == []


class TestFormatReport:
    def test_text_view(self, tmp_path):
        run_id = _make_run_dir(tmp_path)
        text = format_report(build_report(tmp_path))
        assert run_id in text
        assert "span tree:" in text
        assert "- sweep" in text
        assert "critical path:" in text
        assert "slowest points:" in text
        assert "failures (1):" in text
        assert "Boom" in text

    def test_crashed_run_marks_open(self, tmp_path):
        _make_run_dir(tmp_path, crashed=True)
        text = format_report(build_report(tmp_path))
        assert "(open)" in text
