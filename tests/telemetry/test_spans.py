"""SpanRecorder: pairing, hierarchy, adoption, JSONL round-trip."""

import time

from repro.telemetry.spans import SpanRecorder, load_spans


class TestSpanRecorder:
    def test_start_end_pairing(self):
        recorder = SpanRecorder(run_id="a" * 16)
        span_id = recorder.start("sweep", points=2)
        assert recorder.open_spans() == [span_id]
        recorder.end(span_id)
        assert recorder.open_spans() == []
        start, end = recorder.events
        assert start["event"] == "span_start"
        assert start["name"] == "sweep"
        assert start["attrs"] == {"points": 2}
        assert end["event"] == "span_end"
        assert end["span_id"] == span_id
        assert end["status"] == "ok"
        assert end["duration_s"] >= 0.0
        assert end["duration_s"] == end["t_s"] - start["t_s"]

    def test_every_record_carries_run_id(self):
        recorder = SpanRecorder(run_id="b" * 16)
        recorder.end(recorder.start("x"))
        assert all(e["run_id"] == "b" * 16 for e in recorder.events)

    def test_parent_linkage(self):
        recorder = SpanRecorder()
        parent = recorder.start("sweep")
        child = recorder.start("point", parent_id=parent)
        start = [e for e in recorder.events if e["span_id"] == child][0]
        assert start["parent_id"] == parent

    def test_unknown_end_ignored(self):
        recorder = SpanRecorder()
        recorder.end("deadbeefdeadbeef")
        recorder.end(recorder.start("x"))
        recorder.end(recorder.events[-1]["span_id"])  # double close
        assert [e["event"] for e in recorder.events] == [
            "span_start",
            "span_end",
        ]

    def test_epoch_anchor_is_wall_clock(self):
        recorder = SpanRecorder()
        assert abs(recorder.epoch_s - time.time()) < 5.0
        span_id = recorder.start("x")
        start = recorder.events[0]
        assert abs(start["epoch_s"] - (recorder.epoch_s + start["t_s"])) < 1e-9
        recorder.end(span_id)

    def test_context_manager_error_status(self):
        recorder = SpanRecorder()
        try:
            with recorder.span("x"):
                raise KeyError("boom")
        except KeyError:
            pass
        assert recorder.events[-1]["status"] == "error"

    def test_adopt_preserves_foreign_records(self):
        worker = SpanRecorder(run_id="c" * 16)
        attempt = worker.start("attempt", kind="simulate")
        worker.end(attempt)
        main = SpanRecorder(run_id="c" * 16)
        assert main.adopt([dict(e) for e in worker.events]) == 2
        assert [e["name"] for e in main.events] == ["attempt", "attempt"]
        # Adoption copies: mutating the original must not leak through.
        worker.events[0]["name"] = "mutated"
        assert main.events[0]["name"] == "attempt"

    def test_flush_roundtrip(self, tmp_path):
        recorder = SpanRecorder(run_id="d" * 16)
        recorder.end(recorder.start("sweep"))
        path = tmp_path / "spans.jsonl"
        assert recorder.flush_jsonl(path) == 2
        # Incremental: a second flush appends only new records.
        recorder.end(recorder.start("point"))
        assert recorder.flush_jsonl(path) == 2
        records = load_spans(path)
        assert len(records) == 4
        assert all(r["run_id"] == "d" * 16 for r in records)
        assert [r["name"] for r in records] == [
            "sweep",
            "sweep",
            "point",
            "point",
        ]
