"""JsonlTailer: the rotation/truncation-safe follow-mode reader."""

import json
import os

from repro.telemetry.tail import JsonlTailer


def _write(path, records, mode="a"):
    with open(path, mode, encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestBasics:
    def test_reads_appended_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write(path, [{"event": "a"}, {"event": "b"}])
        tailer = JsonlTailer(path)
        assert [r["event"] for r in tailer.poll()] == ["a", "b"]
        assert tailer.poll() == []
        _write(path, [{"event": "c"}])
        assert [r["event"] for r in tailer.poll()] == ["c"]
        assert tailer.records_read == 3
        tailer.close()

    def test_missing_file_is_not_an_error(self, tmp_path):
        tailer = JsonlTailer(tmp_path / "absent.jsonl")
        assert tailer.poll() == []
        _write(tmp_path / "absent.jsonl", [{"event": "late"}])
        assert [r["event"] for r in tailer.poll()] == ["late"]
        tailer.close()


class TestPartialLines:
    def test_partial_last_line_buffered(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        full = json.dumps({"event": "done"})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(full[: len(full) // 2])
        tailer = JsonlTailer(path)
        assert tailer.poll() == []  # incomplete line: not parsed
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(full[len(full) // 2 :] + "\n")
        assert [r["event"] for r in tailer.poll()] == ["done"]
        assert tailer.bad_lines == 0
        tailer.close()

    def test_bad_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"event": "ok"}\n')
            handle.write("not json at all\n")
            handle.write('[1, 2, 3]\n')  # parseable but not an object
            handle.write('{"event": "ok2"}\n')
        tailer = JsonlTailer(path)
        assert [r["event"] for r in tailer.poll()] == ["ok", "ok2"]
        assert tailer.bad_lines == 2
        tailer.close()


class TestTruncation:
    def test_truncated_file_rewinds(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write(path, [{"event": "old1"}, {"event": "old2"}])
        tailer = JsonlTailer(path)
        assert len(tailer.poll()) == 2
        # Truncate in place (same inode, smaller size).
        _write(path, [{"event": "fresh"}], mode="w")
        assert [r["event"] for r in tailer.poll()] == ["fresh"]
        tailer.close()


class TestRotation:
    def test_rotation_drains_old_then_follows_new(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write(path, [{"event": "old1"}])
        tailer = JsonlTailer(path)
        assert [r["event"] for r in tailer.poll()] == ["old1"]
        # Writer appends one more line, then the file is rotated away
        # and a new file appears under the same name.
        _write(path, [{"event": "old2"}])
        os.rename(path, tmp_path / "trace.jsonl.1")
        _write(path, [{"event": "new1"}], mode="w")
        collected = []
        for _ in range(3):  # old remainder drains, then the new file
            collected.extend(r["event"] for r in tailer.poll())
        assert collected == ["old2", "new1"]
        tailer.close()
