"""Run every docstring example in the package as a test."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield module_info.name


MODULE_NAMES = sorted(_iter_modules())


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
