"""Guards on the public API surface: __all__ resolves everywhere."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.analysis",
    "repro.batch",
    "repro.batch.kernel",
    "repro.batch.lanes",
    "repro.batch.adapter",
    "repro.boost",
    "repro.chaos",
    "repro.chaos.experiment",
    "repro.chaos.impairments",
    "repro.chaos.injector",
    "repro.chaos.invariants",
    "repro.chaos.plan",
    "repro.chaos.recovery",
    "repro.core",
    "repro.core.metrics",
    "repro.core.parameters",
    "repro.engine",
    "repro.experiments",
    "repro.hpav",
    "repro.mac",
    "repro.obs",
    "repro.obs.analyze",
    "repro.obs.capture",
    "repro.obs.probe",
    "repro.obs.profiler",
    "repro.obs.recording",
    "repro.obs.registry",
    "repro.obs.trace",
    "repro.phy",
    "repro.report",
    "repro.runner",
    "repro.service",
    "repro.service.faults",
    "repro.service.journal",
    "repro.service.leases",
    "repro.service.orchestrator",
    "repro.service.quarantine",
    "repro.service.signals",
    "repro.service.state",
    "repro.service.status",
    "repro.service.submit",
    "repro.service.worker",
    "repro.tools",
    "repro.traffic",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_is_sorted_reasonably(module_name):
    module = importlib.import_module(module_name)
    assert len(module.__all__) == len(set(module.__all__)), (
        f"{module_name}.__all__ has duplicates"
    )


def test_version_exposed():
    import repro

    assert repro.__version__


def test_headline_api_importable():
    from repro import (  # noqa: F401
        CsmaConfig,
        ScenarioConfig,
        SlotSimulator,
        sim_1901,
    )
    from repro.analysis import HeterogeneousModel, Model1901  # noqa: F401
    from repro.boost import boost_report  # noqa: F401
    from repro.experiments import build_testbed  # noqa: F401
    from repro.tools import Ampstat, Faifa  # noqa: F401
