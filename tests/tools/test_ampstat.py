"""Tests for the ampstat reimplementation (§3.2)."""

import pytest

from repro.engine import Environment, RandomStreams
from repro.hpav.network import Avln
from repro.tools.ampstat import Ampstat
from repro.traffic.generators import SaturatedSource
from repro.traffic.packets import mac_address


def build(n=2, seed=1):
    env = Environment()
    avln = Avln(env, RandomStreams(seed))
    cco = avln.add_device(mac_address(0), is_cco=True)
    stations = [avln.add_device(mac_address(i + 1)) for i in range(n)]
    env.run(until=1e6)
    for station in stations:
        SaturatedSource(env, station, cco.mac_addr)
    return env, cco, stations


class TestAmpstat:
    def test_get_matches_firmware(self):
        env, cco, stations = build()
        env.run(until=4e6)
        tool = Ampstat(stations[0])
        acked, collided = tool.get(cco.mac_addr, priority=1)
        fw_acked, fw_collided = stations[0].firmware.snapshot(
            0, cco.mac_addr, 1
        )
        assert (acked, collided) == (fw_acked, fw_collided)
        assert acked > 0

    def test_raw_byte_offsets_match_typed_decoder(self):
        """§3.2: bytes 25-32 = acked, 33-40 = collided (1-indexed)."""
        from repro.hpav.mme import MmeFrame
        from repro.hpav.mme_types import StatsConfirm, StatsRequest

        env, cco, stations = build()
        env.run(until=4e6)
        tool = Ampstat(stations[0])
        reply = tool._transact(
            StatsRequest(
                control=0, direction=0, priority=1, peer_mac=cco.mac_addr
            )
        )
        typed = StatsConfirm.decode(MmeFrame.decode(reply).payload)
        raw_acked = int.from_bytes(reply[24:32], "little")
        raw_collided = int.from_bytes(reply[32:40], "little")
        assert raw_acked == typed.acked
        assert raw_collided == typed.collided

    def test_reset_zeroes_the_link(self):
        env, cco, stations = build()
        env.run(until=3e6)
        tool = Ampstat(stations[0])
        acked, _ = tool.get(cco.mac_addr)
        assert acked > 0
        tool.reset(cco.mac_addr)
        assert tool.get(cco.mac_addr) == (0, 0)

    def test_reset_is_per_priority(self):
        env, cco, stations = build()
        env.run(until=3e6)
        tool = Ampstat(stations[0])
        before = tool.get(cco.mac_addr, priority=1)
        tool.reset(cco.mac_addr, priority=2)  # different link
        assert tool.get(cco.mac_addr, priority=1) == before

    def test_counters_accumulate_between_reads(self):
        env, cco, stations = build()
        env.run(until=3e6)
        tool = Ampstat(stations[0])
        first, _ = tool.get(cco.mac_addr)
        env.run(until=6e6)
        second, _ = tool.get(cco.mac_addr)
        assert second > first
