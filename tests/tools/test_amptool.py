"""Tests for the amptool administration tool."""

import pytest

from repro.engine import Environment, RandomStreams
from repro.hpav.network import Avln
from repro.hpav.security import nmk_from_password
from repro.tools.amptool import Amptool
from repro.traffic.packets import mac_address


def build(security=True, seed=1):
    env = Environment()
    avln = Avln(env, RandomStreams(seed), security_enabled=security)
    cco = avln.add_device(mac_address(0), is_cco=True)
    station = avln.add_device(mac_address(1))
    env.run(until=3e6)
    return env, avln, cco, station


class TestKeyAdministration:
    def test_set_password_installs_nmk(self):
        env, _avln, _cco, station = build()
        tool = Amptool(station)
        assert tool.set_network_password("my-home-net")
        assert station.keys.nmk == nmk_from_password("my-home-net")

    def test_rotating_password_drops_authentication(self):
        env, _avln, _cco, station = build()
        assert station.authenticated
        Amptool(station).set_network_password("different")
        assert not station.authenticated

    def test_reauthentication_after_matching_rotation(self):
        """Rotate the password on *both* CCo and station: the station
        re-fetches the NEK and rejoins."""
        env, avln, cco, station = build()
        Amptool(cco).set_network_password("rotated")
        Amptool(station).set_network_password("rotated")
        # The Avln's authentication loop has exited (it ran until the
        # initial NEK was granted), so drive the re-fetch directly.
        station.request_network_key()
        env.run(until=env.now + 1e6)
        assert station.authenticated
        assert station.keys.nek == cco.keys.nek

    def test_raw_nmk(self):
        env, _avln, _cco, station = build(security=False)
        tool = Amptool(station)
        assert tool.set_nmk(b"\x42" * 16)
        assert station.keys.nmk == b"\x42" * 16


class TestNetworkInfo:
    def test_lists_peers_with_rates(self):
        env, _avln, cco, station = build(security=False)
        entries = Amptool(cco).network_info()
        macs = {mac for mac, _tei, _tx, _rx in entries}
        assert station.mac_addr in macs
        for _mac, tei, tx, rx in entries:
            assert tei >= 1
            assert tx > 0 and rx > 0
