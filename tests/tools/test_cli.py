"""Smoke tests for the repro-plc CLI."""

import pytest

from repro.tools.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.stations == 2
        assert args.cw == [8, 16, 32, 64]
        assert args.dc == [0, 1, 3, 15]


class TestCommands:
    def test_sim(self, capsys):
        assert main(["sim", "-n", "2", "--sim-time", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "collision_pr" in out
        assert "norm_throughput" in out

    def test_testbed(self, capsys):
        assert main(
            ["testbed", "-n", "1", "--duration", "2e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "collision probability" in out
        assert "goodput" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "-n", "1", "--duration", "2e6"]) == 0
        assert "MME overhead" in capsys.readouterr().out

    def test_boost(self, capsys):
        assert main(["boost", "--counts", "2", "5"]) == 0
        out = capsys.readouterr().out
        assert "boosted configuration" in out
        assert "upper bound" in out

    def test_table2(self, capsys):
        assert main(
            ["table2", "--duration", "2e6", "--max-n", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "sum C_i" in out

    def test_figure2(self, capsys):
        assert main(
            ["figure2", "--duration", "2e6", "--reps", "1", "--max-n", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "measured" in out
        assert "legend" in out  # the ASCII plot

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--counts", "1", "2", "--sim-time", "1e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "802.11 DCF" in out
        assert "1901 CA1" in out


class TestExtensionCommands:
    def test_load(self, capsys):
        assert main(
            ["load", "-n", "2", "--fractions", "0.5", "--sim-time", "2e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "saturation knee" in out
        assert "delivered" in out

    def test_errors(self, capsys):
        assert main(
            ["errors", "-n", "1", "--rates", "0.0", "--duration", "2e6"]
        ) == 0
        assert "goodput" in capsys.readouterr().out

    def test_delay(self, capsys):
        assert main(["delay", "--counts", "1", "--sim-time", "2e6"]) == 0
        assert "model mean" in capsys.readouterr().out

    def test_coexist(self, capsys):
        assert main(
            ["coexist", "--total", "4", "--boosted", "0", "4",
             "--sim-time", "2e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "per legacy" in out


class TestObservabilityCommands:
    def test_trace(self, capsys, tmp_path):
        assert main(
            ["trace", "testbed", "-n", "2", "--duration", "1e6",
             "--seed", "1", "--out-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "cross-check OK" in out
        assert "mac_trace" in out
        assert list(tmp_path.glob("mac_trace*.jsonl"))
        assert list(tmp_path.glob("sof_trace*.jsonl"))

    def test_trace_opt_out_flags(self, capsys, tmp_path):
        assert main(
            ["trace", "testbed", "-n", "2", "--duration", "1e6",
             "--out-dir", str(tmp_path), "--no-sof-trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("sof_trace*.jsonl"))
        assert list(tmp_path.glob("metrics*.json"))

    def test_profile(self, capsys, tmp_path):
        json_path = tmp_path / "profile.json"
        assert main(
            ["profile", "testbed", "-n", "2", "--duration", "1e6",
             "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert json_path.exists()


class TestCheckpointCommand:
    def _filled_store(self, tmp_path):
        from repro.checkpoint import (
            CheckpointStore,
            checkpointed_collision_test,
        )

        store_dir = tmp_path / "store"
        store = CheckpointStore(str(store_dir))
        checkpointed_collision_test(
            2,
            store,
            duration_us=2e6,
            warmup_us=2e6,
            seed=7,
            checkpoint_every_us=1e6,
        )
        return store, store_dir

    def test_inspect_writes_json_artifact(self, capsys, tmp_path):
        import json

        _store, store_dir = self._filled_store(tmp_path)
        json_path = tmp_path / "entries.json"
        assert main(
            ["checkpoint", "inspect", "--dir", str(store_dir),
             "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "snapshots" in out
        rows = json.loads(json_path.read_text())["entries"]
        assert rows and all(row["valid"] for row in rows)

    def test_verify_ok_then_fails_on_corruption(self, capsys, tmp_path):
        store, store_dir = self._filled_store(tmp_path)
        assert main(["checkpoint", "verify", "--dir", str(store_dir)]) == 0
        assert "verify OK" in capsys.readouterr().out
        seq = store.sequence_numbers()[-1]
        blob = bytearray(open(store.path_for(seq), "rb").read())
        blob[-1] ^= 0xFF
        open(store.path_for(seq), "wb").write(bytes(blob))
        assert main(["checkpoint", "verify", "--dir", str(store_dir)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_verify_fails_on_empty_store(self, capsys, tmp_path):
        assert main(
            ["checkpoint", "verify", "--dir", str(tmp_path / "empty")]
        ) == 1
        assert "no resumable snapshot" in capsys.readouterr().out

    def test_resume_testbed_matches_plain(self, capsys, tmp_path):
        from repro.experiments.procedures import run_collision_test

        _store, store_dir = self._filled_store(tmp_path)
        plain = run_collision_test(
            2, duration_us=2e6, warmup_us=2e6, seed=7
        )
        assert main(["checkpoint", "resume", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "resuming testbed" in out
        assert f"{plain.collision_probability:.4f}" in out

    def test_resume_empty_store_fails(self, capsys, tmp_path):
        assert main(
            ["checkpoint", "resume", "--dir", str(tmp_path / "empty")]
        ) == 1
        assert "no valid snapshot" in capsys.readouterr().out

    def test_resume_slotsim_store(self, capsys, tmp_path):
        from repro.core.config import ScenarioConfig
        from repro.runner.runner import ExperimentRunner
        from repro.runner.seeding import SeedSpec
        from repro.runner.serialize import scenario_to_jsonable
        from repro.runner.tasks import Task, TaskKind

        scenario = ScenarioConfig.homogeneous(
            num_stations=3, sim_time_us=1e6, seed=2
        )
        task = Task(
            kind=TaskKind.SIMULATE,
            payload={
                "scenario": scenario_to_jsonable(scenario),
                "record_winners": False,
            },
            seed=SeedSpec(root_seed=1, point_index=0, repetition=0),
        )
        runner = ExperimentRunner(
            max_workers=1,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every_us=0.25e6,
        )
        (expected,) = runner.run([task])
        (store_dir,) = list((tmp_path / "ckpt").iterdir())
        assert main(["checkpoint", "resume", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "resuming slotsim" in out
        assert f"successes             = {expected['successes']}" in out

    def test_runner_checkpoint_flags(self, capsys, tmp_path):
        assert main(
            ["table2", "--duration", "2e6", "--max-n", "2",
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--checkpoint-every-us", "1e6"]
        ) == 0
        assert "Table 2" in capsys.readouterr().out
        assert list((tmp_path / "ckpt").glob("*/ckpt-*.ckpt"))


class TestValidityCommand:
    def test_run_reports_and_exports(self, capsys, tmp_path):
        out_file = tmp_path / "map.json"
        assert main(
            ["validity", "run", "--counts", "2", "3",
             "--sim-time", "3e5", "--reps", "1",
             "--out", str(out_file), "--no-figure"]
        ) == 0
        out = capsys.readouterr().out
        assert "Validity map" in out
        assert "saturated" in out
        assert out_file.exists()
        import json

        data = json.loads(out_file.read_text())
        assert data["schema"] == "repro-plc/validity-map/v1"
        assert data["summary"]["cells"] == 8

    def test_run_warm_cache_hits(self, capsys, tmp_path):
        argv = ["validity", "run", "--counts", "2",
                "--regimes", "saturated", "--sim-time", "3e5",
                "--reps", "2", "--no-figure",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "executed=2" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache_hits=2" in capsys.readouterr().out

    def test_check_passes_on_consistent_artifact(self, capsys, tmp_path):
        import json

        from repro.validity import build_validity_map, default_pins

        pins = default_pins()
        for regime in pins["regimes"].values():
            regime["collision_probability_error"] = 1.0
            regime["throughput_relative_error"] = 10.0
        vmap = build_validity_map(
            counts=(2,), sim_time_us=3e5, repetitions=1, pins=pins
        )
        map_file = tmp_path / "map.json"
        map_file.write_text(json.dumps(vmap.as_dict()))
        pins_file = tmp_path / "pins.json"
        pins_file.write_text(json.dumps(pins))
        assert main(
            ["validity", "check", "--map", str(map_file),
             "--pins", str(pins_file)]
        ) == 0
        assert "pin check OK" in capsys.readouterr().out

    def test_check_fails_on_violation(self, capsys, tmp_path):
        import json

        from repro.validity import build_validity_map, default_pins

        vmap = build_validity_map(
            counts=(2,), sim_time_us=3e5, repetitions=1
        )
        map_file = tmp_path / "map.json"
        map_file.write_text(json.dumps(vmap.as_dict()))
        pins = default_pins()
        for regime in pins["regimes"].values():
            regime["collision_probability_error"] = 0.0
        pins_file = tmp_path / "pins.json"
        pins_file.write_text(json.dumps(pins))
        assert main(
            ["validity", "check", "--map", str(map_file),
             "--pins", str(pins_file)]
        ) == 1
        assert "pin check FAILED" in capsys.readouterr().out

    def test_check_requires_map(self, capsys):
        assert main(["validity", "check"]) == 2
