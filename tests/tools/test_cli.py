"""Smoke tests for the repro-plc CLI."""

import pytest

from repro.tools.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.stations == 2
        assert args.cw == [8, 16, 32, 64]
        assert args.dc == [0, 1, 3, 15]


class TestCommands:
    def test_sim(self, capsys):
        assert main(["sim", "-n", "2", "--sim-time", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "collision_pr" in out
        assert "norm_throughput" in out

    def test_testbed(self, capsys):
        assert main(
            ["testbed", "-n", "1", "--duration", "2e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "collision probability" in out
        assert "goodput" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "-n", "1", "--duration", "2e6"]) == 0
        assert "MME overhead" in capsys.readouterr().out

    def test_boost(self, capsys):
        assert main(["boost", "--counts", "2", "5"]) == 0
        out = capsys.readouterr().out
        assert "boosted configuration" in out
        assert "upper bound" in out

    def test_table2(self, capsys):
        assert main(
            ["table2", "--duration", "2e6", "--max-n", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "sum C_i" in out

    def test_figure2(self, capsys):
        assert main(
            ["figure2", "--duration", "2e6", "--reps", "1", "--max-n", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "measured" in out
        assert "legend" in out  # the ASCII plot

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--counts", "1", "2", "--sim-time", "1e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "802.11 DCF" in out
        assert "1901 CA1" in out


class TestExtensionCommands:
    def test_load(self, capsys):
        assert main(
            ["load", "-n", "2", "--fractions", "0.5", "--sim-time", "2e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "saturation knee" in out
        assert "delivered" in out

    def test_errors(self, capsys):
        assert main(
            ["errors", "-n", "1", "--rates", "0.0", "--duration", "2e6"]
        ) == 0
        assert "goodput" in capsys.readouterr().out

    def test_delay(self, capsys):
        assert main(["delay", "--counts", "1", "--sim-time", "2e6"]) == 0
        assert "model mean" in capsys.readouterr().out

    def test_coexist(self, capsys):
        assert main(
            ["coexist", "--total", "4", "--boosted", "0", "4",
             "--sim-time", "2e6"]
        ) == 0
        out = capsys.readouterr().out
        assert "per legacy" in out


class TestObservabilityCommands:
    def test_trace(self, capsys, tmp_path):
        assert main(
            ["trace", "testbed", "-n", "2", "--duration", "1e6",
             "--seed", "1", "--out-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "cross-check OK" in out
        assert "mac_trace" in out
        assert list(tmp_path.glob("mac_trace*.jsonl"))
        assert list(tmp_path.glob("sof_trace*.jsonl"))

    def test_trace_opt_out_flags(self, capsys, tmp_path):
        assert main(
            ["trace", "testbed", "-n", "2", "--duration", "1e6",
             "--out-dir", str(tmp_path), "--no-sof-trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("sof_trace*.jsonl"))
        assert list(tmp_path.glob("metrics*.json"))

    def test_profile(self, capsys, tmp_path):
        json_path = tmp_path / "profile.json"
        assert main(
            ["profile", "testbed", "-n", "2", "--duration", "1e6",
             "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert json_path.exists()
