"""The service CLI verbs: serve / submit / status / drain / cache prune."""

import json
import os
import time

import pytest

from repro.runner.cache import ResultCache, cache_key
from repro.service import fold_journal, standard_sweep_tasks
from repro.service.orchestrator import ServicePaths
from repro.service.state import TaskState
from repro.tools.cli import main

SUBMIT_ARGS = ["--counts", "2", "--sim-time", "1e5", "--reps", "1"]


def _submit(sdir, extra=()):
    return main(
        ["submit", "--service-dir", str(sdir)] + SUBMIT_ARGS + list(extra)
    )


def _serve(sdir, extra=()):
    return main(
        ["serve", "--service-dir", str(sdir), "--exit-when-idle"]
        + list(extra)
    )


class TestSubmitServe:
    def test_submit_then_serve_completes(self, tmp_path, capsys):
        sdir = tmp_path / "svc"
        assert _submit(sdir) == 0
        out = capsys.readouterr().out
        assert "submitted" in out
        assert _serve(sdir) == 0
        state = fold_journal(sdir)
        counts = state.counts()
        # 3 configs x (1 model curve + 1 simulate point) = 6 tasks
        assert counts[TaskState.COMPLETED] == 6
        assert counts[TaskState.PENDING] == 0

    def test_submit_dedupes_against_result_cache(self, tmp_path, capsys):
        sdir = tmp_path / "svc"
        _submit(sdir)
        _serve(sdir)
        capsys.readouterr()
        assert _submit(sdir) == 0
        out = capsys.readouterr().out
        # All six tasks hit the sha256 result cache on resubmission.
        assert "cached=6" in out
        assert "to_run=0" in out

    def test_status_json_and_text(self, tmp_path, capsys):
        sdir = tmp_path / "svc"
        _submit(sdir)
        _serve(sdir)
        capsys.readouterr()
        assert main(["status", "--service-dir", str(sdir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["completed"] == 6
        assert doc["stopped_clean"] is True
        assert doc["serving"] is False
        assert main(["status", "--service-dir", str(sdir)]) == 0
        text = capsys.readouterr().out
        assert "completed" in text

    def test_status_on_fresh_directory(self, tmp_path, capsys):
        assert (
            main(["status", "--service-dir", str(tmp_path / "empty")]) == 0
        )
        doc_text = capsys.readouterr().out
        assert "0" in doc_text


class TestDrain:
    def test_drain_leaves_marker_for_next_serve(self, tmp_path):
        sdir = tmp_path / "svc"
        _submit(sdir)
        assert main(["drain", "--service-dir", str(sdir)]) == 0
        assert ServicePaths(sdir).drain_marker.exists()
        # The next serve honours the marker: it stops without
        # dispatching, consuming the marker.
        assert _serve(sdir) == 0
        assert not ServicePaths(sdir).drain_marker.exists()
        state = fold_journal(sdir)
        assert state.counts()[TaskState.COMPLETED] == 0


class TestCachePrune:
    def test_prune_requires_a_bound(self, tmp_path, capsys):
        rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "max-bytes" in capsys.readouterr().err

    def test_prune_against_service_cache(self, tmp_path, capsys):
        sdir = tmp_path / "svc"
        _submit(sdir)
        _serve(sdir)
        cache = ResultCache(ServicePaths(sdir).cache)
        assert len(cache) == 6
        capsys.readouterr()
        rc = main(
            [
                "cache",
                "prune",
                "--service-dir",
                str(sdir),
                "--max-bytes",
                "0",
            ]
        )
        assert rc == 0
        assert "pruned 6" in capsys.readouterr().out
        assert len(cache) == 0

    def test_prune_protects_actively_leased_keys(self, tmp_path, capsys):
        """journal-aware prune: a LEASED task's key survives."""
        from repro.service.journal import JournalWriter

        sdir = tmp_path / "svc"
        _submit(sdir)
        _serve(sdir)
        state = fold_journal(sdir)
        victim = next(iter(state.tasks))
        # Manufacture an active lease in the journal, as if a worker
        # were recomputing this key right now.
        with JournalWriter(ServicePaths(sdir).journal) as journal:
            journal.append("task_enqueued", task_id=victim)
            journal.append("lease_granted", task_id=victim, attempt=0)
        rc = main(
            [
                "cache",
                "prune",
                "--service-dir",
                str(sdir),
                "--max-bytes",
                "0",
            ]
        )
        assert rc == 0
        cache = ResultCache(ServicePaths(sdir).cache)
        assert cache.get(victim) is not None
        assert len(cache) == 1

    def test_cache_info_on_service_dir(self, tmp_path, capsys):
        sdir = tmp_path / "svc"
        _submit(sdir)
        _serve(sdir)
        capsys.readouterr()
        assert main(["cache", "info", "--service-dir", str(sdir)]) == 0
        assert "entries" in capsys.readouterr().out


class TestArgValidation:
    def test_serve_rejects_negative_workers(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--service-dir",
                    str(tmp_path),
                    "--workers",
                    "-1",
                ]
            )

    def test_serve_rejects_negative_retries(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--service-dir",
                    str(tmp_path),
                    "--max-retries",
                    "-1",
                ]
            )

    def test_serve_rejects_zero_task_timeout(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--service-dir",
                    str(tmp_path),
                    "--task-timeout",
                    "0",
                ]
            )
