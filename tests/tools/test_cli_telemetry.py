"""CLI smoke tests for the telemetry commands: top, report, metrics."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.tools.cli import main


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One tiny completed sweep with telemetry, shared by all tests."""
    root = tmp_path_factory.mktemp("telemetry_run")
    tel = root / "tel"
    code = main(
        [
            "sweep",
            "--counts",
            "2",
            "--sim-time",
            "1e6",
            "--reps",
            "1",
            "--workers",
            "1",
            "--telemetry-dir",
            str(tel),
        ]
    )
    assert code == 0
    return tel


class TestTop:
    def test_once_renders_completed_run(self, run_dir, capsys):
        assert main(["top", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "ended" in out
        assert "100%" in out

    def test_json_snapshot(self, run_dir, capsys):
        assert main(["top", str(run_dir), "--once", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["run_ended"] is True
        assert snapshot["total"] > 0

    def test_trace_file_path_accepted(self, run_dir, capsys):
        trace = run_dir / "trace.jsonl"
        assert main(["top", str(trace), "--once"]) == 0
        assert "ended" in capsys.readouterr().out

    def test_missing_trace_fails(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "absent"), "--once"]) == 0
        # --once renders the (empty) state instead of erroring; plain
        # follow mode on a missing dir without --once/--frames refuses.
        assert main(["top", str(tmp_path / "absent")]) == 1


class TestReport:
    def test_text_report(self, run_dir, capsys):
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "critical path:" in out

    def test_json_report_to_stdout(self, run_dir, capsys):
        assert main(["report", str(run_dir), "--json", "-"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["run_ended"] is True
        assert report["span_tree"]

    def test_empty_dir_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1


class TestMetrics:
    def test_prom_file_validates(self, run_dir, capsys):
        assert main(["metrics", str(run_dir), "--check"]) == 0
        assert "OpenMetrics check OK" in capsys.readouterr().out

    def test_registry_snapshot_rendered(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("mac_slots_total", "slots").inc(4)
        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(json.dumps(registry.as_dict()), encoding="utf-8")
        assert main(["metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "mac_slots_total 4" in out
        assert out.rstrip().endswith("# EOF")

    def test_out_writes_textfile(self, run_dir, tmp_path, capsys):
        out_path = tmp_path / "node" / "metrics.prom"
        assert main(["metrics", str(run_dir), "--out", str(out_path)]) == 0
        text = out_path.read_text(encoding="utf-8")
        assert text.endswith("# EOF\n")
