"""Tests for the faifa sniffer reimplementation (§3.3)."""

import pytest

from repro.engine import Environment, RandomStreams
from repro.hpav.network import Avln
from repro.tools.faifa import BurstRecord, Faifa
from repro.traffic.generators import SaturatedSource
from repro.traffic.packets import mac_address


def build(n=2, seed=1, **avln_kwargs):
    env = Environment()
    avln = Avln(env, RandomStreams(seed), **avln_kwargs)
    cco = avln.add_device(mac_address(0), is_cco=True)
    stations = [avln.add_device(mac_address(i + 1)) for i in range(n)]
    faifa = Faifa(cco)
    faifa.enable()
    env.run(until=1e6)
    for station in stations:
        SaturatedSource(env, station, cco.mac_addr)
    return env, cco, stations, faifa


class TestCapture:
    def test_captures_accumulate(self):
        env, _cco, _stations, faifa = build()
        env.run(until=3e6)
        assert len(faifa.captures) > 100

    def test_clear(self):
        env, _cco, _stations, faifa = build()
        env.run(until=2e6)
        faifa.clear()
        assert faifa.captures == []

    def test_disable_stops_capture(self):
        env, _cco, _stations, faifa = build()
        env.run(until=2e6)
        faifa.disable()
        faifa.clear()
        env.run(until=3e6)
        assert faifa.captures == []

    def test_capture_timestamps_monotone(self):
        env, _cco, _stations, faifa = build()
        env.run(until=2e6)
        times = [c.timestamp_us for c in faifa.captures]
        assert times == sorted(times)


class TestBurstReconstruction:
    def test_data_bursts_have_two_mpdus(self):
        """§3.1: the testbed stations use bursts with 2 MPDUs."""
        env, _cco, _stations, faifa = build()
        env.run(until=4e6)
        histogram = faifa.burst_size_histogram()
        assert histogram.get(2, 0) > 0
        data_sizes = {b.num_mpdus for b in faifa.data_bursts()}
        assert data_sizes <= {1, 2}
        # The overwhelming majority are full 2-MPDU bursts.
        full = sum(1 for b in faifa.data_bursts() if b.num_mpdus == 2)
        assert full / len(faifa.data_bursts()) > 0.95

    def test_management_bursts_single_mpdu(self):
        env, _cco, _stations, faifa = build()
        env.run(until=4e6)
        assert all(
            b.num_mpdus == 1 for b in faifa.management_bursts()
        )

    def test_classification_by_link_id(self):
        env, _cco, _stations, faifa = build()
        env.run(until=4e6)
        for burst in faifa.data_bursts():
            assert burst.link_id <= 1
        for burst in faifa.management_bursts():
            assert burst.link_id >= 2

    def test_interleaved_collision_sofs_grouped_by_source(self):
        env, _cco, _stations, faifa = build(n=4, seed=3)
        env.run(until=6e6)
        collided = [b for b in faifa.bursts() if b.collided]
        assert collided  # with 4 saturated stations there are collisions
        # A collision burst still reconstructs per source.
        for burst in collided:
            assert burst.num_mpdus in (1, 2)


class TestOverhead:
    def test_overhead_small_but_positive(self):
        env, _cco, _stations, faifa = build()
        env.run(until=5e6)
        overhead = faifa.mme_overhead()
        assert 0.0 < overhead < 0.3

    def test_overhead_no_data_is_infinite(self):
        faifa = Faifa.__new__(Faifa)
        faifa.captures = []
        from repro.hpav.mme_types import SnifferIndication

        faifa.captures = [
            SnifferIndication(
                timestamp_us=0, source_tei=1, dest_tei=0xFF, link_id=3,
                mpdu_count=0, frame_length_bytes=512, num_blocks=1,
                collided=False,
            )
        ]
        assert faifa.mme_overhead() == float("inf")

    def test_overhead_empty_zero(self):
        faifa = Faifa.__new__(Faifa)
        faifa.captures = []
        assert faifa.mme_overhead() == 0.0


class TestSourceTrace:
    def test_trace_excludes_collisions_by_default(self):
        env, _cco, _stations, faifa = build(n=3, seed=2)
        env.run(until=5e6)
        trace = faifa.source_trace()
        collided_times = {
            b.start_time_us for b in faifa.bursts() if b.collided
        }
        assert all(t not in collided_times for t, _tei in trace)

    def test_trace_sources_are_station_teis(self):
        env, _cco, stations, faifa = build()
        env.run(until=4e6)
        teis = {tei for _t, tei in faifa.source_trace()}
        assert teis == {s.tei for s in stations}

    def test_all_stations_get_share(self):
        env, _cco, stations, faifa = build(n=2, seed=5)
        env.run(until=6e6)
        counts = {}
        for _t, tei in faifa.source_trace():
            counts[tei] = counts.get(tei, 0) + 1
        shares = sorted(counts.values())
        assert shares[0] / shares[-1] > 0.7  # long-term fairness


class TestExport:
    def test_capture_session_exports_to_json(self, tmp_path):
        import json

        from repro.tools.faifa import export_captures_json

        env, _cco, _stations, faifa = build()
        env.run(until=2e6)
        path = export_captures_json(faifa, tmp_path / "capture.json")
        data = json.loads(path.read_text())
        assert len(data["captures"]) == len(faifa.captures)
        assert data["mme_overhead"] == pytest.approx(faifa.mme_overhead())
        assert data["bursts"][0]["link_id"] in (0, 1, 2, 3)


class TestSofTraceExport:
    def test_export_matches_obs_schema(self, tmp_path):
        from repro.obs.analyze import analyze_sof_trace
        from repro.obs.trace import SOF_TRACE_FIELDS, load_sof_trace
        from repro.tools.faifa import export_sof_trace_jsonl

        env, _cco, _stations, faifa = build()
        env.run(until=3e6)
        path = export_sof_trace_jsonl(faifa, tmp_path / "sof.jsonl")
        rows = load_sof_trace(path)  # validates the schema
        assert len(rows) == len(faifa.captures)
        assert set(rows[0]) == set(SOF_TRACE_FIELDS)
        # A firmware-sniffer capture feeds the same analyze pipeline
        # as a probe capture.
        result = analyze_sof_trace(rows)
        assert result["mpdus"] == len(rows)
        assert result["successes"] > 0
