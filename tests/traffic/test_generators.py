"""Tests for traffic sources against the emulated testbed devices."""

import pytest

from repro.core.parameters import PriorityClass
from repro.engine import Environment, RandomStreams
from repro.hpav.network import Avln
from repro.traffic.generators import CbrSource, PoissonSource, SaturatedSource
from repro.traffic.packets import mac_address


def make_pair(seed=1):
    env = Environment()
    streams = RandomStreams(seed)
    avln = Avln(env, streams, channel_est_enabled=False)
    destination = avln.add_device(mac_address(0), is_cco=True)
    station = avln.add_device(mac_address(1))
    env.run(until=1e6)  # association settles
    return env, destination, station


class TestSaturatedSource:
    def test_keeps_queue_topped_up(self):
        env, destination, station = make_pair()
        source = SaturatedSource(
            env, station, destination.mac_addr, high_watermark=32
        )
        env.run(until=2e6)
        depth = station.node.queues.depth(PriorityClass.CA1)
        assert depth >= 16  # continuously refilled while draining
        assert source.accepted > 32

    def test_unknown_destination_dropped(self):
        env, _destination, station = make_pair()
        source = SaturatedSource(
            env, station, "02:aa:aa:aa:aa:aa", high_watermark=8
        )
        env.run(until=1.2e6)
        assert source.accepted == 0
        assert station.unresolved_drops > 0


class TestPoissonSource:
    def test_rate_roughly_respected(self):
        env, destination, station = make_pair()
        source = PoissonSource(
            env,
            station,
            destination.mac_addr,
            rate_pps=200.0,
            streams=RandomStreams(9),
        )
        start = env.now
        env.run(until=start + 10e6)  # 10 s
        assert source.offered == pytest.approx(2000, rel=0.15)

    def test_bad_rate(self):
        env, destination, station = make_pair()
        with pytest.raises(ValueError):
            PoissonSource(env, station, destination.mac_addr, rate_pps=0.0)


class TestCbrSource:
    def test_exact_count(self):
        env, destination, station = make_pair()
        source = CbrSource(
            env, station, destination.mac_addr, interval_us=10_000.0
        )
        start = env.now
        # +1 µs: the run-until stop event pre-empts a frame landing
        # exactly on the boundary.
        env.run(until=start + 1e6 + 1.0)
        assert source.offered == 100

    def test_bad_interval(self):
        env, destination, station = make_pair()
        with pytest.raises(ValueError):
            CbrSource(env, station, destination.mac_addr, interval_us=0.0)

    def test_priority_honored(self):
        env, destination, station = make_pair()
        CbrSource(
            env,
            station,
            destination.mac_addr,
            interval_us=10_000.0,
            priority=PriorityClass.CA3,
        )
        env.run(until=env.now + 50_000.0)
        # Frames landed in the CA3 queue (possibly already sent).
        assert station.node.station_for(PriorityClass.CA3).successes >= 0
