"""Tests for packet abstractions."""

import pytest

from repro.traffic.packets import (
    ETHERNET_MIN_FRAME_BYTES,
    EthernetFrame,
    mac_address,
    udp_frame,
)


class TestMacAddress:
    def test_formatting(self):
        assert mac_address(0) == "02:00:00:00:00:00"
        assert mac_address(255) == "02:00:00:00:00:ff"
        assert mac_address(256) == "02:00:00:00:01:00"

    def test_locally_administered_bit(self):
        assert mac_address(7).startswith("02:")

    def test_unique(self):
        assert len({mac_address(i) for i in range(100)}) == 100

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            mac_address(-1)


class TestUdpFrame:
    def test_default_is_full_mtu(self):
        frame = udp_frame("02:00:00:00:00:00", "02:00:00:00:00:01")
        assert frame.length_bytes == 1514  # 14 + 20 + 8 + 1472

    def test_small_payload_padded_to_minimum(self):
        frame = udp_frame(
            "02:00:00:00:00:00", "02:00:00:00:00:01", udp_payload_bytes=1
        )
        assert frame.length_bytes == ETHERNET_MIN_FRAME_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            udp_frame("a", "b", udp_payload_bytes=-1)

    def test_frame_ids_monotone(self):
        a = udp_frame("02:00:00:00:00:00", "02:00:00:00:00:01")
        b = udp_frame("02:00:00:00:00:00", "02:00:00:00:00:01")
        assert b.frame_id > a.frame_id

    def test_created_us_stamped(self):
        frame = udp_frame(
            "02:00:00:00:00:00", "02:00:00:00:00:01", created_us=123.0
        )
        assert frame.created_us == 123.0


class TestEthernetFrame:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame(
                dst_mac="a", src_mac="b", ethertype=0x0800, length_bytes=10
            )

    def test_bad_ethertype_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame(
                dst_mac="a", src_mac="b", ethertype=-1, length_bytes=100
            )

    def test_payload_bytes(self):
        frame = EthernetFrame(
            dst_mac="a", src_mac="b", ethertype=0x0800, length_bytes=100
        )
        assert frame.payload_bytes == 86
