"""Tests for the validity-map harness: sweep, flags, pins, artifact."""

import json
import math

import pytest

from repro.validity import (
    REGIMES,
    ValidityRow,
    build_validity_map,
    check_pins,
    default_pins,
    format_validity_map,
    regimes_by_name,
    validity_figure,
)
from repro.validity.harness import MAP_SCHEMA, PINS_SCHEMA, _point_index

SMALL = dict(counts=(2, 4), sim_time_us=3e5, repetitions=2)


def _small_map(**overrides):
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return build_validity_map(**kwargs)


class TestRegimes:
    def test_registry_covers_the_issue_families(self):
        names = [r.name for r in REGIMES]
        assert names == [
            "saturated",
            "fractional_load",
            "heterogeneous",
            "retry_limited",
        ]

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError, match="unknown regime"):
            regimes_by_name(["saturated", "nope"])

    def test_scenarios_probe_the_advertised_families(self):
        by_name = {r.name: r for r in REGIMES}
        sat = by_name["saturated"].scenario(4)
        assert all(s.saturated for s in sat.stations)
        frac = by_name["fractional_load"].scenario(4)
        assert all(not s.saturated for s in frac.stations)
        het = by_name["heterogeneous"].scenario(4)
        assert [s.saturated for s in het.stations] == [
            True, False, True, False,
        ]
        retry = by_name["retry_limited"].scenario(4)
        assert all(s.csma.retry_limit == 7 for s in retry.stations)
        assert all(s.saturated for s in retry.stations)


class TestSeeding:
    def test_point_index_is_grid_independent(self):
        """Cell seeds depend on (registry index, N), not selection."""
        by_name = {r.name: r for r in REGIMES}
        assert _point_index(by_name["saturated"], 7) == 7
        assert _point_index(by_name["retry_limited"], 7) == 30_007
        with pytest.raises(ValueError, match="num_stations"):
            _point_index(by_name["saturated"], 10_000)

    def test_subsets_reproduce_full_grid_cells(self):
        full = _small_map()
        subset = _small_map(counts=(4,), regimes=["retry_limited"])
        (row,) = subset.rows
        (golden,) = [
            r
            for r in full.rows
            if r.regime == "retry_limited" and r.num_stations == 4
        ]
        assert row == golden


class TestFlags:
    def _row(self, **overrides):
        kwargs = dict(
            regime="saturated",
            num_stations=2,
            model_collision_probability=0.10,
            sim_collision_probability=0.12,
            model_throughput=0.5,
            sim_throughput=0.48,
            repetitions=2,
            pin_collision=0.05,
            pin_throughput=0.06,
        )
        kwargs.update(overrides)
        return ValidityRow(**kwargs)

    def test_within_pins_not_flagged(self):
        assert not self._row().flagged

    def test_exceeding_either_pin_flags(self):
        assert self._row(sim_collision_probability=0.2).flagged
        assert self._row(sim_throughput=0.3).flagged

    def test_nan_error_always_flags(self):
        row = self._row(sim_throughput=0.0, pin_throughput=None)
        assert math.isnan(row.throughput_relative_error)
        assert row.flagged

    def test_unpinned_row_only_flags_on_nan(self):
        row = self._row(
            pin_collision=None,
            pin_throughput=None,
            sim_collision_probability=0.9,
        )
        assert not row.flagged


class TestArtifact:
    def test_round_trips_strict_json(self, tmp_path):
        vmap = _small_map()
        path = tmp_path / "map.json"
        path.write_text(json.dumps(vmap.as_dict()))
        data = json.loads(path.read_text())
        assert data["schema"] == MAP_SCHEMA
        assert data["summary"]["cells"] == len(vmap.rows) == 8
        for row, stored in zip(vmap.rows, data["rows"]):
            assert stored["regime"] == row.regime
            assert stored["flagged"] == row.flagged

    def test_map_is_deterministic(self):
        assert _small_map().rows == _small_map().rows

    def test_cache_makes_reruns_incremental(self, tmp_path):
        from repro.runner import BatchRunner

        runner = BatchRunner(cache_dir=tmp_path)
        cold = _small_map(runner=runner)
        executed = runner.counters.executed
        assert executed == 16  # 4 regimes x 2 counts x 2 reps
        warm = _small_map(runner=runner)
        assert runner.counters.executed == executed
        assert runner.counters.cache_hits == 16
        assert warm.rows == cold.rows

    def test_report_renders(self):
        vmap = _small_map(counts=(2, 3))
        table = format_validity_map(vmap)
        assert "regime" in table and "saturated" in table
        figure = validity_figure(vmap)
        assert "legend" in figure


class TestPins:
    def test_default_pins_cover_every_regime(self):
        pins = default_pins()
        assert pins["schema"] == PINS_SCHEMA
        assert set(pins["regimes"]) == {r.name for r in REGIMES}

    def test_green_artifact_passes(self):
        pins = default_pins()
        for regime in pins["regimes"].values():
            regime["collision_probability_error"] = 1.0
            regime["throughput_relative_error"] = 10.0
        vmap = _small_map(pins=pins)
        assert check_pins(vmap.as_dict(), pins) == []

    def test_exceeded_pin_reported(self):
        pins = default_pins()
        loose = json.loads(json.dumps(pins))
        for regime in loose["regimes"].values():
            regime["collision_probability_error"] = 1.0
            regime["throughput_relative_error"] = 10.0
        vmap = _small_map(pins=loose)
        tight = json.loads(json.dumps(loose))
        tight["regimes"]["saturated"]["collision_probability_error"] = 0.0
        problems = check_pins(vmap.as_dict(), tight)
        assert problems
        assert all("saturated" in p for p in problems)

    def test_stale_flags_reported(self):
        pins = default_pins()
        for regime in pins["regimes"].values():
            regime["collision_probability_error"] = 1.0
            regime["throughput_relative_error"] = 10.0
        data = _small_map(pins=pins).as_dict()
        data["rows"][0]["flagged"] = True  # artifact/pins drift
        problems = check_pins(data, pins)
        assert any("regenerate" in p for p in problems)

    def test_schema_mismatch_reported(self):
        assert check_pins({"schema": "bogus"}, default_pins())
        assert check_pins(
            {"schema": MAP_SCHEMA, "rows": []}, {"schema": "bogus"}
        )

    def test_missing_pin_entry_reported(self):
        pins = default_pins()
        del pins["regimes"]["saturated"]
        data = _small_map(counts=(2,), regimes=["saturated"]).as_dict()
        problems = check_pins(data, pins)
        assert any("no pin entry" in p for p in problems)
